#include "exec/operators.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "exec/kernels.h"

namespace ditto::exec {

namespace {

/// nullptr pool argument means "use the pool the engine granted this
/// task" (none outside a task: kernels run serial).
ThreadPool* resolve_pool(ThreadPool* pool) {
  return pool != nullptr ? pool : task_compute_pool();
}

/// The kernels index rows with uint32 (halves the footprint of row-id
/// arrays); beyond that the row-at-a-time references take over.
bool fits_u32(std::size_t rows) {
  return rows <= std::numeric_limits<std::uint32_t>::max();
}

}  // namespace

Table filter(const Table& in, const RowPredicate& pred) {
  detail::KernelTimer timer(&KernelSeconds::filter);
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    if (pred(in, r)) keep.push_back(r);
  }
  return in.take(keep);
}

ColumnPred pred_int(std::string column, CmpOp op, std::int64_t v) {
  ColumnPred p;
  p.column = std::move(column);
  p.op = op;
  p.int_value = v;
  p.value_is_int = true;
  return p;
}

ColumnPred pred_double(std::string column, CmpOp op, double v) {
  ColumnPred p;
  p.column = std::move(column);
  p.op = op;
  p.double_value = v;
  return p;
}

ColumnPred pred_cols(std::string column, CmpOp op, std::string rhs_column, double scale) {
  ColumnPred p;
  p.column = std::move(column);
  p.op = op;
  p.rhs_column = std::move(rhs_column);
  p.scale = scale;
  return p;
}

Result<Table> filter_cols(const Table& in, const std::vector<ColumnPred>& preds,
                          ThreadPool* pool) {
  detail::KernelTimer timer(&KernelSeconds::filter);
  if (!fits_u32(in.num_rows())) return reference::filter_cols(in, preds);
  return filter_kernel(in, preds, resolve_pool(pool));
}

Result<Table> filter_int(const Table& in, const std::string& col, CmpOp op,
                         std::int64_t operand, ThreadPool* pool) {
  detail::KernelTimer timer(&KernelSeconds::filter);
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("filter_int on non-int column: " + col);
  }
  if (!fits_u32(in.num_rows())) return reference::filter_int(in, col, op, operand);
  return filter_kernel(in, {pred_int(col, op, operand)}, resolve_pool(pool));
}

Result<Table> filter_int_range(const Table& in, const std::string& col, std::int64_t lo,
                               std::int64_t hi, ThreadPool* pool) {
  detail::KernelTimer timer(&KernelSeconds::filter);
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("filter_int_range on non-int column: " + col);
  }
  const std::vector<ColumnPred> preds{pred_int(col, CmpOp::kGe, lo),
                                      pred_int(col, CmpOp::kLe, hi)};
  if (!fits_u32(in.num_rows())) return reference::filter_cols(in, preds);
  return filter_kernel(in, preds, resolve_pool(pool));
}

Result<Table> project(const Table& in, const std::vector<std::string>& columns) {
  Schema schema;
  std::vector<Column> cols;
  for (const std::string& name : columns) {
    const int ci = in.column_index(name);
    if (ci < 0) return Status::not_found("no such column: " + name);
    schema.push_back(in.schema()[ci]);
    cols.push_back(in.column(ci));
  }
  return Table::make(std::move(schema), std::move(cols));
}

Result<Table> hash_join(const Table& left, const std::string& left_key, const Table& right,
                        const std::string& right_key, JoinKind kind, ThreadPool* pool) {
  detail::KernelTimer timer(&KernelSeconds::join);
  if (!fits_u32(left.num_rows()) || !fits_u32(right.num_rows())) {
    return reference::hash_join(left, left_key, right, right_key, kind);
  }
  return hash_join_kernel(left, left_key, right, right_key, kind, resolve_pool(pool));
}

Result<Table> group_by(const Table& in, const std::string& key,
                       const std::vector<AggSpec>& aggs, ThreadPool* pool) {
  detail::KernelTimer timer(&KernelSeconds::group_by);
  if (!fits_u32(in.num_rows())) return reference::group_by(in, key, aggs);
  return group_by_kernel(in, key, aggs, resolve_pool(pool));
}

Result<Table> group_by_multi(const Table& in, const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs, ThreadPool* pool) {
  detail::KernelTimer timer(&KernelSeconds::group_by);
  if (!fits_u32(in.num_rows())) return reference::group_by_multi(in, keys, aggs);
  return group_by_multi_kernel(in, keys, aggs, resolve_pool(pool));
}

Result<Table> sort_by_int(const Table& in, const std::string& col, bool ascending) {
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("sort_by_int on non-int column");
  }
  const ColumnSpan<std::int64_t> keys = cp->int_span();
  std::vector<std::size_t> idx(in.num_rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return ascending ? keys[a] < keys[b] : keys[a] > keys[b];
  });
  return in.take(idx);
}

Table limit(const Table& in, std::size_t n) {
  std::vector<std::size_t> idx;
  const std::size_t take_n = std::min(n, in.num_rows());
  idx.reserve(take_n);
  for (std::size_t i = 0; i < take_n; ++i) idx.push_back(i);
  return in.take(idx);
}

Result<Table> distinct_by(const Table& in, const std::string& key) {
  DITTO_ASSIGN_OR_RETURN(const Column* kp, in.checked_column(key));
  if (kp->type() != DataType::kInt64) {
    return Status::invalid_argument("distinct_by key must be int64");
  }
  const ColumnSpan<std::int64_t> keys = kp->int_span();
  std::unordered_set<std::int64_t> seen;
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < keys.size(); ++r) {
    if (seen.insert(keys[r]).second) keep.push_back(r);
  }
  return in.take(keep);
}

Result<Table> top_k_by_int(const Table& in, const std::string& col, std::size_t k,
                           bool descending) {
  detail::KernelTimer timer(&KernelSeconds::top_k);
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("sort_by_int on non-int column");
  }
  const ColumnSpan<std::int64_t> keys = cp->int_span();
  const std::size_t rows = in.num_rows();
  if (k == 0) return in.take({});

  // Bounded selection: a k-entry heap with the WORST candidate on top.
  // "Better" = larger value for descending (smaller for ascending),
  // ties broken toward the earlier row — exactly the order
  // stable_sort-then-truncate produced, so the selected set and the
  // final sorted output are bit-identical to the old formulation at
  // O(n log k) time and O(k) memory.
  struct Entry {
    std::int64_t value;
    std::size_t row;
  };
  auto better = [descending](const Entry& a, const Entry& b) {
    if (a.value != b.value) return descending ? a.value > b.value : a.value < b.value;
    return a.row < b.row;
  };
  std::vector<Entry> heap;  // max-heap by `better`: front is the worst kept
  heap.reserve(std::min(k, rows));
  for (std::size_t r = 0; r < rows; ++r) {
    const Entry e{keys[r], r};
    if (heap.size() < k) {
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(e, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = e;
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort(heap.begin(), heap.end(), better);
  std::vector<std::size_t> idx;
  idx.reserve(heap.size());
  for (const Entry& e : heap) idx.push_back(e.row);
  return in.take(idx);
}

Result<Table> union_all(const std::vector<Table>& tables) {
  if (tables.empty()) return Status::invalid_argument("union_all of nothing");
  Table out = tables.front();
  for (std::size_t i = 1; i < tables.size(); ++i) {
    DITTO_RETURN_IF_ERROR(out.concat(tables[i]));
  }
  return out;
}

Result<Table> with_column(const Table& in, const std::string& name, const ScalarFn& f) {
  if (in.column_index(name) >= 0) {
    return Status::already_exists("column exists: " + name);
  }
  std::vector<double> values;
  values.reserve(in.num_rows());
  for (std::size_t r = 0; r < in.num_rows(); ++r) values.push_back(f(in, r));
  Schema schema = in.schema();
  schema.push_back({name, DataType::kDouble});
  std::vector<Column> cols;
  for (std::size_t c = 0; c < in.num_columns(); ++c) cols.push_back(in.column(c));
  cols.emplace_back(std::move(values));
  return Table::make(std::move(schema), std::move(cols));
}

Result<std::size_t> count_distinct(const Table& in, const std::string& col) {
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("count_distinct on non-int column");
  }
  const ColumnSpan<std::int64_t> v = cp->int_span();
  const std::unordered_set<std::int64_t> set(v.begin(), v.end());
  return set.size();
}

// ---------------------------------------------------------------------------
// Row-at-a-time reference implementations: the bit-identity oracle for
// the kernel-equivalence corpus. Kept deliberately on std:: containers
// and per-row control flow; do not "optimize" these.

namespace reference {

Result<Table> filter_int(const Table& in, const std::string& col, CmpOp op,
                         std::int64_t operand) {
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("filter_int on non-int column: " + col);
  }
  const ColumnSpan<std::int64_t> values = cp->int_span();
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < values.size(); ++r) {
    const std::int64_t v = values[r];
    bool ok = false;
    switch (op) {
      case CmpOp::kEq: ok = v == operand; break;
      case CmpOp::kNe: ok = v != operand; break;
      case CmpOp::kLt: ok = v < operand; break;
      case CmpOp::kLe: ok = v <= operand; break;
      case CmpOp::kGt: ok = v > operand; break;
      case CmpOp::kGe: ok = v >= operand; break;
    }
    if (ok) keep.push_back(r);
  }
  return in.take(keep);
}

namespace {

template <typename T>
bool cmp_one(CmpOp op, T a, T b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

}  // namespace

Result<Table> filter_cols(const Table& in, const std::vector<ColumnPred>& preds) {
  // Same comparison-domain rules as the kernel (kernels.h): int64
  // compare only when every term is integral, else widen to double.
  struct Resolved {
    const Column* lhs;
    const Column* rhs = nullptr;
  };
  std::vector<Resolved> res;
  for (const ColumnPred& p : preds) {
    Resolved r;
    DITTO_ASSIGN_OR_RETURN(r.lhs, in.checked_column(p.column));
    if (r.lhs->type() == DataType::kString) {
      return Status::invalid_argument("filter_cols on string column: " + p.column);
    }
    if (!p.rhs_column.empty()) {
      DITTO_ASSIGN_OR_RETURN(r.rhs, in.checked_column(p.rhs_column));
      if (r.rhs->type() == DataType::kString) {
        return Status::invalid_argument("filter_cols on string column: " + p.rhs_column);
      }
    }
    res.push_back(r);
  }
  std::vector<std::size_t> keep;
  for (std::size_t row = 0; row < in.num_rows(); ++row) {
    bool ok = true;
    for (std::size_t i = 0; ok && i < preds.size(); ++i) {
      const ColumnPred& p = preds[i];
      const Column& lhs = *res[i].lhs;
      const bool lhs_int = lhs.type() == DataType::kInt64;
      if (res[i].rhs != nullptr) {
        const Column& rhs = *res[i].rhs;
        const bool rhs_int = rhs.type() == DataType::kInt64;
        if (lhs_int && rhs_int && p.scale == 1.0) {
          ok = cmp_one(p.op, lhs.int_at(row), rhs.int_at(row));
        } else {
          const double l = lhs_int ? static_cast<double>(lhs.int_at(row)) : lhs.double_at(row);
          const double r =
              rhs_int ? static_cast<double>(rhs.int_at(row)) : rhs.double_at(row);
          ok = cmp_one(p.op, l, p.scale * r);
        }
      } else if (lhs_int && p.value_is_int) {
        ok = cmp_one(p.op, lhs.int_at(row), p.int_value);
      } else {
        const double l = lhs_int ? static_cast<double>(lhs.int_at(row)) : lhs.double_at(row);
        const double c =
            p.value_is_int ? static_cast<double>(p.int_value) : p.double_value;
        ok = cmp_one(p.op, l, c);
      }
    }
    if (ok) keep.push_back(row);
  }
  return in.take(keep);
}

Result<Table> hash_join(const Table& left, const std::string& left_key, const Table& right,
                        const std::string& right_key, JoinKind kind) {
  const int lk = left.column_index(left_key);
  const int rk = right.column_index(right_key);
  if (lk < 0 || rk < 0) return Status::not_found("join key column missing");
  if (left.column(lk).type() != DataType::kInt64 ||
      right.column(rk).type() != DataType::kInt64) {
    return Status::invalid_argument("join keys must be int64");
  }

  // Build a hash table over the right side; each key's match list is
  // in ascending right-row order (the documented duplicate order).
  std::unordered_map<std::int64_t, std::vector<std::size_t>> build;
  build.reserve(right.num_rows());
  const ColumnSpan<std::int64_t> rkeys = right.column(rk).int_span();
  for (std::size_t r = 0; r < rkeys.size(); ++r) build[rkeys[r]].push_back(r);

  const ColumnSpan<std::int64_t> lkeys = left.column(lk).int_span();

  if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti) {
    std::vector<std::size_t> keep;
    for (std::size_t r = 0; r < lkeys.size(); ++r) {
      const bool match = build.count(lkeys[r]) > 0;
      if (match == (kind == JoinKind::kLeftSemi)) keep.push_back(r);
    }
    return left.take(keep);
  }

  // Inner join: left columns + right columns minus the right key.
  Schema schema = left.schema();
  for (std::size_t c = 0; c < right.num_columns(); ++c) {
    if (static_cast<int>(c) == rk) continue;
    Field f = right.schema()[c];
    // Disambiguate clashing names.
    if (left.column_index(f.name) >= 0) f.name = "r_" + f.name;
    schema.push_back(f);
  }

  std::vector<std::size_t> lrows, rrows;
  for (std::size_t r = 0; r < lkeys.size(); ++r) {
    const auto it = build.find(lkeys[r]);
    if (it == build.end()) continue;
    for (std::size_t rr : it->second) {
      lrows.push_back(r);
      rrows.push_back(rr);
    }
  }
  const Table lpart = left.take(lrows);
  const Table rpart = right.take(rrows);
  std::vector<Column> cols;
  for (std::size_t c = 0; c < lpart.num_columns(); ++c) cols.push_back(lpart.column(c));
  for (std::size_t c = 0; c < rpart.num_columns(); ++c) {
    if (static_cast<int>(c) == rk) continue;
    cols.push_back(rpart.column(c));
  }
  return Table::make(std::move(schema), std::move(cols));
}

Result<Table> group_by(const Table& in, const std::string& key,
                       const std::vector<AggSpec>& aggs) {
  DITTO_ASSIGN_OR_RETURN(const Column* kp, in.checked_column(key));
  if (kp->type() != DataType::kInt64) {
    return Status::invalid_argument("group_by key must be int64");
  }

  struct Acc {
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::int64_t count = 0;
    std::int64_t first = 0;
    bool has_first = false;
  };

  // Resolve aggregate inputs (spans: borrowed columns stay borrowed).
  struct Input {
    ColumnSpan<std::int64_t> ints;
    ColumnSpan<double> doubles;
    bool is_int = false;
  };
  std::vector<Input> inputs(aggs.size());
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) continue;
    DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(aggs[a].column));
    switch (cp->type()) {
      case DataType::kInt64:
        inputs[a].ints = cp->int_span();
        inputs[a].is_int = true;
        break;
      case DataType::kDouble: inputs[a].doubles = cp->double_span(); break;
      case DataType::kString:
        return Status::invalid_argument("cannot aggregate string column");
    }
  }

  const ColumnSpan<std::int64_t> keys = kp->int_span();
  std::unordered_map<std::int64_t, std::vector<Acc>> groups;
  for (std::size_t r = 0; r < keys.size(); ++r) {
    auto [it, inserted] = groups.try_emplace(keys[r], std::vector<Acc>(aggs.size()));
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      Acc& acc = it->second[a];
      ++acc.count;
      if (aggs[a].kind == AggKind::kCount) continue;
      if (aggs[a].kind == AggKind::kFirstInt) {
        if (!acc.has_first && inputs[a].is_int) {
          acc.first = inputs[a].ints[r];
          acc.has_first = true;
        }
        continue;
      }
      const double v = inputs[a].is_int ? static_cast<double>(inputs[a].ints[r])
                                        : inputs[a].doubles[r];
      acc.sum += v;
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
  }

  // Deterministic output order: sorted by key.
  std::vector<std::int64_t> sorted_keys;
  sorted_keys.reserve(groups.size());
  for (const auto& [k, v] : groups) sorted_keys.push_back(k);
  std::sort(sorted_keys.begin(), sorted_keys.end());

  Schema schema{{key, DataType::kInt64}};
  std::vector<Column> cols;
  cols.emplace_back(sorted_keys);
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) {
      std::vector<std::int64_t> v;
      v.reserve(sorted_keys.size());
      for (std::int64_t k : sorted_keys) v.push_back(groups[k][a].count);
      schema.push_back({aggs[a].as, DataType::kInt64});
      cols.emplace_back(std::move(v));
    } else if (aggs[a].kind == AggKind::kFirstInt) {
      if (!inputs[a].is_int) {
        return Status::invalid_argument("first-int aggregate needs an int64 column");
      }
      std::vector<std::int64_t> v;
      v.reserve(sorted_keys.size());
      for (std::int64_t k : sorted_keys) v.push_back(groups[k][a].first);
      schema.push_back({aggs[a].as, DataType::kInt64});
      cols.emplace_back(std::move(v));
    } else {
      std::vector<double> v;
      v.reserve(sorted_keys.size());
      for (std::int64_t k : sorted_keys) {
        const Acc& acc = groups[k][a];
        switch (aggs[a].kind) {
          case AggKind::kSum: v.push_back(acc.sum); break;
          case AggKind::kMin: v.push_back(acc.min); break;
          case AggKind::kMax: v.push_back(acc.max); break;
          case AggKind::kAvg: v.push_back(acc.sum / static_cast<double>(acc.count)); break;
          case AggKind::kCount:
          case AggKind::kFirstInt: break;  // handled above
        }
      }
      schema.push_back({aggs[a].as, DataType::kDouble});
      cols.emplace_back(std::move(v));
    }
  }
  return Table::make(std::move(schema), std::move(cols));
}

Result<Table> group_by_multi(const Table& in, const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs) {
  if (keys.empty()) return Status::invalid_argument("group_by_multi needs keys");
  if (keys.size() == 1) return reference::group_by(in, keys[0], aggs);

  std::vector<ColumnSpan<std::int64_t>> key_cols;
  for (const std::string& k : keys) {
    DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(k));
    if (cp->type() != DataType::kInt64) {
      return Status::invalid_argument("group_by_multi keys must be int64");
    }
    key_cols.push_back(cp->int_span());
  }

  // Composite key -> representative row index; grouping by map over key
  // tuples keeps exactness for any value range (no hash packing).
  std::map<std::vector<std::int64_t>, std::vector<std::size_t>> groups;
  std::vector<std::int64_t> tuple(keys.size());
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    for (std::size_t k = 0; k < keys.size(); ++k) tuple[k] = key_cols[k][r];
    groups[tuple].push_back(r);
  }

  // Build output: key columns then aggregates (delegating per-group
  // work to the single-key machinery via take()+group_by on a constant
  // key would be wasteful; aggregate directly).
  Schema schema;
  for (const std::string& k : keys) schema.push_back({k, DataType::kInt64});
  std::vector<std::vector<std::int64_t>> key_out(keys.size());

  struct AggOut {
    std::vector<double> d;
    std::vector<std::int64_t> i;
  };
  std::vector<AggOut> agg_out(aggs.size());

  for (const auto& [key_tuple, rows] : groups) {
    for (std::size_t k = 0; k < keys.size(); ++k) key_out[k].push_back(key_tuple[k]);
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      if (spec.kind == AggKind::kCount) {
        agg_out[a].i.push_back(static_cast<std::int64_t>(rows.size()));
        continue;
      }
      DITTO_ASSIGN_OR_RETURN(const Column* colp, in.checked_column(spec.column));
      const Column& col = *colp;
      if (spec.kind == AggKind::kFirstInt) {
        if (col.type() != DataType::kInt64) {
          return Status::invalid_argument("first-int aggregate needs an int64 column");
        }
        agg_out[a].i.push_back(col.int_at(rows.front()));
        continue;
      }
      double sum = 0, mn = std::numeric_limits<double>::infinity(), mx = -mn;
      for (std::size_t r : rows) {
        double v = 0;
        switch (col.type()) {
          case DataType::kInt64: v = static_cast<double>(col.int_at(r)); break;
          case DataType::kDouble: v = col.double_at(r); break;
          case DataType::kString:
            return Status::invalid_argument("cannot aggregate string column");
        }
        sum += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      switch (spec.kind) {
        case AggKind::kSum: agg_out[a].d.push_back(sum); break;
        case AggKind::kMin: agg_out[a].d.push_back(mn); break;
        case AggKind::kMax: agg_out[a].d.push_back(mx); break;
        case AggKind::kAvg:
          agg_out[a].d.push_back(sum / static_cast<double>(rows.size()));
          break;
        case AggKind::kCount:
        case AggKind::kFirstInt: break;  // handled above
      }
    }
  }

  std::vector<Column> columns;
  for (auto& k : key_out) columns.emplace_back(std::move(k));
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    const bool is_int = aggs[a].kind == AggKind::kCount || aggs[a].kind == AggKind::kFirstInt;
    schema.push_back({aggs[a].as, is_int ? DataType::kInt64 : DataType::kDouble});
    if (is_int) {
      columns.emplace_back(std::move(agg_out[a].i));
    } else {
      columns.emplace_back(std::move(agg_out[a].d));
    }
  }
  return Table::make(std::move(schema), std::move(columns));
}

Result<Table> top_k_by_int(const Table& in, const std::string& col, std::size_t k,
                           bool descending) {
  DITTO_ASSIGN_OR_RETURN(Table sorted, sort_by_int(in, col, !descending));
  return limit(sorted, k);
}

}  // namespace reference

}  // namespace ditto::exec
