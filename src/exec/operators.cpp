#include "exec/operators.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace ditto::exec {

Table filter(const Table& in, const RowPredicate& pred) {
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    if (pred(in, r)) keep.push_back(r);
  }
  return in.take(keep);
}

Result<Table> filter_int(const Table& in, const std::string& col, CmpOp op,
                         std::int64_t operand) {
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("filter_int on non-int column: " + col);
  }
  const ColumnSpan<std::int64_t> values = cp->int_span();
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < values.size(); ++r) {
    const std::int64_t v = values[r];
    bool ok = false;
    switch (op) {
      case CmpOp::kEq: ok = v == operand; break;
      case CmpOp::kNe: ok = v != operand; break;
      case CmpOp::kLt: ok = v < operand; break;
      case CmpOp::kLe: ok = v <= operand; break;
      case CmpOp::kGt: ok = v > operand; break;
      case CmpOp::kGe: ok = v >= operand; break;
    }
    if (ok) keep.push_back(r);
  }
  return in.take(keep);
}

Result<Table> project(const Table& in, const std::vector<std::string>& columns) {
  Schema schema;
  std::vector<Column> cols;
  for (const std::string& name : columns) {
    const int ci = in.column_index(name);
    if (ci < 0) return Status::not_found("no such column: " + name);
    schema.push_back(in.schema()[ci]);
    cols.push_back(in.column(ci));
  }
  return Table::make(std::move(schema), std::move(cols));
}

Result<Table> hash_join(const Table& left, const std::string& left_key, const Table& right,
                        const std::string& right_key, JoinKind kind) {
  const int lk = left.column_index(left_key);
  const int rk = right.column_index(right_key);
  if (lk < 0 || rk < 0) return Status::not_found("join key column missing");
  if (left.column(lk).type() != DataType::kInt64 ||
      right.column(rk).type() != DataType::kInt64) {
    return Status::invalid_argument("join keys must be int64");
  }

  // Build a hash table over the right side.
  std::unordered_multimap<std::int64_t, std::size_t> build;
  build.reserve(right.num_rows());
  const ColumnSpan<std::int64_t> rkeys = right.column(rk).int_span();
  for (std::size_t r = 0; r < rkeys.size(); ++r) build.emplace(rkeys[r], r);

  const ColumnSpan<std::int64_t> lkeys = left.column(lk).int_span();

  if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti) {
    std::vector<std::size_t> keep;
    for (std::size_t r = 0; r < lkeys.size(); ++r) {
      const bool match = build.count(lkeys[r]) > 0;
      if (match == (kind == JoinKind::kLeftSemi)) keep.push_back(r);
    }
    return left.take(keep);
  }

  // Inner join: left columns + right columns minus the right key.
  Schema schema = left.schema();
  for (std::size_t c = 0; c < right.num_columns(); ++c) {
    if (static_cast<int>(c) == rk) continue;
    Field f = right.schema()[c];
    // Disambiguate clashing names.
    if (left.column_index(f.name) >= 0) f.name = "r_" + f.name;
    schema.push_back(f);
  }
  Table out(schema);

  std::vector<std::size_t> lrows, rrows;
  for (std::size_t r = 0; r < lkeys.size(); ++r) {
    const auto [lo, hi] = build.equal_range(lkeys[r]);
    for (auto it = lo; it != hi; ++it) {
      lrows.push_back(r);
      rrows.push_back(it->second);
    }
  }
  const Table lpart = left.take(lrows);
  const Table rpart = right.take(rrows);
  std::vector<Column> cols;
  for (std::size_t c = 0; c < lpart.num_columns(); ++c) cols.push_back(lpart.column(c));
  for (std::size_t c = 0; c < rpart.num_columns(); ++c) {
    if (static_cast<int>(c) == rk) continue;
    cols.push_back(rpart.column(c));
  }
  return Table::make(out.schema(), std::move(cols));
}

Result<Table> group_by(const Table& in, const std::string& key,
                       const std::vector<AggSpec>& aggs) {
  DITTO_ASSIGN_OR_RETURN(const Column* kp, in.checked_column(key));
  if (kp->type() != DataType::kInt64) {
    return Status::invalid_argument("group_by key must be int64");
  }

  struct Acc {
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::int64_t count = 0;
    std::int64_t first = 0;
    bool has_first = false;
  };

  // Resolve aggregate inputs (spans: borrowed columns stay borrowed).
  struct Input {
    ColumnSpan<std::int64_t> ints;
    ColumnSpan<double> doubles;
    bool is_int = false;
  };
  std::vector<Input> inputs(aggs.size());
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) continue;
    DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(aggs[a].column));
    switch (cp->type()) {
      case DataType::kInt64:
        inputs[a].ints = cp->int_span();
        inputs[a].is_int = true;
        break;
      case DataType::kDouble: inputs[a].doubles = cp->double_span(); break;
      case DataType::kString:
        return Status::invalid_argument("cannot aggregate string column");
    }
  }

  const ColumnSpan<std::int64_t> keys = kp->int_span();
  std::unordered_map<std::int64_t, std::vector<Acc>> groups;
  for (std::size_t r = 0; r < keys.size(); ++r) {
    auto [it, inserted] = groups.try_emplace(keys[r], std::vector<Acc>(aggs.size()));
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      Acc& acc = it->second[a];
      ++acc.count;
      if (aggs[a].kind == AggKind::kCount) continue;
      if (aggs[a].kind == AggKind::kFirstInt) {
        if (!acc.has_first && inputs[a].is_int) {
          acc.first = inputs[a].ints[r];
          acc.has_first = true;
        }
        continue;
      }
      const double v = inputs[a].is_int ? static_cast<double>(inputs[a].ints[r])
                                        : inputs[a].doubles[r];
      acc.sum += v;
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
  }

  // Deterministic output order: sorted by key.
  std::vector<std::int64_t> sorted_keys;
  sorted_keys.reserve(groups.size());
  for (const auto& [k, v] : groups) sorted_keys.push_back(k);
  std::sort(sorted_keys.begin(), sorted_keys.end());

  Schema schema{{key, DataType::kInt64}};
  std::vector<Column> cols;
  cols.emplace_back(sorted_keys);
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) {
      std::vector<std::int64_t> v;
      v.reserve(sorted_keys.size());
      for (std::int64_t k : sorted_keys) v.push_back(groups[k][a].count);
      schema.push_back({aggs[a].as, DataType::kInt64});
      cols.emplace_back(std::move(v));
    } else if (aggs[a].kind == AggKind::kFirstInt) {
      if (!inputs[a].is_int) {
        return Status::invalid_argument("first-int aggregate needs an int64 column");
      }
      std::vector<std::int64_t> v;
      v.reserve(sorted_keys.size());
      for (std::int64_t k : sorted_keys) v.push_back(groups[k][a].first);
      schema.push_back({aggs[a].as, DataType::kInt64});
      cols.emplace_back(std::move(v));
    } else {
      std::vector<double> v;
      v.reserve(sorted_keys.size());
      for (std::int64_t k : sorted_keys) {
        const Acc& acc = groups[k][a];
        switch (aggs[a].kind) {
          case AggKind::kSum: v.push_back(acc.sum); break;
          case AggKind::kMin: v.push_back(acc.min); break;
          case AggKind::kMax: v.push_back(acc.max); break;
          case AggKind::kAvg: v.push_back(acc.sum / static_cast<double>(acc.count)); break;
          case AggKind::kCount:
          case AggKind::kFirstInt: break;  // handled above
        }
      }
      schema.push_back({aggs[a].as, DataType::kDouble});
      cols.emplace_back(std::move(v));
    }
  }
  return Table::make(std::move(schema), std::move(cols));
}

Result<Table> group_by_multi(const Table& in, const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs) {
  if (keys.empty()) return Status::invalid_argument("group_by_multi needs keys");
  if (keys.size() == 1) return group_by(in, keys[0], aggs);

  std::vector<ColumnSpan<std::int64_t>> key_cols;
  for (const std::string& k : keys) {
    DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(k));
    if (cp->type() != DataType::kInt64) {
      return Status::invalid_argument("group_by_multi keys must be int64");
    }
    key_cols.push_back(cp->int_span());
  }

  // Composite key -> representative row index; grouping by map over key
  // tuples keeps exactness for any value range (no hash packing).
  std::map<std::vector<std::int64_t>, std::vector<std::size_t>> groups;
  std::vector<std::int64_t> tuple(keys.size());
  for (std::size_t r = 0; r < in.num_rows(); ++r) {
    for (std::size_t k = 0; k < keys.size(); ++k) tuple[k] = key_cols[k][r];
    groups[tuple].push_back(r);
  }

  // Build output: key columns then aggregates (delegating per-group
  // work to the single-key machinery via take()+group_by on a constant
  // key would be wasteful; aggregate directly).
  Schema schema;
  for (const std::string& k : keys) schema.push_back({k, DataType::kInt64});
  std::vector<std::vector<std::int64_t>> key_out(keys.size());

  struct AggOut {
    std::vector<double> d;
    std::vector<std::int64_t> i;
  };
  std::vector<AggOut> agg_out(aggs.size());

  for (const auto& [key_tuple, rows] : groups) {
    for (std::size_t k = 0; k < keys.size(); ++k) key_out[k].push_back(key_tuple[k]);
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      if (spec.kind == AggKind::kCount) {
        agg_out[a].i.push_back(static_cast<std::int64_t>(rows.size()));
        continue;
      }
      DITTO_ASSIGN_OR_RETURN(const Column* colp, in.checked_column(spec.column));
      const Column& col = *colp;
      if (spec.kind == AggKind::kFirstInt) {
        if (col.type() != DataType::kInt64) {
          return Status::invalid_argument("first-int aggregate needs an int64 column");
        }
        agg_out[a].i.push_back(col.int_at(rows.front()));
        continue;
      }
      double sum = 0, mn = std::numeric_limits<double>::infinity(), mx = -mn;
      for (std::size_t r : rows) {
        double v;
        switch (col.type()) {
          case DataType::kInt64: v = static_cast<double>(col.int_at(r)); break;
          case DataType::kDouble: v = col.double_at(r); break;
          case DataType::kString:
            return Status::invalid_argument("cannot aggregate string column");
        }
        sum += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      switch (spec.kind) {
        case AggKind::kSum: agg_out[a].d.push_back(sum); break;
        case AggKind::kMin: agg_out[a].d.push_back(mn); break;
        case AggKind::kMax: agg_out[a].d.push_back(mx); break;
        case AggKind::kAvg:
          agg_out[a].d.push_back(sum / static_cast<double>(rows.size()));
          break;
        case AggKind::kCount:
        case AggKind::kFirstInt: break;  // handled above
      }
    }
  }

  std::vector<Column> columns;
  for (auto& k : key_out) columns.emplace_back(std::move(k));
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    const bool is_int = aggs[a].kind == AggKind::kCount || aggs[a].kind == AggKind::kFirstInt;
    schema.push_back({aggs[a].as, is_int ? DataType::kInt64 : DataType::kDouble});
    if (is_int) {
      columns.emplace_back(std::move(agg_out[a].i));
    } else {
      columns.emplace_back(std::move(agg_out[a].d));
    }
  }
  return Table::make(std::move(schema), std::move(columns));
}

Result<Table> sort_by_int(const Table& in, const std::string& col, bool ascending) {
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("sort_by_int on non-int column");
  }
  const ColumnSpan<std::int64_t> keys = cp->int_span();
  std::vector<std::size_t> idx(in.num_rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return ascending ? keys[a] < keys[b] : keys[a] > keys[b];
  });
  return in.take(idx);
}

Table limit(const Table& in, std::size_t n) {
  std::vector<std::size_t> idx;
  const std::size_t take_n = std::min(n, in.num_rows());
  idx.reserve(take_n);
  for (std::size_t i = 0; i < take_n; ++i) idx.push_back(i);
  return in.take(idx);
}

Result<Table> distinct_by(const Table& in, const std::string& key) {
  DITTO_ASSIGN_OR_RETURN(const Column* kp, in.checked_column(key));
  if (kp->type() != DataType::kInt64) {
    return Status::invalid_argument("distinct_by key must be int64");
  }
  const ColumnSpan<std::int64_t> keys = kp->int_span();
  std::unordered_set<std::int64_t> seen;
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < keys.size(); ++r) {
    if (seen.insert(keys[r]).second) keep.push_back(r);
  }
  return in.take(keep);
}

Result<Table> top_k_by_int(const Table& in, const std::string& col, std::size_t k,
                           bool descending) {
  DITTO_ASSIGN_OR_RETURN(Table sorted, sort_by_int(in, col, !descending));
  return limit(sorted, k);
}

Result<Table> union_all(const std::vector<Table>& tables) {
  if (tables.empty()) return Status::invalid_argument("union_all of nothing");
  Table out = tables.front();
  for (std::size_t i = 1; i < tables.size(); ++i) {
    DITTO_RETURN_IF_ERROR(out.concat(tables[i]));
  }
  return out;
}

Result<Table> with_column(const Table& in, const std::string& name, const ScalarFn& f) {
  if (in.column_index(name) >= 0) {
    return Status::already_exists("column exists: " + name);
  }
  std::vector<double> values;
  values.reserve(in.num_rows());
  for (std::size_t r = 0; r < in.num_rows(); ++r) values.push_back(f(in, r));
  Schema schema = in.schema();
  schema.push_back({name, DataType::kDouble});
  std::vector<Column> cols;
  for (std::size_t c = 0; c < in.num_columns(); ++c) cols.push_back(in.column(c));
  cols.emplace_back(std::move(values));
  return Table::make(std::move(schema), std::move(cols));
}

Result<std::size_t> count_distinct(const Table& in, const std::string& col) {
  DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(col));
  if (cp->type() != DataType::kInt64) {
    return Status::invalid_argument("count_distinct on non-int column");
  }
  const ColumnSpan<std::int64_t> v = cp->int_span();
  const std::unordered_set<std::int64_t> set(v.begin(), v.end());
  return set.size();
}

}  // namespace ditto::exec
