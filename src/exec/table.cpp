#include "exec/table.h"

#include <cstdio>
#include <cstdlib>

namespace ditto::exec {

namespace {
Column empty_column_of(DataType t) {
  switch (t) {
    case DataType::kInt64: return Column(std::vector<std::int64_t>{});
    case DataType::kDouble: return Column(std::vector<double>{});
    case DataType::kString: return Column(std::vector<std::string>{});
  }
  return Column();
}
}  // namespace

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const Field& f : schema_) columns_.push_back(empty_column_of(f.type));
}

Result<Table> Table::make(Schema schema, std::vector<Column> columns) {
  if (schema.size() != columns.size()) {
    return Status::invalid_argument("schema/column count mismatch");
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  DITTO_RETURN_IF_ERROR(t.validate());
  return t;
}

int Table::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const Column& Table::column_by_name(const std::string& name) const {
  const Column* c = find_column(name);
  if (c == nullptr) {
    // Loud, defined failure: the release-mode alternative is indexing
    // columns_ with (size_t)-1.
    std::fprintf(stderr, "fatal: column_by_name: no such column: %s\n", name.c_str());
    std::abort();
  }
  return *c;
}

const Column* Table::find_column(const std::string& name) const {
  const int i = column_index(name);
  return i < 0 ? nullptr : &columns_[static_cast<std::size_t>(i)];
}

Result<const Column*> Table::checked_column(const std::string& name) const {
  const Column* c = find_column(name);
  if (c == nullptr) return Status::not_found("no such column: " + name);
  return c;
}

void Table::append_row_from(const Table& src, std::size_t row) {
  assert(schema_ == src.schema_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].append_from(src.columns_[c], row);
  }
}

Table Table::take(const std::vector<std::size_t>& indices) const {
  Table out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const Column& c : columns_) out.columns_.push_back(c.take(indices));
  return out;
}

Table Table::slice(std::size_t offset, std::size_t count) const {
  Table out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const Column& c : columns_) out.columns_.push_back(c.slice(offset, count));
  return out;
}

void Table::ensure_owned() {
  for (Column& c : columns_) c.ensure_owned();
}

Status Table::concat(const Table& other) {
  if (schema_ != other.schema_) return Status::invalid_argument("concat schema mismatch");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    switch (columns_[c].type()) {
      case DataType::kInt64: {
        // Pointer-range insert is a single bulk memcpy; reading through
        // the span keeps a borrowed source un-materialized.
        auto& dst = columns_[c].ints();
        const auto src = other.columns_[c].int_span();
        dst.insert(dst.end(), src.begin(), src.end());
        break;
      }
      case DataType::kDouble: {
        auto& dst = columns_[c].doubles();
        const auto src = other.columns_[c].double_span();
        dst.insert(dst.end(), src.begin(), src.end());
        break;
      }
      case DataType::kString: {
        auto& dst = columns_[c].strings();
        const auto& src = other.columns_[c].strings();
        dst.insert(dst.end(), src.begin(), src.end());
        break;
      }
    }
  }
  return Status::ok();
}

std::size_t Table::byte_size() const {
  std::size_t n = 0;
  for (const Column& c : columns_) n += c.byte_size();
  return n;
}

Status Table::validate() const {
  if (columns_.size() != schema_.size()) {
    return Status::internal("column count does not match schema");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type() != schema_[i].type) {
      return Status::internal("column type mismatch at " + schema_[i].name);
    }
    if (columns_[i].size() != num_rows()) {
      return Status::internal("ragged columns: " + schema_[i].name);
    }
  }
  return Status::ok();
}

Table table_of_ints(
    std::initializer_list<std::pair<std::string, std::vector<std::int64_t>>> cols) {
  Schema schema;
  std::vector<Column> columns;
  for (const auto& [name, values] : cols) {
    schema.push_back({name, DataType::kInt64});
    columns.emplace_back(values);
  }
  auto t = Table::make(std::move(schema), std::move(columns));
  assert(t.ok());
  return std::move(t).value();
}

}  // namespace ditto::exec
