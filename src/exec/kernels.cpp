#include "exec/kernels.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

#include "common/thread_pool.h"
#include "exec/partition.h"

namespace ditto::exec {

// ---------------------------------------------------------------------------
// Compute-pool plumbing.

namespace {
thread_local ThreadPool* tl_compute_pool = nullptr;
thread_local KernelSeconds tl_kernel_seconds;
thread_local int tl_kernel_depth = 0;
}  // namespace

ThreadPool* task_compute_pool() { return tl_compute_pool; }

ScopedComputePool::ScopedComputePool(ThreadPool* pool) : prev_(tl_compute_pool) {
  tl_compute_pool = pool;
}

ScopedComputePool::~ScopedComputePool() { tl_compute_pool = prev_; }

void reset_kernel_seconds() { tl_kernel_seconds = KernelSeconds{}; }

KernelSeconds current_kernel_seconds() { return tl_kernel_seconds; }

namespace detail {

KernelTimer::KernelTimer(double KernelSeconds::*field)
    : field_(field), outer_(tl_kernel_depth++ == 0) {
  if (outer_) start_ = std::chrono::steady_clock::now();
}

KernelTimer::~KernelTimer() {
  --tl_kernel_depth;
  if (!outer_) return;  // nested operator call: folds into the outer bucket
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  tl_kernel_seconds.*field_ +=
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
}

}  // namespace detail

const char* group_by_strategy_name(GroupByStrategy s) {
  switch (s) {
    case GroupByStrategy::kSerialFlat: return "serial-flat";
    case GroupByStrategy::kRadixPartitioned: return "radix";
    case GroupByStrategy::kCentralMerge: return "central-merge";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Flat open-addressing tables. Linear probing over power-of-two
// capacity; the probe start uses the TOP bits of stable_hash64 so slot
// placement stays uncorrelated with the radix routing (which consumes
// the low bits).

namespace {

constexpr std::uint32_t kNoGroup = std::numeric_limits<std::uint32_t>::max();

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// int64 key -> dense group id (0, 1, 2, ... in first-seen order).
class FlatMap {
 public:
  explicit FlatMap(std::size_t expected_groups) {
    rehash(next_pow2(std::max<std::size_t>(16, expected_groups * 2)));
  }

  std::uint32_t find_or_insert(std::int64_t key, bool& inserted) {
    if ((n_ + 1) * 10 > cap_ * 7) rehash(cap_ * 2);
    const std::uint64_t h = stable_hash64(key);
    std::size_t i = h >> shift_;
    for (;;) {
      if (slot_group_[i] == kNoGroup) {
        slot_key_[i] = key;
        slot_group_[i] = n_;
        group_key_.push_back(key);
        inserted = true;
        return n_++;
      }
      if (slot_key_[i] == key) {
        inserted = false;
        return slot_group_[i];
      }
      i = (i + 1) & mask_;
    }
  }

  std::uint32_t size() const { return n_; }
  std::int64_t key_of(std::uint32_t g) const { return group_key_[g]; }
  const std::vector<std::int64_t>& keys() const { return group_key_; }

 private:
  void rehash(std::size_t cap) {
    cap_ = cap;
    mask_ = cap - 1;
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    slot_key_.assign(cap, 0);
    slot_group_.assign(cap, kNoGroup);
    for (std::uint32_t g = 0; g < n_; ++g) {
      std::size_t i = stable_hash64(group_key_[g]) >> shift_;
      while (slot_group_[i] != kNoGroup) i = (i + 1) & mask_;
      slot_key_[i] = group_key_[g];
      slot_group_[i] = g;
    }
  }

  std::vector<std::int64_t> slot_key_;
  std::vector<std::uint32_t> slot_group_;
  std::vector<std::int64_t> group_key_;  // group id -> key
  std::size_t cap_ = 0, mask_ = 0;
  unsigned shift_ = 64;
  std::uint32_t n_ = 0;
};

/// Composite-key variant: key identity is the tuple of key-column
/// values at a representative row; equality compares the columns.
class FlatMultiMap {
 public:
  FlatMultiMap(const std::vector<ColumnSpan<std::int64_t>>& cols,
               std::size_t expected_groups)
      : cols_(cols) {
    rehash(next_pow2(std::max<std::size_t>(16, expected_groups * 2)));
  }

  static std::uint64_t hash_row(const std::vector<ColumnSpan<std::int64_t>>& cols,
                                std::size_t r) {
    std::uint64_t h = 0;
    for (const auto& c : cols) {
      h = stable_hash64(static_cast<std::int64_t>(h) ^ c[r]);
    }
    return h;
  }

  std::uint32_t find_or_insert(std::uint32_t row, std::uint64_t h, bool& inserted) {
    if ((n_ + 1) * 10 > cap_ * 7) rehash(cap_ * 2);
    std::size_t i = h >> shift_;
    for (;;) {
      if (slot_group_[i] == kNoGroup) {
        slot_hash_[i] = h;
        slot_group_[i] = n_;
        group_row_.push_back(row);
        group_hash_.push_back(h);
        inserted = true;
        return n_++;
      }
      if (slot_hash_[i] == h && rows_equal(group_row_[slot_group_[i]], row)) {
        inserted = false;
        return slot_group_[i];
      }
      i = (i + 1) & mask_;
    }
  }

  std::uint32_t size() const { return n_; }
  std::uint32_t row_of(std::uint32_t g) const { return group_row_[g]; }

 private:
  bool rows_equal(std::uint32_t a, std::uint32_t b) const {
    for (const auto& c : cols_) {
      if (c[a] != c[b]) return false;
    }
    return true;
  }

  void rehash(std::size_t cap) {
    cap_ = cap;
    mask_ = cap - 1;
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    slot_hash_.assign(cap, 0);
    slot_group_.assign(cap, kNoGroup);
    for (std::uint32_t g = 0; g < n_; ++g) {
      std::size_t i = group_hash_[g] >> shift_;
      while (slot_group_[i] != kNoGroup) i = (i + 1) & mask_;
      slot_hash_[i] = group_hash_[g];
      slot_group_[i] = g;
    }
  }

  const std::vector<ColumnSpan<std::int64_t>>& cols_;
  std::vector<std::uint64_t> slot_hash_;
  std::vector<std::uint32_t> slot_group_;
  std::vector<std::uint32_t> group_row_;   // group id -> representative row
  std::vector<std::uint64_t> group_hash_;  // group id -> hash
  std::size_t cap_ = 0, mask_ = 0;
  unsigned shift_ = 64;
  std::uint32_t n_ = 0;
};

// ---------------------------------------------------------------------------
// Shared aggregation machinery. Acc and its per-row update are copied
// verbatim from the reference formulation: bit-identity depends on the
// accumulator seeing the same value sequence AND folding it with the
// same expressions.

struct Acc {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::int64_t count = 0;
  std::int64_t first = 0;
  bool has_first = false;
};

struct AggInput {
  ColumnSpan<std::int64_t> ints;
  ColumnSpan<double> doubles;
  bool is_int = false;
};

Result<std::vector<AggInput>> resolve_agg_inputs(const Table& in,
                                                 const std::vector<AggSpec>& aggs) {
  std::vector<AggInput> inputs(aggs.size());
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) continue;
    DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(aggs[a].column));
    switch (cp->type()) {
      case DataType::kInt64:
        inputs[a].ints = cp->int_span();
        inputs[a].is_int = true;
        break;
      case DataType::kDouble: inputs[a].doubles = cp->double_span(); break;
      case DataType::kString:
        return Status::invalid_argument("cannot aggregate string column");
    }
  }
  return inputs;
}

inline void update_accs(Acc* row_accs, const std::vector<AggSpec>& aggs,
                        const std::vector<AggInput>& inputs, std::size_t r) {
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    Acc& acc = row_accs[a];
    ++acc.count;
    if (aggs[a].kind == AggKind::kCount) continue;
    if (aggs[a].kind == AggKind::kFirstInt) {
      if (!acc.has_first && inputs[a].is_int) {
        acc.first = inputs[a].ints[r];
        acc.has_first = true;
      }
      continue;
    }
    const double v = inputs[a].is_int ? static_cast<double>(inputs[a].ints[r])
                                      : inputs[a].doubles[r];
    acc.sum += v;
    acc.min = std::min(acc.min, v);
    acc.max = std::max(acc.max, v);
  }
}

/// Exact merge of chunk-local accumulators, valid ONLY for the
/// order-insensitive aggregates (aggs_merge_exact gates callers).
inline void merge_accs(Acc& into, const Acc& from) {
  into.count += from.count;
  into.min = std::min(into.min, from.min);
  into.max = std::max(into.max, from.max);
  if (!into.has_first && from.has_first) {
    into.first = from.first;
    into.has_first = true;
  }
}

/// Compact struct-of-arrays accumulators: one dense per-group array
/// per aggregate that needs one (plus shared counts), instead of
/// strided 40-byte Acc records. This is what the columnar fold writes
/// and what the radix path emits straight from.
struct FoldedAggs {
  std::vector<std::int64_t> counts;              ///< rows per group
  std::vector<std::vector<double>> vals;         ///< [agg] sum/min/max per group
  std::vector<std::vector<std::int64_t>> first;  ///< [agg] first int per group
};

/// Column-at-a-time fold — the vectorized half of the group-by kernel.
/// Pass 1 (the caller) resolved each fold position j to a dense group
/// id gid[j]; this runs one specialized tight loop per (aggregate
/// kind, input type) over compact per-group arrays instead of a
/// per-row switch. `row_at(j)` maps a fold position to its row in
/// `inputs` (identity when the caller already scattered the value
/// columns partition-major). Each group still sees its values in
/// exactly the reference's row order and folds them with the same
/// expressions, so sums, mins and maxes are bit-identical.
template <typename RowAt>
FoldedAggs fold_aggs_columnar(const std::vector<AggSpec>& aggs,
                              const std::vector<AggInput>& inputs,
                              const std::vector<std::uint32_t>& gid,
                              const std::vector<std::uint32_t>& first_pos, RowAt row_at) {
  const std::size_t groups = first_pos.size();
  const std::size_t naggs = aggs.size();
  const std::size_t n = gid.size();
  const std::uint32_t* g = gid.data();

  FoldedAggs f;
  f.counts.assign(groups, 0);
  for (std::size_t j = 0; j < n; ++j) ++f.counts[g[j]];
  f.vals.resize(naggs);
  f.first.resize(naggs);

  for (std::size_t a = 0; a < naggs; ++a) {
    switch (aggs[a].kind) {
      case AggKind::kCount:
        break;
      case AggKind::kFirstInt:
        // The group's first row is where pass 1 inserted it, so this
        // is O(groups), not O(rows).
        if (inputs[a].is_int) {
          f.first[a].resize(groups);
          for (std::size_t i = 0; i < groups; ++i) {
            f.first[a][i] = inputs[a].ints[row_at(first_pos[i])];
          }
        }
        break;
      case AggKind::kSum:
      case AggKind::kAvg: {
        std::vector<double>& fold = f.vals[a];
        fold.assign(groups, 0.0);
        if (inputs[a].is_int) {
          const ColumnSpan<std::int64_t> v = inputs[a].ints;
          for (std::size_t j = 0; j < n; ++j) {
            fold[g[j]] += static_cast<double>(v[row_at(j)]);
          }
        } else {
          const ColumnSpan<double> v = inputs[a].doubles;
          for (std::size_t j = 0; j < n; ++j) fold[g[j]] += v[row_at(j)];
        }
        break;
      }
      case AggKind::kMin: {
        std::vector<double>& fold = f.vals[a];
        fold.assign(groups, std::numeric_limits<double>::infinity());
        if (inputs[a].is_int) {
          const ColumnSpan<std::int64_t> v = inputs[a].ints;
          for (std::size_t j = 0; j < n; ++j) {
            fold[g[j]] = std::min(fold[g[j]], static_cast<double>(v[row_at(j)]));
          }
        } else {
          const ColumnSpan<double> v = inputs[a].doubles;
          for (std::size_t j = 0; j < n; ++j) {
            fold[g[j]] = std::min(fold[g[j]], v[row_at(j)]);
          }
        }
        break;
      }
      case AggKind::kMax: {
        std::vector<double>& fold = f.vals[a];
        fold.assign(groups, -std::numeric_limits<double>::infinity());
        if (inputs[a].is_int) {
          const ColumnSpan<std::int64_t> v = inputs[a].ints;
          for (std::size_t j = 0; j < n; ++j) {
            fold[g[j]] = std::max(fold[g[j]], static_cast<double>(v[row_at(j)]));
          }
        } else {
          const ColumnSpan<double> v = inputs[a].doubles;
          for (std::size_t j = 0; j < n; ++j) {
            fold[g[j]] = std::max(fold[g[j]], v[row_at(j)]);
          }
        }
        break;
      }
    }
  }
  return f;
}

/// Adapter for the Acc-based paths (serial flat, multi-key): expand
/// compact folds into group-major Acc records for emit_group_by.
std::vector<Acc> accs_from_folds(const std::vector<AggSpec>& aggs,
                                 const std::vector<AggInput>& inputs, const FoldedAggs& f) {
  const std::size_t groups = f.counts.size();
  const std::size_t naggs = aggs.size();
  std::vector<Acc> accs(groups * naggs);
  for (std::size_t i = 0; i < groups; ++i) {
    for (std::size_t a = 0; a < naggs; ++a) {
      Acc& acc = accs[i * naggs + a];
      acc.count = f.counts[i];
      switch (aggs[a].kind) {
        case AggKind::kCount: break;
        case AggKind::kSum:
        case AggKind::kAvg: acc.sum = f.vals[a][i]; break;
        case AggKind::kMin: acc.min = f.vals[a][i]; break;
        case AggKind::kMax: acc.max = f.vals[a][i]; break;
        case AggKind::kFirstInt:
          if (inputs[a].is_int) {
            acc.first = f.first[a][i];
            acc.has_first = true;
          }
          break;
      }
    }
  }
  return accs;
}

/// Groups in globally sorted key order, accumulators materialized in
/// that order (output row i, aggregate a -> accs[i * naggs + a]).
struct SortedGroups {
  std::vector<std::int64_t> sorted_keys;
  std::vector<Acc> accs;
};

Result<Table> emit_group_by(const std::string& key, const std::vector<AggSpec>& aggs,
                            const std::vector<AggInput>& inputs, SortedGroups&& g) {
  const std::size_t n = g.sorted_keys.size();
  Schema schema{{key, DataType::kInt64}};
  std::vector<Column> cols;
  cols.emplace_back(std::move(g.sorted_keys));
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) {
      std::vector<std::int64_t> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = g.accs[i * aggs.size() + a].count;
      schema.push_back({aggs[a].as, DataType::kInt64});
      cols.emplace_back(std::move(v));
    } else if (aggs[a].kind == AggKind::kFirstInt) {
      if (!inputs[a].is_int) {
        return Status::invalid_argument("first-int aggregate needs an int64 column");
      }
      std::vector<std::int64_t> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = g.accs[i * aggs.size() + a].first;
      schema.push_back({aggs[a].as, DataType::kInt64});
      cols.emplace_back(std::move(v));
    } else {
      std::vector<double> v(n);
      for (std::size_t i = 0; i < n; ++i) {
        const Acc& acc = g.accs[i * aggs.size() + a];
        switch (aggs[a].kind) {
          case AggKind::kSum: v[i] = acc.sum; break;
          case AggKind::kMin: v[i] = acc.min; break;
          case AggKind::kMax: v[i] = acc.max; break;
          case AggKind::kAvg: v[i] = acc.sum / static_cast<double>(acc.count); break;
          case AggKind::kCount:
          case AggKind::kFirstInt: break;  // handled above
        }
      }
      schema.push_back({aggs[a].as, DataType::kDouble});
      cols.emplace_back(std::move(v));
    }
  }
  return Table::make(std::move(schema), std::move(cols));
}

/// One flat table + insertion-order accumulators (the per-partition
/// and per-chunk building block).
struct LocalAgg {
  FlatMap map;
  std::vector<Acc> accs;  // group-major: accs[g * naggs + a]

  explicit LocalAgg(std::size_t expected_groups) : map(expected_groups) {}

  void add(std::int64_t key, const std::vector<AggSpec>& aggs,
           const std::vector<AggInput>& inputs, std::size_t r) {
    bool inserted = false;
    const std::uint32_t g = map.find_or_insert(key, inserted);
    if (inserted) accs.resize(accs.size() + aggs.size());
    update_accs(&accs[std::size_t{g} * aggs.size()], aggs, inputs, r);
  }
};

/// Sort first-seen-ordered groups into SortedGroups (key order).
SortedGroups sort_groups(const std::vector<std::int64_t>& group_keys,
                         std::vector<Acc>&& accs, std::size_t naggs) {
  const std::size_t n = group_keys.size();
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return group_keys[a] < group_keys[b];
  });
  SortedGroups out;
  out.sorted_keys.resize(n);
  out.accs.resize(n * naggs);
  for (std::size_t i = 0; i < n; ++i) {
    out.sorted_keys[i] = group_keys[order[i]];
    for (std::size_t a = 0; a < naggs; ++a) {
      out.accs[i * naggs + a] = accs[std::size_t{order[i]} * naggs + a];
    }
  }
  return out;
}

SortedGroups sort_local(LocalAgg&& local, std::size_t naggs) {
  return sort_groups(local.map.keys(), std::move(local.accs), naggs);
}

std::size_t pool_width(ThreadPool* pool) { return pool ? pool->size() : 0; }

/// Radix fanout for partition-parallel kernels: a few partitions per
/// pool thread for balance, power of two, capped to keep per-partition
/// fixed costs negligible.
std::size_t radix_fanout(std::size_t width) {
  return next_pow2(std::min<std::size_t>(64, std::max<std::size_t>(8, width * 4)));
}

}  // namespace

// ---------------------------------------------------------------------------
// Group-by strategy.

std::size_t sample_cardinality(ColumnSpan<std::int64_t> keys) {
  const std::size_t n = keys.size();
  if (n == 0) return 0;
  const std::size_t samples = std::min<std::size_t>(n, 4096);
  const std::size_t stride = n / samples;
  FlatMap map(samples);
  bool inserted = false;
  for (std::size_t i = 0; i < samples; ++i) map.find_or_insert(keys[i * stride], inserted);
  return map.size();
}

bool aggs_merge_exact(const std::vector<AggSpec>& aggs) {
  for (const AggSpec& a : aggs) {
    switch (a.kind) {
      case AggKind::kCount:
      case AggKind::kMin:
      case AggKind::kMax:
      case AggKind::kFirstInt: break;
      case AggKind::kSum:
      case AggKind::kAvg:
        return false;  // double accumulation is order-dependent
    }
  }
  return true;
}

GroupByStrategy pick_group_by_strategy(ColumnSpan<std::int64_t> keys,
                                       const std::vector<AggSpec>& aggs,
                                       ThreadPool* pool) {
  if (keys.size() <= kParallelMinRows) return GroupByStrategy::kSerialFlat;
  if (pool_width(pool) >= 2 && aggs_merge_exact(aggs) &&
      sample_cardinality(keys) <= kCentralMergeCardinality) {
    return GroupByStrategy::kCentralMerge;
  }
  // Radix even without a pool: on large inputs the partition pass pays
  // for itself by making every per-partition structure cache-resident.
  return GroupByStrategy::kRadixPartitioned;
}

// ---------------------------------------------------------------------------
// Group-by kernel.

namespace {

SortedGroups group_by_serial(ColumnSpan<std::int64_t> keys, const std::vector<AggSpec>& aggs,
                             const std::vector<AggInput>& inputs) {
  const std::size_t n = keys.size();
  // Pre-size for high cardinality: a rehash chain on distinct-heavy
  // inputs costs more than the over-allocation on repeat-heavy ones.
  FlatMap map(std::max<std::size_t>(256, n / 4));
  std::vector<std::uint32_t> gid(n);
  std::vector<std::uint32_t> first_pos;
  for (std::size_t r = 0; r < n; ++r) {
    bool inserted = false;
    const std::uint32_t id = map.find_or_insert(keys[r], inserted);
    if (inserted) first_pos.push_back(static_cast<std::uint32_t>(r));
    gid[r] = id;
  }
  std::vector<Acc> accs = accs_from_folds(
      aggs, inputs,
      fold_aggs_columnar(aggs, inputs, gid, first_pos, [](std::size_t j) { return j; }));
  return sort_groups(map.keys(), std::move(accs), aggs.size());
}

/// The radix path emits the output table itself: per-partition compact
/// folds are sorted locally (cache-hot), the disjoint sorted key
/// streams heap-merge into global key order, and every output column
/// fills in one pass straight from the fold arrays — no intermediate
/// Acc materialization, no global sort.
Result<Table> group_by_radix(const std::string& key, ColumnSpan<std::int64_t> keys,
                             const std::vector<AggSpec>& aggs,
                             const std::vector<AggInput>& inputs, ThreadPool* pool) {
  const std::size_t n = keys.size();
  // Fanout serves two masters: enough partitions for pool balance AND
  // per-partition state (hash table + fold arrays) small enough to
  // stay cache-resident. ~16k rows per partition hits both — which is
  // why this path also wins with no pool at all.
  const std::size_t parts = radix_fanout(std::max(pool_width(pool), n / (16 * 1024)));
  const ScatterPlan plan = make_radix_plan(keys, parts, pool);

  // Partition-major copies of the key and every aggregate input column
  // (deduped by source buffer). The scatter reads sequentially and
  // streams into per-partition ranges; every pass below then touches
  // only dense, partition-local data.
  const std::vector<std::int64_t> part_keys = partitioned_values(plan, keys, pool);
  std::vector<const std::int64_t*> int_srcs;
  std::vector<const double*> dbl_srcs;
  std::vector<std::vector<std::int64_t>> int_scat;
  std::vector<std::vector<double>> dbl_scat;
  std::vector<AggInput> scat_inputs(aggs.size());
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) continue;
    scat_inputs[a].is_int = inputs[a].is_int;
    if (inputs[a].is_int) {
      const std::int64_t* src = inputs[a].ints.data();
      std::size_t i = std::find(int_srcs.begin(), int_srcs.end(), src) - int_srcs.begin();
      if (i == int_srcs.size()) {
        int_srcs.push_back(src);
        int_scat.push_back(partitioned_values(plan, inputs[a].ints, pool));
      }
      scat_inputs[a].ints = ColumnSpan<std::int64_t>(int_scat[i].data(), n);
    } else {
      const double* src = inputs[a].doubles.data();
      std::size_t i = std::find(dbl_srcs.begin(), dbl_srcs.end(), src) - dbl_srcs.begin();
      if (i == dbl_srcs.size()) {
        dbl_srcs.push_back(src);
        dbl_scat.push_back(partitioned_values(plan, inputs[a].doubles, pool));
      }
      scat_inputs[a].doubles = ColumnSpan<double>(dbl_scat[i].data(), n);
    }
  }

  // Aggregate each partition independently; row order within a
  // partition is the original row order, so every group accumulates
  // its values in exactly the reference's sequence. Each partition
  // also sorts its own (small, cache-hot) group set by key.
  struct RadixLocal {
    FlatMap map;
    FoldedAggs folds;
    std::vector<std::uint32_t> order;  // group ids in ascending key order
    explicit RadixLocal(std::size_t expected) : map(expected) {}
  };
  std::vector<RadixLocal> locals;
  locals.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    locals.emplace_back(std::max<std::size_t>(256, plan.counts[p] / 4));
  }
  run_chunked(parts, pool, [&](std::size_t p) {
    const std::size_t lo = plan.part_start[p];
    const std::size_t len = plan.part_start[p + 1] - lo;
    RadixLocal& local = locals[p];
    std::vector<std::uint32_t> gid(len);
    std::vector<std::uint32_t> first_pos;
    for (std::size_t j = 0; j < len; ++j) {
      bool inserted = false;
      const std::uint32_t id = local.map.find_or_insert(part_keys[lo + j], inserted);
      if (inserted) first_pos.push_back(static_cast<std::uint32_t>(j));
      gid[j] = id;
    }
    std::vector<AggInput> part_inputs(aggs.size());
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      part_inputs[a].is_int = scat_inputs[a].is_int;
      if (!scat_inputs[a].ints.empty()) {
        part_inputs[a].ints = ColumnSpan<std::int64_t>(scat_inputs[a].ints.data() + lo, len);
      }
      if (!scat_inputs[a].doubles.empty()) {
        part_inputs[a].doubles = ColumnSpan<double>(scat_inputs[a].doubles.data() + lo, len);
      }
    }
    local.folds = fold_aggs_columnar(aggs, part_inputs, gid, first_pos,
                                     [](std::size_t j) { return j; });
    const std::uint32_t groups = local.map.size();
    local.order.resize(groups);
    for (std::uint32_t g = 0; g < groups; ++g) local.order[g] = g;
    std::sort(local.order.begin(), local.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return local.map.key_of(a) < local.map.key_of(b);
              });
  });

  // Partitions hold disjoint key sets, each sorted: a heap merge of
  // the streams yields global key order in total x log(parts) steps.
  std::size_t total = 0;
  for (const RadixLocal& l : locals) total += l.map.size();
  struct Head {
    std::int64_t key;
    std::uint32_t part;
    std::uint32_t idx;  // position in that partition's order[]
  };
  const auto later = [](const Head& a, const Head& b) { return a.key > b.key; };
  std::vector<Head> heap;
  heap.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    if (locals[p].map.size() > 0) {
      heap.push_back({locals[p].map.key_of(locals[p].order[0]),
                      static_cast<std::uint32_t>(p), 0});
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);
  std::vector<std::int64_t> out_keys(total);
  std::vector<std::uint64_t> merged(total);  // (partition << 32) | group
  for (std::size_t i = 0; i < total; ++i) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Head h = heap.back();
    heap.pop_back();
    out_keys[i] = h.key;
    merged[i] = (std::uint64_t{h.part} << 32) | locals[h.part].order[h.idx];
    if (++h.idx < locals[h.part].order.size()) {
      h.key = locals[h.part].map.key_of(locals[h.part].order[h.idx]);
      heap.push_back(h);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }

  // Emit straight from the fold arrays, column at a time. Schema and
  // value expressions match emit_group_by exactly.
  Schema schema{{key, DataType::kInt64}};
  std::vector<Column> cols;
  cols.emplace_back(std::move(out_keys));
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    const auto fold_of = [&](std::size_t i) -> const FoldedAggs& {
      return locals[merged[i] >> 32].folds;
    };
    const auto group_of = [&](std::size_t i) {
      return static_cast<std::size_t>(merged[i] & 0xffffffffu);
    };
    if (aggs[a].kind == AggKind::kCount) {
      std::vector<std::int64_t> v(total);
      for (std::size_t i = 0; i < total; ++i) v[i] = fold_of(i).counts[group_of(i)];
      schema.push_back({aggs[a].as, DataType::kInt64});
      cols.emplace_back(std::move(v));
    } else if (aggs[a].kind == AggKind::kFirstInt) {
      if (!inputs[a].is_int) {
        return Status::invalid_argument("first-int aggregate needs an int64 column");
      }
      std::vector<std::int64_t> v(total);
      for (std::size_t i = 0; i < total; ++i) v[i] = fold_of(i).first[a][group_of(i)];
      schema.push_back({aggs[a].as, DataType::kInt64});
      cols.emplace_back(std::move(v));
    } else {
      std::vector<double> v(total);
      if (aggs[a].kind == AggKind::kAvg) {
        for (std::size_t i = 0; i < total; ++i) {
          const FoldedAggs& f = fold_of(i);
          v[i] = f.vals[a][group_of(i)] / static_cast<double>(f.counts[group_of(i)]);
        }
      } else {
        for (std::size_t i = 0; i < total; ++i) v[i] = fold_of(i).vals[a][group_of(i)];
      }
      schema.push_back({aggs[a].as, DataType::kDouble});
      cols.emplace_back(std::move(v));
    }
  }
  return Table::make(std::move(schema), std::move(cols));
}

SortedGroups group_by_central_merge(ColumnSpan<std::int64_t> keys,
                                    const std::vector<AggSpec>& aggs,
                                    const std::vector<AggInput>& inputs,
                                    ThreadPool* pool) {
  assert(aggs_merge_exact(aggs) && "central merge requires order-insensitive aggregates");
  const std::size_t rows = keys.size();
  const std::size_t chunks = (rows + kScatterChunkRows - 1) / kScatterChunkRows;

  std::vector<LocalAgg> locals;
  locals.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) locals.emplace_back(kCentralMergeCardinality);
  run_chunked(chunks, pool, [&](std::size_t c) {
    const std::size_t lo = c * kScatterChunkRows;
    const std::size_t hi = std::min(rows, lo + kScatterChunkRows);
    LocalAgg& local = locals[c];
    for (std::size_t r = lo; r < hi; ++r) local.add(keys[r], aggs, inputs, r);
  });

  // Merge chunk tables in chunk order: first-seen order, counts, and
  // min/max/first folds all reproduce the row-order fold exactly.
  const std::size_t naggs = aggs.size();
  LocalAgg global(kCentralMergeCardinality);
  for (std::size_t c = 0; c < chunks; ++c) {
    const LocalAgg& local = locals[c];
    for (std::uint32_t g = 0; g < local.map.size(); ++g) {
      bool inserted = false;
      const std::uint32_t gg = global.map.find_or_insert(local.map.key_of(g), inserted);
      if (inserted) global.accs.resize(global.accs.size() + naggs);
      for (std::size_t a = 0; a < naggs; ++a) {
        merge_accs(global.accs[std::size_t{gg} * naggs + a],
                   local.accs[std::size_t{g} * naggs + a]);
      }
    }
  }
  return sort_local(std::move(global), naggs);
}

}  // namespace

Result<Table> group_by_kernel(const Table& in, const std::string& key,
                              const std::vector<AggSpec>& aggs, ThreadPool* pool) {
  DITTO_ASSIGN_OR_RETURN(const Column* kp, in.checked_column(key));
  if (kp->type() != DataType::kInt64) {
    return Status::invalid_argument("group_by key must be int64");
  }
  DITTO_ASSIGN_OR_RETURN(std::vector<AggInput> inputs, resolve_agg_inputs(in, aggs));
  const ColumnSpan<std::int64_t> keys = kp->int_span();

  switch (pick_group_by_strategy(keys, aggs, pool)) {
    case GroupByStrategy::kSerialFlat:
      return emit_group_by(key, aggs, inputs, group_by_serial(keys, aggs, inputs));
    case GroupByStrategy::kRadixPartitioned:
      return group_by_radix(key, keys, aggs, inputs, pool);
    case GroupByStrategy::kCentralMerge:
      return emit_group_by(key, aggs, inputs,
                           group_by_central_merge(keys, aggs, inputs, pool));
  }
  return Status::internal("unreachable group-by strategy");
}

// ---------------------------------------------------------------------------
// Multi-key group-by kernel. Same shape as the single-key radix path;
// group identity is the key tuple (representative row) and output
// order is lexicographic. No central-merge variant: composite keys in
// our workloads are high-cardinality by construction.

namespace {

struct MultiLocal {
  FlatMultiMap map;
  std::vector<Acc> accs;

  MultiLocal(const std::vector<ColumnSpan<std::int64_t>>& cols, std::size_t expected)
      : map(cols, expected) {}
};

}  // namespace

Result<Table> group_by_multi_kernel(const Table& in, const std::vector<std::string>& keys,
                                    const std::vector<AggSpec>& aggs, ThreadPool* pool) {
  if (keys.empty()) return Status::invalid_argument("group_by_multi needs keys");
  if (keys.size() == 1) return group_by_kernel(in, keys[0], aggs, pool);

  std::vector<ColumnSpan<std::int64_t>> key_cols;
  for (const std::string& k : keys) {
    DITTO_ASSIGN_OR_RETURN(const Column* cp, in.checked_column(k));
    if (cp->type() != DataType::kInt64) {
      return Status::invalid_argument("group_by_multi keys must be int64");
    }
    key_cols.push_back(cp->int_span());
  }
  DITTO_ASSIGN_OR_RETURN(std::vector<AggInput> inputs, resolve_agg_inputs(in, aggs));

  const std::size_t rows = in.num_rows();
  const bool parallel = pool_width(pool) >= 2 && rows > kParallelMinRows;
  const std::size_t parts = parallel ? radix_fanout(pool_width(pool)) : 1;

  std::vector<MultiLocal> locals;
  locals.reserve(parts);
  if (parts == 1) {
    locals.emplace_back(key_cols, std::max<std::size_t>(256, rows / 4));
    MultiLocal& local = locals[0];
    std::vector<std::uint32_t> gid(rows);
    std::vector<std::uint32_t> first_pos;
    for (std::size_t r = 0; r < rows; ++r) {
      bool inserted = false;
      const std::uint32_t id = local.map.find_or_insert(
          static_cast<std::uint32_t>(r), FlatMultiMap::hash_row(key_cols, r), inserted);
      if (inserted) first_pos.push_back(static_cast<std::uint32_t>(r));
      gid[r] = id;
    }
    local.accs = accs_from_folds(
        aggs, inputs,
        fold_aggs_columnar(aggs, inputs, gid, first_pos, [](std::size_t j) { return j; }));
  } else {
    const ScatterPlan plan = make_radix_plan_multi(key_cols, parts, pool);
    const std::vector<std::uint32_t> row_ids = partitioned_row_indices(plan, pool);
    for (std::size_t p = 0; p < parts; ++p) {
      locals.emplace_back(key_cols, std::max<std::size_t>(256, plan.counts[p] / 4));
    }
    run_chunked(parts, pool, [&](std::size_t p) {
      MultiLocal& local = locals[p];
      const std::size_t lo = plan.part_start[p];
      const std::size_t len = plan.part_start[p + 1] - lo;
      std::vector<std::uint32_t> gid(len);
      std::vector<std::uint32_t> first_pos;
      for (std::size_t j = 0; j < len; ++j) {
        const std::uint32_t r = row_ids[lo + j];
        bool inserted = false;
        const std::uint32_t id =
            local.map.find_or_insert(r, FlatMultiMap::hash_row(key_cols, r), inserted);
        if (inserted) first_pos.push_back(static_cast<std::uint32_t>(j));
        gid[j] = id;
      }
      local.accs = accs_from_folds(aggs, inputs,
                                   fold_aggs_columnar(aggs, inputs, gid, first_pos,
                                                      [&](std::size_t j) { return row_ids[lo + j]; }));
    });
  }

  // Lexicographic output order via representative rows (partitions
  // hold disjoint tuple sets, so one global sort interleaves them).
  std::size_t total = 0;
  for (const MultiLocal& l : locals) total += l.map.size();
  std::vector<std::uint64_t> merged;  // (partition << 32) | group
  merged.reserve(total);
  for (std::size_t p = 0; p < parts; ++p) {
    for (std::uint32_t g = 0; g < locals[p].map.size(); ++g) {
      merged.push_back((std::uint64_t{p} << 32) | g);
    }
  }
  auto rep_row = [&](std::uint64_t id) {
    return locals[id >> 32].map.row_of(static_cast<std::uint32_t>(id & 0xffffffffu));
  };
  std::sort(merged.begin(), merged.end(), [&](std::uint64_t a, std::uint64_t b) {
    const std::uint32_t ra = rep_row(a), rb = rep_row(b);
    for (const auto& c : key_cols) {
      if (c[ra] != c[rb]) return c[ra] < c[rb];
    }
    return false;
  });

  // Emit: key columns then aggregates, schema identical to reference.
  Schema schema;
  for (const std::string& k : keys) schema.push_back({k, DataType::kInt64});
  std::vector<std::vector<std::int64_t>> key_out(keys.size(),
                                                 std::vector<std::int64_t>(total));
  const std::size_t naggs = aggs.size();
  for (std::size_t i = 0; i < total; ++i) {
    const std::uint32_t r = rep_row(merged[i]);
    for (std::size_t k = 0; k < keys.size(); ++k) key_out[k][i] = key_cols[k][r];
  }
  std::vector<Column> columns;
  for (auto& k : key_out) columns.emplace_back(std::move(k));
  for (std::size_t a = 0; a < naggs; ++a) {
    const bool is_int = aggs[a].kind == AggKind::kCount || aggs[a].kind == AggKind::kFirstInt;
    if (aggs[a].kind == AggKind::kFirstInt && !inputs[a].is_int) {
      return Status::invalid_argument("first-int aggregate needs an int64 column");
    }
    schema.push_back({aggs[a].as, is_int ? DataType::kInt64 : DataType::kDouble});
    if (is_int) {
      std::vector<std::int64_t> v(total);
      for (std::size_t i = 0; i < total; ++i) {
        const std::size_t p = merged[i] >> 32;
        const std::size_t g = merged[i] & 0xffffffffu;
        const Acc& acc = locals[p].accs[g * naggs + a];
        v[i] = aggs[a].kind == AggKind::kCount ? acc.count : acc.first;
      }
      columns.emplace_back(std::move(v));
    } else {
      std::vector<double> v(total);
      for (std::size_t i = 0; i < total; ++i) {
        const std::size_t p = merged[i] >> 32;
        const std::size_t g = merged[i] & 0xffffffffu;
        const Acc& acc = locals[p].accs[g * naggs + a];
        switch (aggs[a].kind) {
          case AggKind::kSum: v[i] = acc.sum; break;
          case AggKind::kMin: v[i] = acc.min; break;
          case AggKind::kMax: v[i] = acc.max; break;
          case AggKind::kAvg: v[i] = acc.sum / static_cast<double>(acc.count); break;
          case AggKind::kCount:
          case AggKind::kFirstInt: break;  // handled above
        }
      }
      columns.emplace_back(std::move(v));
    }
  }
  return Table::make(std::move(schema), std::move(columns));
}

// ---------------------------------------------------------------------------
// Hash join kernel.

namespace {

/// Flat hash table over one radix partition of the build (right) side.
/// Nodes append in ascending right-row order, so probing walks
/// duplicate matches exactly in the documented output order.
class JoinPart {
 public:
  void reserve(std::size_t expected_rows) {
    const std::size_t cap = next_pow2(std::max<std::size_t>(16, expected_rows * 2));
    cap_ = cap;
    mask_ = cap - 1;
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    slot_key_.assign(cap, 0);
    slot_group_.assign(cap, kNoGroup);
    node_row_.reserve(expected_rows);
    node_next_.reserve(expected_rows);
  }

  void insert(std::int64_t key, std::uint32_t row) {
    if ((groups_ + 1) * 10 > cap_ * 7) grow();
    const std::uint64_t h = stable_hash64(key);
    std::size_t i = h >> shift_;
    std::uint32_t g = kNoGroup;
    for (;;) {
      if (slot_group_[i] == kNoGroup) {
        slot_key_[i] = key;
        slot_group_[i] = groups_;
        g = groups_++;
        group_key_.push_back(key);
        group_head_.push_back(kNoGroup);
        group_tail_.push_back(kNoGroup);
        break;
      }
      if (slot_key_[i] == key) {
        g = slot_group_[i];
        break;
      }
      i = (i + 1) & mask_;
    }
    const std::uint32_t node = static_cast<std::uint32_t>(node_row_.size());
    node_row_.push_back(row);
    node_next_.push_back(kNoGroup);
    if (group_head_[g] == kNoGroup) {
      group_head_[g] = node;
    } else {
      node_next_[group_tail_[g]] = node;
    }
    group_tail_[g] = node;
  }

  /// First node of the key's match chain, or kNoGroup.
  std::uint32_t find(std::int64_t key) const {
    if (cap_ == 0) return kNoGroup;
    const std::uint64_t h = stable_hash64(key);
    std::size_t i = h >> shift_;
    for (;;) {
      if (slot_group_[i] == kNoGroup) return kNoGroup;
      if (slot_key_[i] == key) return group_head_[slot_group_[i]];
      i = (i + 1) & mask_;
    }
  }

  std::uint32_t node_row(std::uint32_t node) const { return node_row_[node]; }
  std::uint32_t node_next(std::uint32_t node) const { return node_next_[node]; }

 private:
  void grow() {
    const std::size_t cap = cap_ * 2;
    cap_ = cap;
    mask_ = cap - 1;
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    slot_key_.assign(cap, 0);
    slot_group_.assign(cap, kNoGroup);
    for (std::uint32_t g = 0; g < groups_; ++g) {
      std::size_t i = stable_hash64(group_key_[g]) >> shift_;
      while (slot_group_[i] != kNoGroup) i = (i + 1) & mask_;
      slot_key_[i] = group_key_[g];
      slot_group_[i] = g;
    }
  }

  std::vector<std::int64_t> slot_key_;
  std::vector<std::uint32_t> slot_group_;
  std::vector<std::int64_t> group_key_;
  std::vector<std::uint32_t> group_head_, group_tail_;
  std::vector<std::uint32_t> node_row_, node_next_;
  std::size_t cap_ = 0, mask_ = 0;
  unsigned shift_ = 64;
  std::uint32_t groups_ = 0;
};

/// Turn a selection mask into the ascending row-id list, chunk-parallel
/// (per-chunk count, exclusive scan, disjoint fill).
std::vector<std::uint32_t> selection_from_mask(const std::uint8_t* mask, std::size_t rows,
                                               ThreadPool* pool) {
  const std::size_t chunks = std::max<std::size_t>(1, (rows + kScatterChunkRows - 1) /
                                                          kScatterChunkRows);
  std::vector<std::size_t> counts(chunks, 0);
  run_chunked(chunks, pool, [&](std::size_t c) {
    const std::size_t lo = c * kScatterChunkRows;
    const std::size_t hi = std::min(rows, lo + kScatterChunkRows);
    std::size_t n = 0;
    for (std::size_t r = lo; r < hi; ++r) n += mask[r];
    counts[c] = n;
  });
  std::vector<std::size_t> offsets(chunks + 1, 0);
  for (std::size_t c = 0; c < chunks; ++c) offsets[c + 1] = offsets[c] + counts[c];
  std::vector<std::uint32_t> out(offsets[chunks]);
  run_chunked(chunks, pool, [&](std::size_t c) {
    const std::size_t lo = c * kScatterChunkRows;
    const std::size_t hi = std::min(rows, lo + kScatterChunkRows);
    std::size_t w = offsets[c];
    for (std::size_t r = lo; r < hi; ++r) {
      if (mask[r]) out[w++] = static_cast<std::uint32_t>(r);
    }
  });
  return out;
}

}  // namespace

namespace {

/// The build phase of the hash join, factored out so hash_join_stream
/// can build once and probe many chunks. Output order is independent
/// of `parts`: rows insert in ascending right-row order either way.
struct JoinBuild {
  std::vector<JoinPart> tables;
  std::size_t parts = 1;
  std::uint64_t part_mask = 0;
};

JoinBuild make_join_build(ColumnSpan<std::int64_t> rkeys, bool parallel, ThreadPool* pool) {
  JoinBuild build;
  build.parts = parallel ? radix_fanout(pool_width(pool)) : 1;
  build.part_mask = build.parts - 1;
  build.tables.resize(build.parts);
  std::vector<JoinPart>& tables = build.tables;
  if (build.parts == 1) {
    tables[0].reserve(rkeys.size());
    for (std::size_t r = 0; r < rkeys.size(); ++r) {
      tables[0].insert(rkeys[r], static_cast<std::uint32_t>(r));
    }
  } else {
    const ScatterPlan plan = make_radix_plan(rkeys, build.parts, pool);
    const std::vector<std::uint32_t> row_ids = partitioned_row_indices(plan, pool);
    run_chunked(build.parts, pool, [&](std::size_t p) {
      tables[p].reserve(plan.counts[p]);
      for (std::size_t i = plan.part_start[p]; i < plan.part_start[p + 1]; ++i) {
        const std::uint32_t r = row_ids[i];
        tables[p].insert(rkeys[r], r);
      }
    });
  }
  return build;
}

/// The probe phase against a prepared build. `left` may be one probe
/// chunk: its output is left-row major, so concatenating per-chunk
/// results over ascending left-row ranges reproduces the whole join.
Result<Table> probe_join(const Table& left, int lk, const Table& right, int rk,
                         JoinKind kind, const JoinBuild& build, ThreadPool* pool) {
  const ColumnSpan<std::int64_t> lkeys = left.column(lk).int_span();
  const std::vector<JoinPart>& tables = build.tables;
  const std::size_t parts = build.parts;
  const std::uint64_t part_mask = build.part_mask;
  auto probe = [&](std::int64_t key) {
    const std::size_t p = parts == 1 ? 0 : (stable_hash64(key) & part_mask);
    return tables[p].find(key);
  };

  const std::size_t lrows_n = lkeys.size();
  if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti) {
    const std::uint8_t want = kind == JoinKind::kLeftSemi ? 1 : 0;
    std::vector<std::uint8_t> mask(lrows_n);
    const std::size_t chunks =
        std::max<std::size_t>(1, (lrows_n + kScatterChunkRows - 1) / kScatterChunkRows);
    run_chunked(chunks, pool, [&](std::size_t c) {
      const std::size_t lo = c * kScatterChunkRows;
      const std::size_t hi = std::min(lrows_n, lo + kScatterChunkRows);
      for (std::size_t r = lo; r < hi; ++r) {
        mask[r] = static_cast<std::uint8_t>(probe(lkeys[r]) != kNoGroup) == want;
      }
    });
    const std::vector<std::uint32_t> keep = selection_from_mask(mask.data(), lrows_n, pool);
    return gather_rows(left, keep.data(), keep.size(), pool);
  }

  // Inner join: count pass per chunk, exclusive scan, fill pass. Chunk
  // slabs are ascending left-row ranges, so the concatenated output is
  // globally left-row ordered with duplicates by ascending right row.
  const std::size_t chunks =
      std::max<std::size_t>(1, (lrows_n + kScatterChunkRows - 1) / kScatterChunkRows);
  std::vector<std::size_t> counts(chunks, 0);
  run_chunked(chunks, pool, [&](std::size_t c) {
    const std::size_t lo = c * kScatterChunkRows;
    const std::size_t hi = std::min(lrows_n, lo + kScatterChunkRows);
    std::size_t n = 0;
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t p = parts == 1 ? 0 : (stable_hash64(lkeys[r]) & part_mask);
      for (std::uint32_t node = tables[p].find(lkeys[r]); node != kNoGroup;
           node = tables[p].node_next(node)) {
        ++n;
      }
    }
    counts[c] = n;
  });
  std::vector<std::size_t> offsets(chunks + 1, 0);
  for (std::size_t c = 0; c < chunks; ++c) offsets[c + 1] = offsets[c] + counts[c];
  const std::size_t matches = offsets[chunks];
  std::vector<std::uint32_t> lrows(matches), rrows(matches);
  run_chunked(chunks, pool, [&](std::size_t c) {
    const std::size_t lo = c * kScatterChunkRows;
    const std::size_t hi = std::min(lrows_n, lo + kScatterChunkRows);
    std::size_t w = offsets[c];
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t p = parts == 1 ? 0 : (stable_hash64(lkeys[r]) & part_mask);
      for (std::uint32_t node = tables[p].find(lkeys[r]); node != kNoGroup;
           node = tables[p].node_next(node)) {
        lrows[w] = static_cast<std::uint32_t>(r);
        rrows[w] = tables[p].node_row(node);
        ++w;
      }
    }
  });

  const Table lpart = gather_rows(left, lrows.data(), matches, pool);
  const Table rpart = gather_rows(right, rrows.data(), matches, pool);
  Schema schema = left.schema();
  std::vector<Column> cols;
  for (std::size_t c = 0; c < lpart.num_columns(); ++c) cols.push_back(lpart.column(c));
  for (std::size_t c = 0; c < rpart.num_columns(); ++c) {
    if (static_cast<int>(c) == rk) continue;
    Field f = right.schema()[c];
    if (left.column_index(f.name) >= 0) f.name = "r_" + f.name;
    schema.push_back(f);
    cols.push_back(rpart.column(c));
  }
  return Table::make(std::move(schema), std::move(cols));
}

}  // namespace

Result<Table> hash_join_kernel(const Table& left, const std::string& left_key,
                               const Table& right, const std::string& right_key,
                               JoinKind kind, ThreadPool* pool) {
  const int lk = left.column_index(left_key);
  const int rk = right.column_index(right_key);
  if (lk < 0 || rk < 0) return Status::not_found("join key column missing");
  if (left.column(lk).type() != DataType::kInt64 ||
      right.column(rk).type() != DataType::kInt64) {
    return Status::invalid_argument("join keys must be int64");
  }
  const ColumnSpan<std::int64_t> rkeys = right.column(rk).int_span();
  const bool parallel =
      pool_width(pool) >= 2 &&
      (rkeys.size() > kParallelMinRows || left.num_rows() > kParallelMinRows);
  const JoinBuild build = make_join_build(rkeys, parallel, pool);
  return probe_join(left, lk, right, rk, kind, build, pool);
}

// ---------------------------------------------------------------------------
// Filter kernel.

namespace {

/// A ColumnPred resolved against the input table: raw pointers and the
/// comparison domain (int64 only when every term is integral).
struct PredPlan {
  const std::int64_t* li = nullptr;
  const double* ld = nullptr;
  const std::int64_t* ri = nullptr;
  const double* rd = nullptr;
  CmpOp op = CmpOp::kEq;
  double scale = 1.0;
  std::int64_t iconst = 0;
  double dconst = 0.0;
  bool has_rhs_col = false;
  bool int_compare = false;
};

Result<PredPlan> resolve_pred(const Table& in, const ColumnPred& p) {
  PredPlan plan;
  plan.op = p.op;
  plan.scale = p.scale;
  DITTO_ASSIGN_OR_RETURN(const Column* lc, in.checked_column(p.column));
  if (lc->type() == DataType::kString) {
    return Status::invalid_argument("filter_cols on string column: " + p.column);
  }
  const bool lhs_int = lc->type() == DataType::kInt64;
  if (lhs_int) {
    plan.li = lc->int_span().data();
  } else {
    plan.ld = lc->double_span().data();
  }
  if (!p.rhs_column.empty()) {
    plan.has_rhs_col = true;
    DITTO_ASSIGN_OR_RETURN(const Column* rc, in.checked_column(p.rhs_column));
    if (rc->type() == DataType::kString) {
      return Status::invalid_argument("filter_cols on string column: " + p.rhs_column);
    }
    const bool rhs_int = rc->type() == DataType::kInt64;
    if (rhs_int) {
      plan.ri = rc->int_span().data();
    } else {
      plan.rd = rc->double_span().data();
    }
    plan.int_compare = lhs_int && rhs_int && p.scale == 1.0;
  } else {
    plan.iconst = p.int_value;
    plan.dconst = p.value_is_int ? static_cast<double>(p.int_value) : p.double_value;
    plan.int_compare = lhs_int && p.value_is_int;
  }
  return plan;
}

template <typename F>
inline void fill_mask(std::uint8_t* m, std::size_t lo, std::size_t hi, bool first, F f) {
  if (first) {
    for (std::size_t r = lo; r < hi; ++r) m[r] = static_cast<std::uint8_t>(f(r));
  } else {
    for (std::size_t r = lo; r < hi; ++r) m[r] &= static_cast<std::uint8_t>(f(r));
  }
}

template <typename GetL, typename GetR>
inline void eval_cmp(CmpOp op, std::uint8_t* m, std::size_t lo, std::size_t hi, bool first,
                     GetL gl, GetR gr) {
  switch (op) {
    case CmpOp::kEq: fill_mask(m, lo, hi, first, [&](std::size_t r) { return gl(r) == gr(r); }); break;
    case CmpOp::kNe: fill_mask(m, lo, hi, first, [&](std::size_t r) { return gl(r) != gr(r); }); break;
    case CmpOp::kLt: fill_mask(m, lo, hi, first, [&](std::size_t r) { return gl(r) < gr(r); }); break;
    case CmpOp::kLe: fill_mask(m, lo, hi, first, [&](std::size_t r) { return gl(r) <= gr(r); }); break;
    case CmpOp::kGt: fill_mask(m, lo, hi, first, [&](std::size_t r) { return gl(r) > gr(r); }); break;
    case CmpOp::kGe: fill_mask(m, lo, hi, first, [&](std::size_t r) { return gl(r) >= gr(r); }); break;
  }
}

void eval_pred(const PredPlan& p, std::uint8_t* m, std::size_t lo, std::size_t hi,
               bool first) {
  auto lhs_d = [&](std::size_t r) {
    return p.li ? static_cast<double>(p.li[r]) : p.ld[r];
  };
  if (p.has_rhs_col) {
    if (p.int_compare) {
      eval_cmp(p.op, m, lo, hi, first, [&](std::size_t r) { return p.li[r]; },
               [&](std::size_t r) { return p.ri[r]; });
    } else {
      auto rhs_d = [&](std::size_t r) {
        return p.scale * (p.ri ? static_cast<double>(p.ri[r]) : p.rd[r]);
      };
      eval_cmp(p.op, m, lo, hi, first, lhs_d, rhs_d);
    }
  } else if (p.int_compare) {
    eval_cmp(p.op, m, lo, hi, first, [&](std::size_t r) { return p.li[r]; },
             [&](std::size_t) { return p.iconst; });
  } else {
    eval_cmp(p.op, m, lo, hi, first, lhs_d, [&](std::size_t) { return p.dconst; });
  }
}

}  // namespace

Result<Table> filter_kernel(const Table& in, const std::vector<ColumnPred>& preds,
                            ThreadPool* pool) {
  std::vector<PredPlan> plans;
  plans.reserve(preds.size());
  for (const ColumnPred& p : preds) {
    DITTO_ASSIGN_OR_RETURN(PredPlan plan, resolve_pred(in, p));
    plans.push_back(plan);
  }
  const std::size_t rows = in.num_rows();
  if (plans.empty()) {
    // AND of zero predicates keeps every row.
    return in.slice(0, rows);
  }
  std::vector<std::uint8_t> mask(rows);
  const std::size_t chunks =
      std::max<std::size_t>(1, (rows + kScatterChunkRows - 1) / kScatterChunkRows);
  run_chunked(chunks, pool, [&](std::size_t c) {
    const std::size_t lo = c * kScatterChunkRows;
    const std::size_t hi = std::min(rows, lo + kScatterChunkRows);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      eval_pred(plans[i], mask.data(), lo, hi, /*first=*/i == 0);
    }
  });
  const std::vector<std::uint32_t> keep = selection_from_mask(mask.data(), rows, pool);
  return gather_rows(in, keep.data(), keep.size(), pool);
}

// ---------------------------------------------------------------------------
// Streaming kernels. Kernel timers wrap only the per-chunk compute, not
// the blocking next() pull — waiting on an upstream producer is
// transport time, not kernel time.

Result<Table> gather_chunks(const TableChunkFn& next) {
  std::optional<Table> out;
  while (true) {
    DITTO_ASSIGN_OR_RETURN(std::optional<Table> chunk, next());
    if (!chunk.has_value()) break;
    if (!out.has_value()) {
      out = std::move(*chunk);
    } else {
      DITTO_RETURN_IF_ERROR(out->concat(*chunk));
    }
  }
  if (!out.has_value()) return Status::invalid_argument("gather_chunks: empty chunk stream");
  return std::move(*out);
}

Result<Table> filter_stream(const TableChunkFn& next, const std::vector<ColumnPred>& preds,
                            ThreadPool* pool) {
  if (pool == nullptr) pool = task_compute_pool();
  std::optional<Table> out;
  while (true) {
    DITTO_ASSIGN_OR_RETURN(std::optional<Table> chunk, next());
    if (!chunk.has_value()) break;
    detail::KernelTimer timer(&KernelSeconds::filter);
    DITTO_ASSIGN_OR_RETURN(Table part, filter_kernel(*chunk, preds, pool));
    if (!out.has_value()) {
      out = std::move(part);
    } else {
      DITTO_RETURN_IF_ERROR(out->concat(part));
    }
  }
  if (!out.has_value()) return Status::invalid_argument("filter_stream: empty chunk stream");
  return std::move(*out);
}

Result<Table> hash_join_stream(const TableChunkFn& next_left, const std::string& left_key,
                               const Table& right, const std::string& right_key,
                               JoinKind kind, ThreadPool* pool) {
  if (pool == nullptr) pool = task_compute_pool();
  const int rk = right.column_index(right_key);
  if (rk < 0) return Status::not_found("join key column missing");
  if (right.column(rk).type() != DataType::kInt64) {
    return Status::invalid_argument("join keys must be int64");
  }
  const ColumnSpan<std::int64_t> rkeys = right.column(rk).int_span();
  // Probe volume is unknown up front, so the parallel-build decision
  // keys off the build side alone; `parts` never changes the output.
  const bool parallel = pool_width(pool) >= 2 && rkeys.size() > kParallelMinRows;
  std::optional<JoinBuild> build;
  {
    detail::KernelTimer timer(&KernelSeconds::join);
    build = make_join_build(rkeys, parallel, pool);
  }
  std::optional<Table> out;
  while (true) {
    DITTO_ASSIGN_OR_RETURN(std::optional<Table> chunk, next_left());
    if (!chunk.has_value()) break;
    const int lk = chunk->column_index(left_key);
    if (lk < 0) return Status::not_found("join key column missing");
    if (chunk->column(lk).type() != DataType::kInt64) {
      return Status::invalid_argument("join keys must be int64");
    }
    detail::KernelTimer timer(&KernelSeconds::join);
    DITTO_ASSIGN_OR_RETURN(Table part, probe_join(*chunk, lk, right, rk, kind, *build, pool));
    if (!out.has_value()) {
      out = std::move(part);
    } else {
      DITTO_RETURN_IF_ERROR(out->concat(part));
    }
  }
  if (!out.has_value()) return Status::invalid_argument("hash_join_stream: empty chunk stream");
  return std::move(*out);
}

}  // namespace ditto::exec
