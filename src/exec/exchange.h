// Exchange fabric: moves tables between the tasks of adjacent stages.
//
// This implements the paper's data communication API (§5: "shuffle and
// broadcast ... transparently dispatch I/O requests to shared memory or
// external storage, according to the co-location of the upstream and
// downstream tasks"):
//   * producer/consumer tasks on the SAME server exchange a
//     shared_ptr<const Table> — no serialization, no copy at all;
//   * tasks on DIFFERENT servers serialize through the ObjectStore and
//     deserialize on the consumer side.
// Exchange stats expose which path each message took, so tests and
// examples can verify the zero-copy claim end to end.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dag/types.h"
#include "exec/partition.h"
#include "exec/serde.h"
#include "exec/table.h"
#include "storage/object_store.h"

namespace ditto::exec {

/// A single producer-to-consumer pipe carrying tables.
class TableChannel {
 public:
  virtual ~TableChannel() = default;
  virtual Status send(std::shared_ptr<const Table> table) = 0;
  virtual std::optional<std::shared_ptr<const Table>> recv() = 0;
  virtual void close() = 0;
  virtual bool is_zero_copy() const = 0;
};

/// Same-server: the Table pointer moves; payload is shared.
class LocalTableChannel final : public TableChannel {
 public:
  Status send(std::shared_ptr<const Table> table) override;
  std::optional<std::shared_ptr<const Table>> recv() override;
  void close() override;
  bool is_zero_copy() const override { return true; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<const Table>> queue_;
  bool closed_ = false;
};

/// Cross-server: serialize -> ObjectStore -> deserialize.
class RemoteTableChannel final : public TableChannel {
 public:
  RemoteTableChannel(storage::ObjectStore& store, std::string prefix)
      : store_(&store), prefix_(std::move(prefix)) {}

  Status send(std::shared_ptr<const Table> table) override;
  std::optional<std::shared_ptr<const Table>> recv() override;
  void close() override;
  bool is_zero_copy() const override { return false; }

 private:
  storage::ObjectStore* store_;
  const std::string prefix_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t next_send_ = 0;
  std::size_t next_recv_ = 0;
  bool closed_ = false;
};

struct ExchangeStats {
  std::size_t zero_copy_messages = 0;
  std::size_t remote_messages = 0;
  Bytes remote_bytes = 0;
};

/// All channels of one DAG edge: producers x consumers.
class Exchange {
 public:
  /// `prod_servers[i]` / `cons_servers[j]` decide each pipe's flavour.
  Exchange(ExchangeKind kind, std::string partition_key,
           const std::vector<ServerId>& prod_servers,
           const std::vector<ServerId>& cons_servers, storage::ObjectStore& store,
           std::string prefix);

  /// Producer `i` publishes its output table; the exchange routes
  /// partitions (shuffle), the whole table (broadcast/all-gather), or a
  /// 1:1 slice (gather) and then closes producer i's pipes.
  Status send(std::size_t producer, Table table);

  /// Consumer `j` receives and concatenates everything routed to it.
  Result<Table> recv_all(std::size_t consumer);

  ExchangeStats stats() const;

  std::size_t producers() const { return producers_; }
  std::size_t consumers() const { return consumers_; }

 private:
  TableChannel& channel(std::size_t i, std::size_t j) {
    return *channels_[i * consumers_ + j];
  }
  Status route(std::size_t i, std::size_t j, std::shared_ptr<const Table> t);

  const ExchangeKind kind_;
  const std::string partition_key_;
  std::size_t producers_;
  std::size_t consumers_;
  std::vector<std::unique_ptr<TableChannel>> channels_;

  mutable std::mutex stats_mu_;
  ExchangeStats stats_;
};

}  // namespace ditto::exec
