// Exchange fabric: moves tables between the tasks of adjacent stages.
//
// This implements the paper's data communication API (§5: "shuffle and
// broadcast ... transparently dispatch I/O requests to shared memory or
// external storage, according to the co-location of the upstream and
// downstream tasks"):
//   * producer/consumer tasks on the SAME server exchange a
//     shared_ptr<const Table> — no serialization, no copy at all;
//   * tasks on DIFFERENT servers serialize through the ObjectStore and
//     deserialize on the consumer side.
// Exchange stats expose which path each message took, so tests and
// examples can verify the zero-copy claim end to end.
//
// Resilience contract (what makes duplicate task execution safe):
//   * send() is IDEMPOTENT per producer — the first publish wins, later
//     publishes of the same producer index are discarded. Remote
//     payloads live under deterministic keys, so a re-publish after a
//     partial failure overwrites byte-identical data.
//   * send_chunked() generalizes the same contract to chunk
//     granularity: a producer's output is published as a sequence of
//     fixed-size row chunks under deterministic (producer, chunk-seq)
//     keys, each chunk accepted exactly once (concurrent duplicate
//     attempts cooperatively claim the next unpublished chunk), and a
//     partial-failure rollback restarts the stream from chunk 0 —
//     deterministic stage functions re-produce byte-identical chunks,
//     so a consumer that already read part of the old stream observes
//     an indistinguishable sequence. See DESIGN.md §14.
//   * recv_all() is NON-DESTRUCTIVE — it snapshots the routed payloads
//     without consuming them, so a speculative duplicate of a consumer
//     task gathers exactly what the original saw.
//   * remote puts/gets run under a RetryPolicy (capped exponential
//     backoff), so transient storage errors injected by a FlakyStore
//     are absorbed inside the fabric.
//   * reset_producer() reopens one producer's channels after a server
//     loss so the engine can re-run the producer task and re-publish
//     its lost zero-copy intermediates (remote data survives in the
//     object store and is simply overwritten identically).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dag/types.h"
#include "exec/partition.h"
#include "exec/serde.h"
#include "exec/table.h"
#include "faults/retry_policy.h"
#include "storage/object_store.h"

namespace ditto::exec {

/// A single producer-to-consumer pipe carrying tables.
class TableChannel {
 public:
  virtual ~TableChannel() = default;

  virtual Status send(std::shared_ptr<const Table> table) = 0;

  /// Destructive streaming read (legacy interface; channel-level tests
  /// and benches use it). nullopt = closed and drained.
  virtual std::optional<std::shared_ptr<const Table>> recv() = 0;

  /// Non-destructive read of every payload sent so far; blocks until
  /// the channel is closed. Safe to call repeatedly (duplicate-safe
  /// consumers) and after a producer re-publish.
  virtual Result<std::vector<std::shared_ptr<const Table>>> snapshot_all() const = 0;

  /// Non-destructive indexed read: blocks until payload `idx` has been
  /// sent (or the channel aborts), without waiting for close. This is
  /// what lets a consumer start on the first arrived chunk while the
  /// producer is still streaming. After a producer reset the call
  /// simply waits for the re-publish to refill the slot — re-published
  /// chunks are byte-identical, so pre-reset reads stay valid.
  virtual Result<std::shared_ptr<const Table>> recv_at(std::size_t idx) const = 0;

  virtual void close() = 0;

  /// Reopens the channel after a producer reset, dropping any locally
  /// buffered payloads (a lost server's shared memory); durable remote
  /// payloads survive and are overwritten by the re-publish.
  virtual void reopen() = 0;

  /// Closes the channel and makes snapshot_all() fail UNAVAILABLE; used
  /// to unblock consumers when the job aborts.
  virtual void abort() = 0;

  virtual bool is_zero_copy() const = 0;
};

/// Same-server: the Table pointer moves; payload is shared.
class LocalTableChannel final : public TableChannel {
 public:
  Status send(std::shared_ptr<const Table> table) override;
  std::optional<std::shared_ptr<const Table>> recv() override;
  Result<std::vector<std::shared_ptr<const Table>>> snapshot_all() const override;
  Result<std::shared_ptr<const Table>> recv_at(std::size_t idx) const override;
  void close() override;
  void reopen() override;
  void abort() override;
  bool is_zero_copy() const override { return true; }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<std::shared_ptr<const Table>> items_;
  std::size_t next_recv_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
};

/// Cross-server: serialize -> ObjectStore -> deserialize. Payload keys
/// are deterministic (`prefix/seq`), so re-publishes after failure are
/// idempotent overwrites and snapshots re-read from the store.
class RemoteTableChannel final : public TableChannel {
 public:
  RemoteTableChannel(storage::ObjectStore& store, std::string prefix,
                     const faults::RetryPolicy* retry = nullptr,
                     std::atomic<std::size_t>* retry_counter = nullptr)
      : store_(&store), prefix_(std::move(prefix)), retry_(retry),
        retry_counter_(retry_counter) {}

  Status send(std::shared_ptr<const Table> table) override;
  std::optional<std::shared_ptr<const Table>> recv() override;
  Result<std::vector<std::shared_ptr<const Table>>> snapshot_all() const override;
  Result<std::shared_ptr<const Table>> recv_at(std::size_t idx) const override;
  void close() override;
  void reopen() override;
  void abort() override;
  bool is_zero_copy() const override { return false; }

 private:
  faults::RetryPolicy policy() const {
    return retry_ != nullptr ? *retry_ : faults::RetryPolicy{.max_attempts = 1};
  }

  storage::ObjectStore* store_;
  const std::string prefix_;
  const faults::RetryPolicy* retry_;
  std::atomic<std::size_t>* retry_counter_;
  /// Reused encode buffer: steady-state sends serialize without
  /// allocating. Guarded separately so serialization never holds mu_.
  mutable std::mutex scratch_mu_;
  SerdeScratch scratch_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::size_t next_send_ = 0;
  std::size_t next_recv_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
};

struct ExchangeStats {
  std::size_t zero_copy_messages = 0;
  std::size_t remote_messages = 0;
  Bytes remote_bytes = 0;
  std::size_t duplicate_publishes = 0;  ///< idempotently discarded sends
  std::size_t storage_retries = 0;      ///< remote put/get retries absorbed
  std::size_t producers_reset = 0;      ///< server-loss recovery resets
  std::size_t chunks_published = 0;     ///< accepted chunk publishes (>=1 per producer)
  std::size_t chunks_consumed = 0;      ///< chunks handed to streaming cursors
};

class Exchange;

/// Streaming consumer handle: yields the chunks routed to one consumer
/// in deterministic (producer-major, chunk-seq) order, blocking until
/// each chunk arrives — this is how a downstream task starts on the
/// first arrived chunk while upstream tasks are still running.
/// Non-destructive: a speculative duplicate consumer opening its own
/// cursor observes the identical sequence.
class ChunkCursor {
 public:
  /// Next chunk, or nullopt once every producer's stream is finished
  /// and drained. Fails UNAVAILABLE if the exchange is cancelled.
  Result<std::optional<std::shared_ptr<const Table>>> next();

  /// Bytes of chunk payload handed out so far (consumer-side I/O
  /// accounting for profiles).
  Bytes bytes_read() const { return bytes_; }

 private:
  friend class Exchange;
  ChunkCursor(Exchange* ex, std::size_t consumer) : ex_(ex), consumer_(consumer) {}

  Exchange* ex_;
  std::size_t consumer_;
  std::size_t producer_ = 0;
  std::size_t chunk_ = 0;
  Bytes bytes_ = 0;
};

/// All channels of one DAG edge: producers x consumers.
class Exchange {
 public:
  /// `prod_servers[i]` / `cons_servers[j]` decide each pipe's flavour.
  /// `retry` (not owned, may be null) governs remote put/get retries.
  /// `scatter_pool` (not owned, may be null) parallelizes shuffle
  /// partitioning for large tables; it must only run pure compute
  /// tasks, so sharing it across exchanges cannot deadlock.
  Exchange(ExchangeKind kind, std::string partition_key,
           const std::vector<ServerId>& prod_servers,
           const std::vector<ServerId>& cons_servers, storage::ObjectStore& store,
           std::string prefix, const faults::RetryPolicy* retry = nullptr,
           ThreadPool* scatter_pool = nullptr);

  /// Producer `i` publishes its output table; the exchange routes
  /// partitions (shuffle), the whole table (broadcast/all-gather), or a
  /// 1:1 slice (gather) and then closes producer i's pipes. Idempotent:
  /// the first publish per producer wins, duplicates are discarded (and
  /// block until the winner's publish resolves, taking over if it
  /// failed), which is what makes speculative re-execution safe.
  Status send(std::size_t producer, Table table);

  /// Chunk-granular publish: splits `table` into `chunk_rows`-row
  /// slices (zero-copy when the columns are borrowed) and publishes
  /// them in sequence, each chunk visible to streaming consumers the
  /// moment it is routed. Idempotent at chunk granularity: concurrent
  /// duplicate attempts cooperatively claim the next unpublished chunk
  /// from a shared per-producer counter, so every chunk is routed
  /// exactly once no matter how attempts interleave. On a mid-stream
  /// routing failure the whole stream rolls back to chunk 0 and the
  /// call fails; the retrying attempt (or a concurrent duplicate)
  /// restarts from the rolled-back counter. `tick` (may be null) runs
  /// between chunks — the engine uses it to honor cancellation at
  /// chunk boundaries; a non-ok tick abandons the stream without
  /// rollback (the job is aborting anyway).
  /// send() is exactly send_chunked() with a single chunk.
  Status send_chunked(std::size_t producer, Table table, std::size_t chunk_rows,
                      const std::function<Status()>& tick = nullptr);

  /// Consumer `j` receives and concatenates everything routed to it, in
  /// producer order (deterministic regardless of timing). Non-
  /// destructive: duplicate consumers see identical input.
  Result<Table> recv_all(std::size_t consumer);

  /// Opens a streaming cursor for consumer `j`. The cursor's chunk
  /// order (producer-major, chunk-seq) matches recv_all()'s concat
  /// order, which is what keeps pipelined and materialized execution
  /// bit-identical for order-preserving consumers.
  ChunkCursor open_cursor(std::size_t consumer) { return ChunkCursor(this, consumer); }

  /// Forgets producer `i`'s publish and reopens its channels, dropping
  /// locally buffered (zero-copy) payloads. The engine then re-runs the
  /// producer task to re-publish. Used for server-loss recovery.
  void reset_producer(std::size_t producer);

  /// Aborts every channel so blocked consumers fail fast (job abort).
  void cancel();

  /// True if any of producer `i`'s channels is a zero-copy pipe (its
  /// payloads would be lost with the producer's server).
  bool producer_has_local_channel(std::size_t producer) const;

  ExchangeStats stats() const;

  std::size_t producers() const { return producers_; }
  std::size_t consumers() const { return consumers_; }

 private:
  friend class ChunkCursor;

  /// Per-producer chunk-stream state, guarded by pub_mu_. The legacy
  /// whole-table publish is the 1-chunk special case.
  struct ChunkStream {
    std::size_t accepted = 0;  ///< chunks fully routed to every consumer
    bool publishing = false;   ///< a chunk route is in flight
    bool finished = false;     ///< stream complete; channel row closed
  };

  /// Routing telemetry of one publish attempt, committed to stats_ and
  /// the global metrics only when the publish wins (once per chunk
  /// index), so retries and recovery re-publishes don't inflate the
  /// counters.
  struct PendingStats {
    std::size_t zero_copy_messages = 0;
    std::size_t remote_messages = 0;
    Bytes zero_copy_bytes = 0;
    Bytes remote_bytes = 0;
  };

  TableChannel& channel(std::size_t i, std::size_t j) {
    return *channels_[i * consumers_ + j];
  }
  const TableChannel& channel(std::size_t i, std::size_t j) const {
    return *channels_[i * consumers_ + j];
  }
  Status route(std::size_t i, std::size_t j, std::shared_ptr<const Table> t,
               PendingStats& pending);
  void commit_route_stats(std::size_t producer, std::size_t chunk,
                          const PendingStats& pending);
  Status route_chunk(std::size_t producer, std::size_t chunk, Table table);
  void count_duplicate_publish();
  /// ChunkCursor backend: next chunk for `consumer` at cursor position
  /// (producer, chunk); blocks until the chunk arrives or the stream
  /// finishes. nullopt = this producer drained, advance the cursor.
  Result<std::optional<std::shared_ptr<const Table>>> next_chunk(std::size_t consumer,
                                                                 std::size_t producer,
                                                                 std::size_t chunk);

  const ExchangeKind kind_;
  const std::string partition_key_;
  ThreadPool* scatter_pool_;
  std::size_t producers_;
  std::size_t consumers_;
  std::vector<std::unique_ptr<TableChannel>> channels_;
  std::atomic<std::size_t> storage_retries_{0};

  mutable std::mutex pub_mu_;
  std::condition_variable pub_cv_;
  std::vector<ChunkStream> streams_;
  bool cancelled_ = false;  ///< guarded by pub_mu_; fails blocked cursors

  mutable std::mutex stats_mu_;
  ExchangeStats stats_;
  /// Per-producer count of chunk indices already counted into stats_,
  /// guarded by stats_mu_; re-publishes of the same chunk don't recount.
  std::vector<std::size_t> stats_chunks_counted_;
};

}  // namespace ditto::exec
