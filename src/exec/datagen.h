// Deterministic synthetic data generators for engine-level runs.
//
// The paper uses TPC-DS-generated data; at engine scale (MBs, not TBs)
// we generate tables with the same relational shape: a wide fact table
// (orders with warehouse/date/site foreign keys) and small dimension
// tables, with optional Zipf skew on keys so joins and group-bys see
// realistic value distributions.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "exec/table.h"

namespace ditto::exec {

struct FactTableSpec {
  std::size_t rows = 10000;
  std::int64_t num_orders = 2500;     ///< order_id domain (several rows per order)
  std::int64_t num_warehouses = 10;   ///< warehouse_id domain
  std::int64_t num_dates = 365;       ///< date_id domain
  std::int64_t num_sites = 20;        ///< site_id domain
  double key_zipf_skew = 0.0;         ///< 0 = uniform keys
  std::uint64_t seed = 42;
};

/// Columns: order_id, warehouse_id, date_id, site_id (int64),
/// price (double, per-row), quantity (int64).
Table gen_fact_table(const FactTableSpec& spec);

/// Dimension table: columns id (0..rows-1) and attr (int64 in
/// [0, attr_domain)). Deterministic per seed.
Table gen_dim_table(std::size_t rows, std::int64_t attr_domain, std::uint64_t seed = 7);

/// A returns table referencing a fact table's order ids: columns
/// order_id, return_amount. `return_fraction` of orders appear.
Table gen_returns_table(const Table& fact, double return_fraction, std::uint64_t seed = 11);

}  // namespace ditto::exec
