// Partitioners: split a table into n partitions for exchange.
#pragma once

#include <vector>

#include "common/status.h"
#include "exec/table.h"

namespace ditto::exec {

/// Hash-partition by an int64 key column: row r goes to partition
/// hash(key[r]) % n. Deterministic across runs and platforms.
Result<std::vector<Table>> hash_partition(const Table& in, const std::string& key,
                                          std::size_t n);

/// Split rows round-robin (used when no key is needed, e.g. scan
/// output balancing).
std::vector<Table> round_robin_partition(const Table& in, std::size_t n);

/// Contiguous range split: partition i gets rows [i*rows/n, (i+1)*rows/n).
std::vector<Table> range_partition(const Table& in, std::size_t n);

/// The stable 64-bit mix used by hash_partition (exposed for tests:
/// co-partitioned tables must agree on row routing).
std::uint64_t stable_hash64(std::int64_t key);

}  // namespace ditto::exec
