// Partitioners: split a table into n partitions for exchange.
//
// All row-routing partitioners run a single count-then-scatter pass:
// one pass computes each row's partition and per-chunk histograms, an
// exclusive scan turns the histograms into write cursors, and one
// scatter pass places every value directly into exact-size output
// vectors. No per-row push_back, no index vectors, no realloc. When a
// ThreadPool is supplied, both passes run chunk-parallel and write
// disjoint output ranges, so no locks are needed and row order within
// each partition is preserved.
//
// The plan/scatter machinery is exposed (not just the table-level
// partitioners) because the operator kernels reuse it: radix group-by
// and partitioned hash join route rows with the same count-then-scatter
// pass, and the vectorized filter gathers selected rows through the
// same uninitialized-buffer move path.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "exec/table.h"

namespace ditto {
class ThreadPool;
}

namespace ditto::exec {

/// Rows per chunk for chunk-parallel passes. Tables at or below this
/// size always take the serial path; larger ones parallelize
/// chunk-per-task when a pool is given.
inline constexpr std::size_t kScatterChunkRows = 64 * 1024;

/// Routing and placement state shared by the count and scatter passes.
/// Row order within each partition is the original row order (the
/// scatter is stable), which is what lets the operator kernels stay
/// bit-identical to their row-at-a-time references.
struct ScatterPlan {
  std::size_t rows = 0;
  std::size_t parts = 0;
  std::size_t chunks = 1;
  std::size_t chunk_rows = kScatterChunkRows;
  std::vector<std::uint32_t> part_of;    // rows entries: routing decision
  std::vector<std::size_t> counts;       // parts entries: partition sizes
  std::vector<std::size_t> base;         // chunks x parts: first write slot
  std::vector<std::size_t> part_start;   // parts+1 entries: global layout
};

/// Runs `body(chunk)` for chunks [0, chunks); chunk-parallel on `pool`
/// when given, serial otherwise. Blocks until every chunk finished.
/// Bodies must write disjoint state (the caller's contract).
void run_chunked(std::size_t chunks, ThreadPool* pool,
                 const std::function<void(std::size_t)>& body);

/// Count pass + exclusive scan for routing by stable_hash64(key) % parts
/// (the exchange-compatible routing used by hash_partition).
ScatterPlan make_hash_plan(ColumnSpan<std::int64_t> keys, std::size_t parts,
                           ThreadPool* pool);

/// Same, but routing by stable_hash64(key) & (parts - 1). `parts` must
/// be a power of two. This is the kernels' radix routing: cheaper than
/// the modulo and free to pick any power-of-two fanout.
ScatterPlan make_radix_plan(ColumnSpan<std::int64_t> keys, std::size_t parts,
                            ThreadPool* pool);

/// Radix routing over a composite key: row r is routed by
/// mix(h_0(r), ..., h_{k-1}(r)) & (parts - 1) where each h_i is
/// stable_hash64 of key column i. `parts` must be a power of two.
ScatterPlan make_radix_plan_multi(const std::vector<ColumnSpan<std::int64_t>>& keys,
                                  std::size_t parts, ThreadPool* pool);

/// Scatter pass over row INDICES: returns the partition-major array of
/// original row ids (partition q occupies [part_start[q], part_start[q+1])
/// and keeps original row order). The kernels aggregate or build hash
/// tables per partition straight off this array without materializing
/// partitioned tables.
std::vector<std::uint32_t> partitioned_row_indices(const ScatterPlan& plan,
                                                   ThreadPool* pool);

/// Scatter pass over VALUES: the partition-major copy of one column
/// (same layout as partitioned_row_indices — partition q occupies
/// [part_start[q], part_start[q+1]) in original row order). Reads are
/// sequential and writes stream per partition, so this is much cheaper
/// than gathering through a row-id permutation when the consumer scans
/// whole partitions — the radix group-by aggregates straight off these
/// arrays with every per-partition access cache-resident.
std::vector<std::int64_t> partitioned_values(const ScatterPlan& plan,
                                             ColumnSpan<std::int64_t> vals,
                                             ThreadPool* pool);
std::vector<double> partitioned_values(const ScatterPlan& plan, ColumnSpan<double> vals,
                                       ThreadPool* pool);

/// Gathers `n` rows of `in` (in the given order) into a new table
/// through the uninitialized-buffer move path: every fixed-width column
/// lands in one exact-size buffer written once (no zero-fill), columns
/// borrow the buffer, and the copy loop fuses all fixed-width columns
/// into a single row sweep. Chunk-parallel over output rows when a pool
/// is given. Row indices must be < in.num_rows().
Table gather_rows(const Table& in, const std::uint32_t* rows, std::size_t n,
                  ThreadPool* pool = nullptr);

/// Hash-partition by an int64 key column: row r goes to partition
/// hash(key[r]) % n. Deterministic across runs and platforms (the pool
/// only changes who does the work, never the routing or row order).
Result<std::vector<Table>> hash_partition(const Table& in, const std::string& key,
                                          std::size_t n, ThreadPool* pool = nullptr);

/// Split rows round-robin (used when no key is needed, e.g. scan
/// output balancing).
std::vector<Table> round_robin_partition(const Table& in, std::size_t n,
                                         ThreadPool* pool = nullptr);

/// Contiguous range split: partition i gets rows [i*rows/n, (i+1)*rows/n).
/// Implemented as slices, so borrowed columns stay zero-copy.
std::vector<Table> range_partition(const Table& in, std::size_t n);

/// The stable 64-bit mix used by hash_partition (exposed for tests:
/// co-partitioned tables must agree on row routing).
std::uint64_t stable_hash64(std::int64_t key);

}  // namespace ditto::exec
