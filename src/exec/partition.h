// Partitioners: split a table into n partitions for exchange.
//
// All row-routing partitioners run a single count-then-scatter pass:
// one pass computes each row's partition and per-chunk histograms, an
// exclusive scan turns the histograms into write cursors, and one
// scatter pass places every value directly into exact-size output
// vectors. No per-row push_back, no index vectors, no realloc. When a
// ThreadPool is supplied, both passes run chunk-parallel and write
// disjoint output ranges, so no locks are needed and row order within
// each partition is preserved.
#pragma once

#include <vector>

#include "common/status.h"
#include "exec/table.h"

namespace ditto {
class ThreadPool;
}

namespace ditto::exec {

/// Hash-partition by an int64 key column: row r goes to partition
/// hash(key[r]) % n. Deterministic across runs and platforms (the pool
/// only changes who does the work, never the routing or row order).
Result<std::vector<Table>> hash_partition(const Table& in, const std::string& key,
                                          std::size_t n, ThreadPool* pool = nullptr);

/// Split rows round-robin (used when no key is needed, e.g. scan
/// output balancing).
std::vector<Table> round_robin_partition(const Table& in, std::size_t n,
                                         ThreadPool* pool = nullptr);

/// Contiguous range split: partition i gets rows [i*rows/n, (i+1)*rows/n).
/// Implemented as slices, so borrowed columns stay zero-copy.
std::vector<Table> range_partition(const Table& in, std::size_t n);

/// The stable 64-bit mix used by hash_partition (exposed for tests:
/// co-partitioned tables must agree on row routing).
std::uint64_t stable_hash64(std::int64_t key);

}  // namespace ditto::exec
