// Relational operators of the analytics execution engine (paper §5:
// "The engine integrates a set of SQL operators (e.g., join and
// groupby) for analytics queries").
//
// Operators are pure functions Table -> Table; the task runtime binds
// them to stages. All joins hash the build side.
//
// The hot operators (group-by, hash join, filter, top-k) dispatch to
// the columnar multi-core kernels in kernels.{h,cpp}; each takes an
// optional ThreadPool* (nullptr = use the task's compute pool, see
// task_compute_pool() in kernels.h). The original row-at-a-time
// formulations are retained verbatim under ditto::exec::reference as
// the bit-identity oracle for the kernel-equivalence corpus.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/table.h"

namespace ditto {
class ThreadPool;
}

namespace ditto::exec {

/// Row predicate for filter(); receives the table and a row index.
using RowPredicate = std::function<bool(const Table&, std::size_t)>;

/// Keep only rows satisfying the predicate. Row-at-a-time by nature
/// (the predicate is an opaque std::function); engine queries should
/// prefer filter_cols below.
Table filter(const Table& in, const RowPredicate& pred);

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One typed columnar predicate: `column op rhs`, where rhs is either
/// a constant or `scale * rhs_column[r]`. The comparison runs in int64
/// when the left column, the rhs and the scale are all integral;
/// otherwise both sides are widened to double (matching what the
/// row-predicate lambdas these replaced computed via double_at()).
struct ColumnPred {
  std::string column;      ///< left-hand column (int64 or double)
  CmpOp op = CmpOp::kEq;
  std::string rhs_column;  ///< when non-empty: compare against scale * rhs[r]
  double scale = 1.0;      ///< multiplier for rhs_column (ignored for consts)
  std::int64_t int_value = 0;
  double double_value = 0.0;
  bool value_is_int = false;  ///< which constant field is live
};

/// `col op v` against an int64 constant.
ColumnPred pred_int(std::string column, CmpOp op, std::int64_t v);
/// `col op v` against a double constant.
ColumnPred pred_double(std::string column, CmpOp op, double v);
/// `col op scale * rhs[r]` (column vs scaled column).
ColumnPred pred_cols(std::string column, CmpOp op, std::string rhs_column,
                     double scale = 1.0);

/// Keep rows satisfying ALL predicates (fused AND, evaluated
/// column-at-a-time into one selection mask). Zero predicates keep
/// every row.
Result<Table> filter_cols(const Table& in, const std::vector<ColumnPred>& preds,
                          ThreadPool* pool = nullptr);

/// Typed fast-path: keep rows where int column `col` op `operand`.
Result<Table> filter_int(const Table& in, const std::string& col, CmpOp op,
                         std::int64_t operand, ThreadPool* pool = nullptr);

/// Keep rows where lo <= col <= hi (fused two-sided range).
Result<Table> filter_int_range(const Table& in, const std::string& col,
                               std::int64_t lo, std::int64_t hi,
                               ThreadPool* pool = nullptr);

/// Keep only the named columns, in the given order.
Result<Table> project(const Table& in, const std::vector<std::string>& columns);

enum class JoinKind { kInner, kLeftSemi, kLeftAnti };

/// Hash join on integer key columns `left_key` / `right_key`.
///  - kInner:    output = left columns + right columns (right key dropped)
///  - kLeftSemi: left rows with >= 1 match (left columns only)
///  - kLeftAnti: left rows with no match (left columns only)
/// Output order is deterministic: left rows in their input order; an
/// inner-join left row emits its duplicate matches by ascending right
/// row.
Result<Table> hash_join(const Table& left, const std::string& left_key, const Table& right,
                        const std::string& right_key, JoinKind kind = JoinKind::kInner,
                        ThreadPool* pool = nullptr);

enum class AggKind { kSum, kCount, kMin, kMax, kAvg, kFirstInt };

struct AggSpec {
  AggKind kind = AggKind::kSum;
  std::string column;  ///< ignored for kCount
  std::string as;      ///< output column name
};

/// Group by MULTIPLE int64 key columns (composite key) and aggregate.
/// Output columns: the key columns (in order), then the aggregates;
/// rows ordered lexicographically by key. TPC-DS queries group by
/// composite keys routinely (Q1: customer x store).
Result<Table> group_by_multi(const Table& in, const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs,
                             ThreadPool* pool = nullptr);

/// Group by an integer key column and aggregate.
/// Numeric aggregates output double columns except count and first-int
/// (int64). kFirstInt keeps the group's first-seen value of an int64
/// column — the passthrough needed to carry foreign keys through an
/// aggregation (e.g. Q95 keeps a representative date per order).
Result<Table> group_by(const Table& in, const std::string& key,
                       const std::vector<AggSpec>& aggs, ThreadPool* pool = nullptr);

/// Sort ascending/descending by an integer column. Stable.
Result<Table> sort_by_int(const Table& in, const std::string& col, bool ascending = true);

/// First n rows.
Table limit(const Table& in, std::size_t n);

/// Distinct count of an integer column (Q16/Q94/Q95's COUNT(DISTINCT)).
Result<std::size_t> count_distinct(const Table& in, const std::string& col);

/// Rows with distinct values of an integer key column; the first
/// occurrence of each key wins.
Result<Table> distinct_by(const Table& in, const std::string& key);

/// Top-k rows by an integer column (descending by default). Bounded
/// O(k)-memory heap selection, O(n log k); ties keep earlier rows,
/// exactly as the stable-sort-then-truncate formulation did.
Result<Table> top_k_by_int(const Table& in, const std::string& col, std::size_t k,
                           bool descending = true);

/// Concatenation of same-schema tables (SQL UNION ALL).
Result<Table> union_all(const std::vector<Table>& tables);

/// Adds a derived double column: out[r] = f(in, r). The paper's engine
/// exposes scalar expressions; this is the minimal general hook.
using ScalarFn = std::function<double(const Table&, std::size_t)>;
Result<Table> with_column(const Table& in, const std::string& name, const ScalarFn& f);

/// Row-at-a-time reference implementations, retained as the oracle for
/// the kernel-equivalence corpus (tests + bench gates). Semantics are
/// identical to the dispatching operators above — including error
/// statuses, output schemas and row order — just single-threaded and
/// built on std:: containers.
namespace reference {

Result<Table> filter_int(const Table& in, const std::string& col, CmpOp op,
                         std::int64_t operand);
Result<Table> filter_cols(const Table& in, const std::vector<ColumnPred>& preds);
Result<Table> hash_join(const Table& left, const std::string& left_key, const Table& right,
                        const std::string& right_key, JoinKind kind = JoinKind::kInner);
Result<Table> group_by(const Table& in, const std::string& key,
                       const std::vector<AggSpec>& aggs);
Result<Table> group_by_multi(const Table& in, const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs);
Result<Table> top_k_by_int(const Table& in, const std::string& col, std::size_t k,
                           bool descending = true);

}  // namespace reference

}  // namespace ditto::exec
