// Relational operators of the analytics execution engine (paper §5:
// "The engine integrates a set of SQL operators (e.g., join and
// groupby) for analytics queries").
//
// Operators are pure functions Table -> Table; the task runtime binds
// them to stages. All joins hash the build side.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/table.h"

namespace ditto::exec {

/// Row predicate for filter(); receives the table and a row index.
using RowPredicate = std::function<bool(const Table&, std::size_t)>;

/// Keep only rows satisfying the predicate.
Table filter(const Table& in, const RowPredicate& pred);

/// Typed fast-path: keep rows where int column `col` op `operand`.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
Result<Table> filter_int(const Table& in, const std::string& col, CmpOp op,
                         std::int64_t operand);

/// Keep only the named columns, in the given order.
Result<Table> project(const Table& in, const std::vector<std::string>& columns);

enum class JoinKind { kInner, kLeftSemi, kLeftAnti };

/// Hash join on integer key columns `left_key` / `right_key`.
///  - kInner:    output = left columns + right columns (right key dropped)
///  - kLeftSemi: left rows with >= 1 match (left columns only)
///  - kLeftAnti: left rows with no match (left columns only)
Result<Table> hash_join(const Table& left, const std::string& left_key, const Table& right,
                        const std::string& right_key, JoinKind kind = JoinKind::kInner);

enum class AggKind { kSum, kCount, kMin, kMax, kAvg, kFirstInt };

struct AggSpec {
  AggKind kind = AggKind::kSum;
  std::string column;  ///< ignored for kCount
  std::string as;      ///< output column name
};

/// Group by MULTIPLE int64 key columns (composite key) and aggregate.
/// Output columns: the key columns (in order), then the aggregates;
/// rows ordered lexicographically by key. TPC-DS queries group by
/// composite keys routinely (Q1: customer x store).
Result<Table> group_by_multi(const Table& in, const std::vector<std::string>& keys,
                             const std::vector<AggSpec>& aggs);

/// Group by an integer key column and aggregate.
/// Numeric aggregates output double columns except count and first-int
/// (int64). kFirstInt keeps the group's first-seen value of an int64
/// column — the passthrough needed to carry foreign keys through an
/// aggregation (e.g. Q95 keeps a representative date per order).
Result<Table> group_by(const Table& in, const std::string& key,
                       const std::vector<AggSpec>& aggs);

/// Sort ascending/descending by an integer column. Stable.
Result<Table> sort_by_int(const Table& in, const std::string& col, bool ascending = true);

/// First n rows.
Table limit(const Table& in, std::size_t n);

/// Distinct count of an integer column (Q16/Q94/Q95's COUNT(DISTINCT)).
Result<std::size_t> count_distinct(const Table& in, const std::string& col);

/// Rows with distinct values of an integer key column; the first
/// occurrence of each key wins.
Result<Table> distinct_by(const Table& in, const std::string& key);

/// Top-k rows by an integer column (descending by default).
Result<Table> top_k_by_int(const Table& in, const std::string& col, std::size_t k,
                           bool descending = true);

/// Concatenation of same-schema tables (SQL UNION ALL).
Result<Table> union_all(const std::vector<Table>& tables);

/// Adds a derived double column: out[r] = f(in, r). The paper's engine
/// exposes scalar expressions; this is the minimal general hook.
using ScalarFn = std::function<double(const Table&, std::size_t)>;
Result<Table> with_column(const Table& in, const std::string& name, const ScalarFn& f);

}  // namespace ditto::exec
