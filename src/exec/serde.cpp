#include "exec/serde.h"

#include <atomic>
#include <cstring>

namespace ditto::exec {

namespace {

constexpr std::uint64_t kMagicV1 = 0x444954544f544231ull;  // "DITTOTB1"
constexpr std::uint64_t kMagicV2 = 0x444954544f544232ull;  // "DITTOTB2"

// Plausibility bounds applied before any allocation. Every limit is
// also cross-checked against the bytes actually present, so a corrupt
// header can neither over-allocate nor wrap an offset computation.
constexpr std::uint64_t kMaxCols = 1'000'000;
constexpr std::uint64_t kMaxNameLen = 1'000'000;
constexpr std::uint64_t kMaxRows = 1'000'000'000;

std::atomic<int> g_write_version{2};

std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

// ---------------------------------------------------------------- write

/// Writes at computed offsets into a pre-sized buffer; the exact-size
/// pass has already run, so no bounds checks and no reallocation here.
class RawWriter {
 public:
  explicit RawWriter(std::uint8_t* out) : out_(out) {}

  void u64(std::uint64_t v) {
    std::memcpy(out_ + pos_, &v, sizeof(v));
    pos_ += sizeof(v);
  }
  void bytes(const void* p, std::size_t n) {
    if (n > 0) std::memcpy(out_ + pos_, p, n);
    pos_ += n;
  }
  void pad8() {
    while (pos_ % 8 != 0) out_[pos_++] = 0;
  }
  std::size_t pos() const { return pos_; }

 private:
  std::uint8_t* out_;
  std::size_t pos_ = 0;
};

std::size_t size_v1(const Table& t) {
  const std::size_t rows = t.num_rows();
  std::size_t n = 3 * 8;
  for (std::size_t c = 0; c < t.num_columns(); ++c) {
    n += 8 + t.schema()[c].name.size() + 8;
    switch (t.schema()[c].type) {
      case DataType::kInt64:
      case DataType::kDouble:
        n += rows * 8;
        break;
      case DataType::kString:
        for (const std::string& s : t.column(c).strings()) n += 8 + s.size();
        break;
    }
  }
  return n;
}

std::size_t size_v2(const Table& t) {
  const std::size_t rows = t.num_rows();
  std::size_t n = 3 * 8;
  for (std::size_t c = 0; c < t.num_columns(); ++c) {
    n += 8 + t.schema()[c].name.size() + 8;
    switch (t.schema()[c].type) {
      case DataType::kInt64:
      case DataType::kDouble:
        n = align8(n) + rows * 8;
        break;
      case DataType::kString: {
        n = align8(n) + (rows + 1) * 8;
        for (const std::string& s : t.column(c).strings()) n += s.size();
        break;
      }
    }
  }
  return n;
}

void write_v1(const Table& t, RawWriter& w) {
  w.u64(kMagicV1);
  w.u64(t.num_columns());
  w.u64(t.num_rows());
  for (std::size_t c = 0; c < t.num_columns(); ++c) {
    const Field& f = t.schema()[c];
    w.u64(f.name.size());
    w.bytes(f.name.data(), f.name.size());
    w.u64(static_cast<std::uint64_t>(f.type));
    const Column& col = t.column(c);
    switch (col.type()) {
      case DataType::kInt64: {
        const auto v = col.int_span();
        w.bytes(v.data(), v.size() * sizeof(std::int64_t));
        break;
      }
      case DataType::kDouble: {
        const auto v = col.double_span();
        w.bytes(v.data(), v.size() * sizeof(double));
        break;
      }
      case DataType::kString:
        for (const std::string& s : col.strings()) {
          w.u64(s.size());
          w.bytes(s.data(), s.size());
        }
        break;
    }
  }
}

void write_v2(const Table& t, RawWriter& w) {
  w.u64(kMagicV2);
  w.u64(t.num_columns());
  w.u64(t.num_rows());
  for (std::size_t c = 0; c < t.num_columns(); ++c) {
    const Field& f = t.schema()[c];
    w.u64(f.name.size());
    w.bytes(f.name.data(), f.name.size());
    w.u64(static_cast<std::uint64_t>(f.type));
    const Column& col = t.column(c);
    switch (col.type()) {
      case DataType::kInt64: {
        const auto v = col.int_span();
        w.pad8();
        w.bytes(v.data(), v.size() * sizeof(std::int64_t));
        break;
      }
      case DataType::kDouble: {
        const auto v = col.double_span();
        w.pad8();
        w.bytes(v.data(), v.size() * sizeof(double));
        break;
      }
      case DataType::kString: {
        // One offsets array (rows+1 entries, offsets[0] == 0) and one
        // contiguous blob: two bulk writes instead of 2·rows small ones.
        const auto& v = col.strings();
        w.pad8();
        std::uint64_t off = 0;
        w.u64(off);
        for (const std::string& s : v) {
          off += s.size();
          w.u64(off);
        }
        for (const std::string& s : v) w.bytes(s.data(), s.size());
        break;
      }
    }
  }
}

void write_table(const Table& t, int version, std::uint8_t* out, std::size_t expect) {
  RawWriter w(out);
  if (version == 1) {
    write_v1(t, w);
  } else {
    write_v2(t, w);
  }
  assert(w.pos() == expect && "serialized size mismatch");
  (void)expect;
}

// ----------------------------------------------------------------- read

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<std::uint64_t> u64() {
    if (remaining() < sizeof(std::uint64_t)) {
      return Status::invalid_argument("truncated table payload");
    }
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }

  /// Overflow-safe: compares `n` against what is left instead of
  /// computing pos_ + n (which wraps for huge corrupt lengths).
  Result<std::string_view> bytes(std::uint64_t n) {
    if (n > remaining()) return Status::invalid_argument("truncated table payload");
    const std::string_view v = bytes_.substr(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  /// Skips v2 alignment padding (position is payload-relative).
  Status skip_padding8() {
    const std::size_t pad = (8 - pos_ % 8) % 8;
    if (pad > remaining()) return Status::invalid_argument("truncated table payload");
    pos_ += pad;
    return Status::ok();
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  const char* cursor() const { return bytes_.data() + pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

Result<Field> read_field(Reader& r) {
  DITTO_ASSIGN_OR_RETURN(const std::uint64_t name_len, r.u64());
  if (name_len > kMaxNameLen) return Status::invalid_argument("implausible column name length");
  DITTO_ASSIGN_OR_RETURN(const std::string_view name, r.bytes(name_len));
  DITTO_ASSIGN_OR_RETURN(const std::uint64_t type_raw, r.u64());
  if (type_raw > static_cast<std::uint64_t>(DataType::kString)) {
    return Status::invalid_argument("bad column type");
  }
  return Field{std::string(name), static_cast<DataType>(type_raw)};
}

template <typename T>
Result<Column> read_fixed_v1(Reader& r, std::uint64_t rows) {
  // Bound the allocation by the bytes actually present (division, so a
  // huge `rows` cannot wrap the product).
  if (rows > r.remaining() / sizeof(T)) {
    return Status::invalid_argument("truncated table payload");
  }
  DITTO_ASSIGN_OR_RETURN(const std::string_view raw, r.bytes(rows * sizeof(T)));
  std::vector<T> v(static_cast<std::size_t>(rows));
  if (!raw.empty()) std::memcpy(v.data(), raw.data(), raw.size());
  return Column(std::move(v));
}

Result<Column> read_strings_v1(Reader& r, std::uint64_t rows) {
  // Every v1 string costs at least its 8-byte length prefix, so the
  // reserve below is bounded by the payload size.
  if (rows > r.remaining() / 8) return Status::invalid_argument("truncated table payload");
  std::vector<std::string> v;
  v.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows; ++i) {
    DITTO_ASSIGN_OR_RETURN(const std::uint64_t len, r.u64());
    DITTO_ASSIGN_OR_RETURN(const std::string_view s, r.bytes(len));
    v.emplace_back(s);
  }
  return Column(std::move(v));
}

template <typename T>
Result<Column> read_fixed_v2(Reader& r, std::uint64_t rows,
                             const std::shared_ptr<const void>& owner) {
  DITTO_RETURN_IF_ERROR(r.skip_padding8());
  if (rows > r.remaining() / sizeof(T)) {
    return Status::invalid_argument("truncated table payload");
  }
  const char* payload = r.cursor();
  DITTO_ASSIGN_OR_RETURN(const std::string_view raw, r.bytes(rows * sizeof(T)));
  const bool aligned = reinterpret_cast<std::uintptr_t>(payload) % alignof(T) == 0;
  if (owner != nullptr && aligned && rows > 0) {
    // Zero-copy: view the values where they already are; `owner` keeps
    // the wire buffer alive for as long as the column does.
    if constexpr (std::is_same_v<T, std::int64_t>) {
      return Column::borrow_ints(owner, reinterpret_cast<const std::int64_t*>(payload),
                                 static_cast<std::size_t>(rows));
    } else {
      return Column::borrow_doubles(owner, reinterpret_cast<const double*>(payload),
                                    static_cast<std::size_t>(rows));
    }
  }
  std::vector<T> v(static_cast<std::size_t>(rows));
  if (!raw.empty()) std::memcpy(v.data(), raw.data(), raw.size());
  return Column(std::move(v));
}

Result<Column> read_strings_v2(Reader& r, std::uint64_t rows) {
  DITTO_RETURN_IF_ERROR(r.skip_padding8());
  const std::uint64_t entries = rows + 1;
  if (entries > r.remaining() / 8) return Status::invalid_argument("truncated table payload");
  DITTO_ASSIGN_OR_RETURN(const std::string_view raw_offsets, r.bytes(entries * 8));
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(entries));
  std::memcpy(offsets.data(), raw_offsets.data(), raw_offsets.size());
  if (offsets.front() != 0) return Status::invalid_argument("bad string offsets");
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) return Status::invalid_argument("bad string offsets");
  }
  DITTO_ASSIGN_OR_RETURN(const std::string_view blob, r.bytes(offsets.back()));
  std::vector<std::string> v;
  v.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows; ++i) {
    v.emplace_back(blob.substr(static_cast<std::size_t>(offsets[i]),
                               static_cast<std::size_t>(offsets[i + 1] - offsets[i])));
  }
  return Column(std::move(v));
}

Result<Table> deserialize_impl(std::string_view bytes, std::shared_ptr<const void> owner) {
  Reader r(bytes);
  DITTO_ASSIGN_OR_RETURN(const std::uint64_t magic, r.u64());
  int version;
  if (magic == kMagicV1) {
    version = 1;
  } else if (magic == kMagicV2) {
    version = 2;
  } else {
    return Status::invalid_argument("bad table magic");
  }
  DITTO_ASSIGN_OR_RETURN(const std::uint64_t cols, r.u64());
  DITTO_ASSIGN_OR_RETURN(const std::uint64_t rows, r.u64());
  if (cols > kMaxCols) return Status::invalid_argument("implausible column count");
  if (rows > kMaxRows) return Status::invalid_argument("implausible row count");

  Schema schema;
  std::vector<Column> columns;
  for (std::uint64_t c = 0; c < cols; ++c) {
    DITTO_ASSIGN_OR_RETURN(Field field, read_field(r));
    Result<Column> col = Status::invalid_argument("unreachable");
    switch (field.type) {
      case DataType::kInt64:
        col = version == 1 ? read_fixed_v1<std::int64_t>(r, rows)
                           : read_fixed_v2<std::int64_t>(r, rows, owner);
        break;
      case DataType::kDouble:
        col = version == 1 ? read_fixed_v1<double>(r, rows)
                           : read_fixed_v2<double>(r, rows, owner);
        break;
      case DataType::kString:
        col = version == 1 ? read_strings_v1(r, rows) : read_strings_v2(r, rows);
        break;
    }
    if (!col.ok()) return col.status();
    schema.push_back(std::move(field));
    columns.push_back(std::move(col).value());
  }
  if (!r.exhausted()) return Status::invalid_argument("trailing bytes after table");
  return Table::make(std::move(schema), std::move(columns));
}

}  // namespace

int serde_write_version() { return g_write_version.load(std::memory_order_relaxed); }

void set_serde_write_version(int version) {
  assert((version == 1 || version == 2) && "unknown serde version");
  g_write_version.store(version == 1 ? 1 : 2, std::memory_order_relaxed);
}

std::size_t serialized_size(const Table& table) {
  return serde_write_version() == 1 ? size_v1(table) : size_v2(table);
}

std::string_view serialize_table_into(const Table& table, SerdeScratch& scratch) {
  const int version = serde_write_version();
  const std::size_t n = version == 1 ? size_v1(table) : size_v2(table);
  scratch.bytes.resize(n);  // keeps capacity: steady state reallocates never
  write_table(table, version, scratch.bytes.data(), n);
  return {reinterpret_cast<const char*>(scratch.bytes.data()), n};
}

shm::Buffer serialize_table(const Table& table) {
  const int version = serde_write_version();
  const std::size_t n = version == 1 ? size_v1(table) : size_v2(table);
  std::vector<std::uint8_t> out(n);
  write_table(table, version, out.data(), n);
  return shm::Buffer::adopt(std::move(out));
}

Result<Table> deserialize_table(std::string_view bytes) {
  return deserialize_impl(bytes, nullptr);
}

Result<Table> deserialize_table_borrowing(std::string_view bytes,
                                          std::shared_ptr<const void> owner) {
  return deserialize_impl(bytes, std::move(owner));
}

Result<Table> deserialize_table(const shm::Buffer& buf) {
  if (buf.empty()) return deserialize_impl(buf.view(), nullptr);
  return deserialize_impl(buf.view(), std::make_shared<shm::Buffer>(buf));
}

}  // namespace ditto::exec
