#include "exec/serde.h"

#include <cstring>

namespace ditto::exec {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const std::size_t at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, p, n);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<std::uint64_t> u64() {
    if (pos_ + sizeof(std::uint64_t) > bytes_.size()) {
      return Status::invalid_argument("truncated table payload");
    }
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }

  Result<std::string_view> bytes(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      return Status::invalid_argument("truncated table payload");
    }
    const std::string_view v = bytes_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

constexpr std::uint64_t kMagic = 0x444954544f544231ull;  // "DITTOTB1"

}  // namespace

shm::Buffer serialize_table(const Table& table) {
  std::vector<std::uint8_t> out;
  out.reserve(table.byte_size() + 64);
  put_u64(out, kMagic);
  put_u64(out, table.num_columns());
  put_u64(out, table.num_rows());
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const Field& f = table.schema()[c];
    put_u64(out, f.name.size());
    put_bytes(out, f.name.data(), f.name.size());
    put_u64(out, static_cast<std::uint64_t>(f.type));
    const Column& col = table.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        put_bytes(out, col.ints().data(), col.ints().size() * sizeof(std::int64_t));
        break;
      case DataType::kDouble:
        put_bytes(out, col.doubles().data(), col.doubles().size() * sizeof(double));
        break;
      case DataType::kString:
        for (const std::string& s : col.strings()) {
          put_u64(out, s.size());
          put_bytes(out, s.data(), s.size());
        }
        break;
    }
  }
  return shm::Buffer::adopt(std::move(out));
}

Result<Table> deserialize_table(std::string_view bytes) {
  Reader r(bytes);
  DITTO_ASSIGN_OR_RETURN(const std::uint64_t magic, r.u64());
  if (magic != kMagic) return Status::invalid_argument("bad table magic");
  DITTO_ASSIGN_OR_RETURN(const std::uint64_t cols, r.u64());
  DITTO_ASSIGN_OR_RETURN(const std::uint64_t rows, r.u64());
  if (cols > 1'000'000) return Status::invalid_argument("implausible column count");

  Schema schema;
  std::vector<Column> columns;
  for (std::uint64_t c = 0; c < cols; ++c) {
    DITTO_ASSIGN_OR_RETURN(const std::uint64_t name_len, r.u64());
    DITTO_ASSIGN_OR_RETURN(const std::string_view name, r.bytes(name_len));
    DITTO_ASSIGN_OR_RETURN(const std::uint64_t type_raw, r.u64());
    if (type_raw > static_cast<std::uint64_t>(DataType::kString)) {
      return Status::invalid_argument("bad column type");
    }
    const DataType type = static_cast<DataType>(type_raw);
    schema.push_back({std::string(name), type});
    switch (type) {
      case DataType::kInt64: {
        DITTO_ASSIGN_OR_RETURN(const std::string_view raw,
                               r.bytes(rows * sizeof(std::int64_t)));
        std::vector<std::int64_t> v(rows);
        std::memcpy(v.data(), raw.data(), raw.size());
        columns.emplace_back(std::move(v));
        break;
      }
      case DataType::kDouble: {
        DITTO_ASSIGN_OR_RETURN(const std::string_view raw, r.bytes(rows * sizeof(double)));
        std::vector<double> v(rows);
        std::memcpy(v.data(), raw.data(), raw.size());
        columns.emplace_back(std::move(v));
        break;
      }
      case DataType::kString: {
        std::vector<std::string> v;
        v.reserve(rows);
        for (std::uint64_t i = 0; i < rows; ++i) {
          DITTO_ASSIGN_OR_RETURN(const std::uint64_t len, r.u64());
          DITTO_ASSIGN_OR_RETURN(const std::string_view s, r.bytes(len));
          v.emplace_back(s);
        }
        columns.emplace_back(std::move(v));
        break;
      }
    }
  }
  if (!r.exhausted()) return Status::invalid_argument("trailing bytes after table");
  return Table::make(std::move(schema), std::move(columns));
}

}  // namespace ditto::exec
