#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <optional>
#include <set>
#include <thread>

#include "common/stopwatch.h"
#include "dag/dag_algorithms.h"
#include "exec/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ditto::exec {

namespace {

void note_resilience(const char* what, std::string detail) {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter(std::string("resilience.") + what).add();
  obs::TraceCollector& tc = obs::TraceCollector::global();
  if (tc.enabled()) {
    obs::TraceArgs args;
    args.emplace_back("detail", std::move(detail));
    tc.instant("resilience", what, tc.now_us(), -1, 0, std::move(args));
  }
}

std::string task_label(const JobDag& dag, StageId s, TaskId t) {
  return dag.stage(s).name() + "/" + std::to_string(t);
}

/// Timings and volumes of one attempt, for monitor/trace reporting.
struct TaskIo {
  double t_start = 0.0;
  double t_gathered = 0.0;
  double t_computed = 0.0;
  double t_end = 0.0;
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;
  std::size_t rows_out = 0;
  KernelSeconds kernels;  ///< operator-kernel time inside the stage fn
};

/// Per-task wave bookkeeping. `won` is the first-successful-attempt
/// gate: exactly one attempt records to the monitor and contributes a
/// completed duration.
struct TaskSlot {
  std::atomic<bool> won{false};
  std::atomic<bool> spec_launched{false};
  /// Attempts currently submitted or running for this slot. In overlap
  /// groups the driver uses `inflight == 0 && !won` to promote an
  /// exhausted slot to a run failure *mid-group*, so streaming
  /// consumers blocked on the dead producer's chunks get unblocked by
  /// the exchange cancel instead of deadlocking the group.
  std::atomic<int> inflight{0};
  double launch = 0.0;  ///< run-clock time the controller was submitted

  /// Failure that exhausted the original attempt chain. Written only by
  /// the original-attempt thread, read by the wave driver after every
  /// future has drained (future.get() orders the accesses). Promoted to
  /// the run's first_error only if no speculative duplicate won.
  Status exhausted;
};

/// Everything the per-attempt closures share for one run() call.
struct RunState {
  const JobDag* dag = nullptr;
  const std::map<StageId, StageBinding>* bindings = nullptr;
  cluster::RuntimeMonitor* monitor = nullptr;
  faults::FaultInjector* injector = nullptr;
  const faults::ResiliencePolicy* policy = nullptr;
  std::map<std::pair<StageId, StageId>, std::unique_ptr<Exchange>>* exchanges = nullptr;
  const Stopwatch* clock = nullptr;

  /// Mutable copy of the plan's placement; server-loss recovery
  /// reroutes entries. Only the wave driver thread mutates it, always
  /// between waves.
  std::vector<std::vector<ServerId>> task_server;

  std::mutex sink_mu;
  std::map<StageId, std::map<TaskId, Table>> sink_parts;  ///< first writer wins
  /// Captured non-sink outputs (EngineOptions::capture_stages); same
  /// first-writer-wins slots under sink_mu, so speculative duplicates
  /// stay safe.
  std::vector<char> capture;  ///< by stage; 1 = capture this stage
  std::map<StageId, std::map<TaskId, Table>> capture_parts;

  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status first_error;

  obs::StageProfileStore* profiles = nullptr;
  std::uint64_t fingerprint = 0;

  /// Pure-compute pool granted to stage fns (task_compute_pool());
  /// the same scatter pool the exchanges use — never a bounded server
  /// pool, so operator kernels can block on sub-work safely.
  ThreadPool* compute_pool = nullptr;

  /// Edges executing the chunked protocol (EngineOptions::pipeline):
  /// producers send_chunked(), consumers with a stream_fn pull via
  /// cursors. Empty when pipelining is off.
  std::set<std::pair<StageId, StageId>> stream_edges;
  std::size_t chunk_rows = 64 * 1024;

  bool streams(StageId src, StageId dst) const {
    return stream_edges.count({src, dst}) != 0;
  }

  std::atomic<std::size_t> task_retries{0};
  std::atomic<std::size_t> spec_launched{0};
  std::atomic<std::size_t> spec_wins{0};
  std::atomic<std::size_t> tasks_rerouted{0};
  std::atomic<std::size_t> producers_recovered{0};
  std::atomic<std::size_t> servers_lost{0};

  void fail(const Status& st) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error.is_ok()) first_error = st;
    failed.store(true);
  }
};

/// One clean pass of a task's body: gather -> compute -> publish. No
/// injection and no winner bookkeeping here — callers layer those. Safe
/// to run multiple times: inputs are snapshots, exchange publishes are
/// idempotent, sink slots are first-writer-wins.
Status run_task_once(RunState& rs, StageId s, TaskId t, int dop, TaskIo* io) {
  const StageBinding& binding = rs.bindings->at(s);
  io->t_start = rs.clock->elapsed_seconds();

  const auto& parents = rs.dag->parents(s);
  const bool stream_in = binding.stream_fn != nullptr &&
                         std::any_of(parents.begin(), parents.end(),
                                     [&](StageId p) { return rs.streams(p, s); });

  std::optional<Result<Table>> out;
  if (stream_in) {
    // Streaming consumer: parent edges on the chunked protocol become
    // pull cursors, so the stage fn starts on the first arrived chunk
    // while upstream tasks are still producing. Materialized parent
    // edges (broadcast build sides, non-pipelined edges) appear as a
    // single-chunk iterator over their merged table. Gather time is
    // interleaved with compute here, so the whole fn is charged as
    // compute (t_gathered == t_start).
    std::vector<ChunkCursor> cursors;
    cursors.reserve(parents.size());
    std::vector<TableChunkFn> inputs;
    inputs.reserve(parents.size());
    for (StageId p : parents) {
      Exchange* ex = rs.exchanges->at({p, s}).get();
      if (rs.streams(p, s)) {
        cursors.push_back(ex->open_cursor(static_cast<std::size_t>(t)));
        ChunkCursor* cur = &cursors.back();
        inputs.push_back([cur]() -> Result<std::optional<Table>> {
          DITTO_ASSIGN_OR_RETURN(auto chunk, cur->next());
          if (!chunk.has_value()) return std::optional<Table>(std::nullopt);
          return std::optional<Table>(**chunk);
        });
      } else {
        auto done = std::make_shared<bool>(false);
        inputs.push_back([ex, t, done, io]() -> Result<std::optional<Table>> {
          if (*done) return std::optional<Table>(std::nullopt);
          *done = true;
          DITTO_ASSIGN_OR_RETURN(Table in, ex->recv_all(static_cast<std::size_t>(t)));
          io->bytes_in += in.byte_size();
          return std::optional<Table>(std::move(in));
        });
      }
    }
    io->t_gathered = io->t_start;
    {
      ScopedComputePool pool_scope(rs.compute_pool);
      reset_kernel_seconds();
      try {
        out.emplace(binding.stream_fn(static_cast<int>(t), dop, inputs));
      } catch (const std::exception& e) {
        return Status::internal(std::string("stream fn threw: ") + e.what());
      } catch (...) {
        return Status::internal("stream fn threw a non-standard exception");
      }
      io->kernels = current_kernel_seconds();
    }
    for (const ChunkCursor& cur : cursors) io->bytes_in += cur.bytes_read();
  } else {
    // Materialized path: gather every parent edge in full, then run the
    // stage fn. Streaming producers feeding a fn-only stage fall back
    // to gather-on-last-chunk here — recv_all blocks until the stream
    // seals and concatenates the chunks in cursor order, so blocking
    // consumers (group-by builds) see the identical merged table.
    std::vector<Table> inputs;
    inputs.reserve(parents.size());
    for (StageId p : parents) {
      auto in = rs.exchanges->at({p, s})->recv_all(static_cast<std::size_t>(t));
      if (!in.ok()) return in.status();
      io->bytes_in += in.value().byte_size();
      inputs.push_back(std::move(in).value());
    }
    io->t_gathered = rs.clock->elapsed_seconds();
    {
      // Operator kernels inside the stage fn pick up the pure-compute
      // pool via task_compute_pool(), and their per-kernel wall time is
      // collected for the task's profile sample.
      ScopedComputePool pool_scope(rs.compute_pool);
      reset_kernel_seconds();
      try {
        out.emplace(binding.fn(static_cast<int>(t), dop, inputs));
      } catch (const std::exception& e) {
        return Status::internal(std::string("stage fn threw: ") + e.what());
      } catch (...) {
        return Status::internal("stage fn threw a non-standard exception");
      }
      io->kernels = current_kernel_seconds();
    }
  }
  if (!out->ok()) return out->status();
  io->t_computed = rs.clock->elapsed_seconds();
  io->rows_out = out->value().num_rows();

  const auto& children = rs.dag->children(s);
  if (children.empty()) {
    Table value = std::move(*out).value();
    io->bytes_out = value.byte_size();
    std::lock_guard<std::mutex> lock(rs.sink_mu);
    rs.sink_parts[s].try_emplace(static_cast<TaskId>(t), std::move(value));
  } else {
    io->bytes_out = out->value().byte_size();
    if (s < rs.capture.size() && rs.capture[s] != 0) {
      Table copy = out->value();
      std::lock_guard<std::mutex> lock(rs.sink_mu);
      rs.capture_parts[s].try_emplace(static_cast<TaskId>(t), std::move(copy));
    }
    // Cancellation at chunk boundaries: a failing run stops a
    // streaming producer between chunks instead of finishing the
    // stream.
    const auto tick = [&rs]() -> Status {
      return rs.failed.load(std::memory_order_acquire)
                 ? Status::cancelled("job aborting")
                 : Status::ok();
    };
    for (std::size_t c = 0; c < children.size(); ++c) {
      // The last child may take the table by move.
      Table payload = (c + 1 == children.size()) ? std::move(*out).value() : out->value();
      Exchange* ex = rs.exchanges->at({s, children[c]}).get();
      if (rs.streams(s, children[c])) {
        DITTO_RETURN_IF_ERROR(ex->send_chunked(static_cast<std::size_t>(t),
                                               std::move(payload), rs.chunk_rows, tick));
      } else {
        DITTO_RETURN_IF_ERROR(ex->send(static_cast<std::size_t>(t), std::move(payload)));
      }
    }
  }
  io->t_end = rs.clock->elapsed_seconds();
  return Status::ok();
}

/// One attempt of a wave task: fault injection, body, winner election,
/// reporting. Returns the attempt's status; a loser to a faster
/// duplicate still returns OK (its duplicate publish was discarded).
Status task_attempt(RunState& rs, StageId s, TaskId t, int dop, ServerId server, int attempt,
                    bool speculative, TaskSlot& slot, std::mutex& dur_mu,
                    std::vector<double>& durations) {
  if (slot.won.load(std::memory_order_acquire)) return Status::ok();

  if (rs.injector != nullptr) {
    if (rs.injector->should_crash(s, t, attempt)) {
      return Status::internal("injected crash: " + task_label(*rs.dag, s, t) + " attempt " +
                              std::to_string(attempt));
    }
    const Seconds hang = rs.injector->hang_seconds(s, t, attempt);
    if (hang > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(hang));
    }
  }

  TaskIo io;
  DITTO_RETURN_IF_ERROR(run_task_once(rs, s, t, dop, &io));

  bool expected = false;
  if (!slot.won.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    return Status::ok();  // a duplicate finished first; publishes were idempotent
  }

  if (speculative) {
    rs.spec_wins.fetch_add(1, std::memory_order_relaxed);
    note_resilience("speculative_win", task_label(*rs.dag, s, t));
  }
  {
    std::lock_guard<std::mutex> lock(dur_mu);
    durations.push_back(io.t_end - io.t_start);
  }

  if (rs.monitor != nullptr) {
    cluster::TaskRecord rec;
    rec.stage = s;
    rec.task = t;
    rec.server = server;
    rec.start = io.t_start;
    rec.end = io.t_end;
    rec.read_time = io.t_gathered - io.t_start;
    rec.compute_time = io.t_computed - io.t_gathered;
    rec.write_time = io.t_end - io.t_computed;
    rec.bytes_read = io.bytes_in;
    rec.bytes_written = io.bytes_out;
    rs.monitor->record(rec);
  }

  if (rs.profiles != nullptr) {
    obs::TaskSample sample;
    sample.task_seconds = io.t_end - io.t_start;
    sample.compute_seconds = io.t_computed - io.t_gathered;
    sample.transport_seconds = (io.t_gathered - io.t_start) + (io.t_end - io.t_computed);
    sample.queue_seconds = std::max(0.0, io.t_start - slot.launch);
    sample.retries = attempt;
    if (io.kernels.group_by > 0.0) sample.kernel_seconds["group_by"] = io.kernels.group_by;
    if (io.kernels.join > 0.0) sample.kernel_seconds["join"] = io.kernels.join;
    if (io.kernels.filter > 0.0) sample.kernel_seconds["filter"] = io.kernels.filter;
    if (io.kernels.top_k > 0.0) sample.kernel_seconds["top_k"] = io.kernels.top_k;
    rs.profiles->record(rs.fingerprint, s, dop, sample);
  }

  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.counter("engine.tasks_total").add();
    mx.counter("engine.rows_out").add(io.rows_out);
    mx.counter("engine.bytes_out").add(io.bytes_out);
    mx.counter("engine.bytes_in").add(io.bytes_in);
    mx.histogram("engine.task_seconds", 0.0, 10.0, 50).observe(io.t_end - io.t_start);
    if (io.kernels.any()) {
      mx.histogram("engine.kernel_seconds", 0.0, 10.0, 50).observe(io.kernels.total());
    }
  }
  obs::TraceCollector& tc = obs::TraceCollector::global();
  if (tc.enabled()) {
    const std::string& stage_name = rs.dag->stage(s).name();
    const std::int64_t pid = server == kNoServer ? -1 : static_cast<std::int64_t>(server);
    const std::int64_t tid = static_cast<std::int64_t>(s) * 4096 + t;
    const std::uint64_t now = tc.now_us();
    const std::uint64_t dur = static_cast<std::uint64_t>((io.t_end - io.t_start) * 1e6 + 0.5);
    obs::TraceArgs args;
    args.emplace_back("stage", stage_name);
    args.emplace_back("task", std::to_string(t));
    args.emplace_back("attempt", std::to_string(attempt));
    args.emplace_back("speculative", speculative ? "1" : "0");
    args.emplace_back("rows_out", std::to_string(io.rows_out));
    args.emplace_back("bytes_in", std::to_string(io.bytes_in));
    args.emplace_back("bytes_out", std::to_string(io.bytes_out));
    args.emplace_back("gather_s", std::to_string(io.t_gathered - io.t_start));
    args.emplace_back("compute_s", std::to_string(io.t_computed - io.t_gathered));
    args.emplace_back("emit_s", std::to_string(io.t_end - io.t_computed));
    tc.span("engine.task", stage_name + "/" + std::to_string(t), now > dur ? now - dur : 0,
            dur, pid, tid, std::move(args));
  }
  return Status::ok();
}

/// Server-loss recovery, run between waves by the wave driver thread:
///   1. reroute every not-yet-executed task placed on the dead server
///      to surviving servers (deterministic round-robin);
///   2. for completed producer tasks that lived on the dead server and
///      fed a pending consumer through a zero-copy channel, reset those
///      channels and re-run the producer on a survivor to re-publish.
///      Remote payloads survive in the object store untouched; the
///      re-publish overwrites them with identical bytes, and edges to
///      already-finished consumers discard the duplicate publish.
/// Channel flavours are fixed at placement time, so a rerouted pair
/// keeps its original local/remote path — a modeling simplification
/// (the payload lives in engine memory either way).
Status recover_server_loss(RunState& rs, ServerId dead, const std::vector<StageId>& order,
                           std::size_t next_idx) {
  rs.servers_lost.fetch_add(1, std::memory_order_relaxed);
  note_resilience("server_lost", "server " + std::to_string(dead));

  std::set<ServerId> alive_set;
  for (const auto& ts : rs.task_server) {
    for (ServerId v : ts) {
      if (v != kNoServer && v != dead && !(rs.injector != nullptr && rs.injector->server_dead(v))) {
        alive_set.insert(v);
      }
    }
  }
  if (alive_set.empty()) return Status::unavailable("no surviving servers after loss");
  const std::vector<ServerId> alive(alive_set.begin(), alive_set.end());

  const std::set<StageId> pending(order.begin() + next_idx, order.end());

  // Producers to recover, collected before rerouting mutates placement.
  // De-dup: one producer task may feed several pending edges.
  std::vector<std::pair<StageId, std::size_t>> rerun;
  for (std::size_t idx = 0; idx < next_idx; ++idx) {
    const StageId p = order[idx];
    for (std::size_t i = 0; i < rs.task_server[p].size(); ++i) {
      if (rs.task_server[p][i] != dead) continue;
      for (StageId c : rs.dag->children(p)) {
        if (pending.count(c) == 0) continue;
        if (rs.exchanges->at({p, c})->producer_has_local_channel(i)) {
          rerun.emplace_back(p, i);
          break;
        }
      }
    }
  }

  // Reroute pending tasks off the dead server.
  std::size_t rr = 0;
  for (std::size_t idx = next_idx; idx < order.size(); ++idx) {
    for (ServerId& v : rs.task_server[order[idx]]) {
      if (v == dead) {
        v = alive[rr++ % alive.size()];
        rs.tasks_rerouted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (rr > 0) note_resilience("tasks_rerouted", std::to_string(rr) + " off server " +
                                                    std::to_string(dead));

  // Re-publish lost zero-copy intermediates by re-running the producer.
  for (const auto& [p, i] : rerun) {
    for (StageId c : rs.dag->children(p)) {
      if (pending.count(c) != 0) rs.exchanges->at({p, c})->reset_producer(i);
    }
    rs.task_server[p][i] = alive[rr++ % alive.size()];
    const int dop = static_cast<int>(rs.task_server[p].size());
    Status last = Status::ok();
    const int attempts = std::max(1, rs.policy->max_task_attempts);
    for (int a = 0; a < attempts; ++a) {
      TaskIo io;
      last = run_task_once(rs, p, static_cast<TaskId>(i), dop, &io);
      if (last.is_ok()) break;
    }
    if (!last.is_ok()) return last;
    rs.producers_recovered.fetch_add(1, std::memory_order_relaxed);
    note_resilience("producer_recovered", task_label(*rs.dag, p, static_cast<TaskId>(i)));
  }
  return Status::ok();
}

}  // namespace

ServerPools::ServerPools(const std::vector<int>& widths) {
  pools_.reserve(widths.size());
  for (int w : widths) {
    pools_.push_back(std::make_unique<ThreadPool>(static_cast<std::size_t>(std::max(1, w))));
  }
}

MiniEngine::MiniEngine(const JobDag& dag, const cluster::PlacementPlan& plan,
                       storage::ObjectStore& store, EngineOptions options)
    : dag_(&dag), plan_(&plan), store_(&store), options_(std::move(options)) {}

Result<EngineResult> MiniEngine::run(const std::map<StageId, StageBinding>& bindings,
                                     cluster::RuntimeMonitor* monitor) {
  DITTO_RETURN_IF_ERROR(dag_->validate());
  for (StageId s = 0; s < dag_->num_stages(); ++s) {
    if (bindings.count(s) == 0) {
      return Status::invalid_argument("missing binding for stage " + dag_->stage(s).name());
    }
    if (plan_->dop_of(s) < 1 || plan_->task_server[s].size() != static_cast<std::size_t>(plan_->dop[s])) {
      return Status::invalid_argument("plan not sized to DAG");
    }
  }

  ServerId max_server = 0;
  for (const auto& ts : plan_->task_server) {
    for (ServerId v : ts) {
      if (v != kNoServer) max_server = std::max(max_server, v);
    }
  }

  const std::vector<StageId> order = topological_order(*dag_);

  // Pipelined shuffle (EngineOptions::pipeline): collect the streaming
  // edges, then coalesce consecutive topo-order stages connected only
  // by streaming edges into overlap groups that execute together.
  // Overlap requires private pools — on a shared multi-job substrate a
  // blocked streaming consumer could starve the producer feeding it
  // through the FIFO queue, so with shared pools every stage stays its
  // own group (classic waves).
  const bool overlap_enabled = options_.pipeline && options_.pools == nullptr;
  std::set<std::pair<StageId, StageId>> stream_edges;
  if (overlap_enabled) {
    std::set<std::pair<StageId, StageId>> wanted(options_.pipeline_edges.begin(),
                                                 options_.pipeline_edges.end());
    for (const Edge& e : dag_->edges()) {
      if (e.exchange != ExchangeKind::kShuffle) continue;
      if (!wanted.empty() && wanted.count({e.src, e.dst}) == 0) continue;
      stream_edges.insert({e.src, e.dst});
    }
  }
  // groups[g] = contiguous run of indices into `order`. A stage joins
  // the current group iff it has a parent there and every such parent
  // connects through a streaming edge; everything else (including all
  // stages when pipelining is off) starts a fresh group, which makes a
  // singleton group exactly one classic wave.
  std::vector<std::vector<std::size_t>> groups;
  std::vector<int> group_of(dag_->num_stages(), -1);
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const StageId s = order[idx];
    bool join = false;
    if (!groups.empty()) {
      const int cur = static_cast<int>(groups.size()) - 1;
      bool has_cur_parent = false;
      bool all_stream = true;
      for (StageId p : dag_->parents(s)) {
        if (group_of[p] == cur) {
          has_cur_parent = true;
          if (stream_edges.count({p, s}) == 0) all_stream = false;
        }
      }
      join = has_cur_parent && all_stream;
    }
    if (join) {
      groups.back().push_back(idx);
    } else {
      groups.push_back({idx});
    }
    group_of[s] = static_cast<int>(groups.size()) - 1;
  }

  // Worker pools. Shared pools (a multi-job service's substrate) bound
  // concurrency per cluster server across jobs; otherwise this run
  // materializes private pools whose width is the maximum number of
  // tasks any single overlap group places there (a singleton group =
  // one stage, the classic wave sizing). Group-sum sizing guarantees a
  // thread for every task in the group, so a streaming consumer can
  // block on its cursor without starving the producer feeding it.
  std::vector<std::unique_ptr<ThreadPool>> own_pools;
  if (options_.pools != nullptr) {
    if (static_cast<std::size_t>(max_server) >= options_.pools->num_servers()) {
      return Status::invalid_argument(
          "plan places tasks on server " + std::to_string(max_server) + " but shared pools "
          "cover only " + std::to_string(options_.pools->num_servers()) + " servers");
    }
  } else {
    std::vector<std::size_t> width(max_server + 1, 1);
    for (const auto& gidx : groups) {
      std::vector<std::size_t> per_server(max_server + 1, 0);
      for (const std::size_t idx : gidx) {
        for (ServerId v : plan_->task_server[order[idx]]) {
          if (v != kNoServer) width[v] = std::max(width[v], ++per_server[v]);
        }
      }
    }
    own_pools.reserve(width.size());
    for (std::size_t w : width) own_pools.push_back(std::make_unique<ThreadPool>(w));
  }
  const auto pool_for = [&](ServerId v) -> ThreadPool& {
    const std::size_t idx = v == kNoServer ? 0 : static_cast<std::size_t>(v);
    return options_.pools != nullptr ? options_.pools->pool(idx) : *own_pools[idx];
  };
  const auto cancel_requested = [this]() {
    return options_.cancel != nullptr && options_.cancel->load(std::memory_order_acquire);
  };

  // One exchange per DAG edge, namespaced so concurrent jobs sharing an
  // object store cannot collide on deterministic keys. Remote channels
  // retry transient storage failures under the resilience policy's
  // storage RetryPolicy.
  const std::string ns =
      options_.exchange_prefix.empty() ? dag_->name() : options_.exchange_prefix;
  // Dedicated pure-compute pool for shuffle partitioning, shared by all
  // exchanges. It never runs blocking work, so it cannot deadlock with
  // the bounded server pools; declared before the exchange map so it
  // outlives every exchange that uses it.
  std::unique_ptr<ThreadPool> scatter_pool;
  if (const unsigned hw = std::thread::hardware_concurrency(); hw >= 2) {
    scatter_pool = std::make_unique<ThreadPool>(std::min<unsigned>(hw, 8));
  }
  std::map<std::pair<StageId, StageId>, std::unique_ptr<Exchange>> exchanges;
  for (const Edge& e : dag_->edges()) {
    const std::string key = bindings.at(e.src).key_for(e.dst);
    exchanges.emplace(
        std::make_pair(e.src, e.dst),
        std::make_unique<Exchange>(e.exchange, key, plan_->task_server[e.src],
                                   plan_->task_server[e.dst], *store_,
                                   ns + "/e" + std::to_string(e.src) + "_" +
                                       std::to_string(e.dst),
                                   &options_.resilience.storage, scatter_pool.get()));
  }

  Stopwatch clock;
  EngineResult result;

  RunState rs;
  rs.dag = dag_;
  rs.bindings = &bindings;
  rs.monitor = monitor;
  rs.injector = options_.injector;
  rs.policy = &options_.resilience;
  rs.exchanges = &exchanges;
  rs.clock = &clock;
  rs.task_server = plan_->task_server;
  rs.profiles = options_.profiles;
  rs.fingerprint = options_.plan_fingerprint;
  rs.compute_pool = scatter_pool.get();
  rs.stream_edges = stream_edges;
  rs.chunk_rows = std::max<std::size_t>(1, options_.chunk_rows);
  rs.capture.assign(dag_->num_stages(), 0);
  for (const StageId s : options_.capture_stages) {
    if (s < rs.capture.size()) rs.capture[s] = 1;
  }

  const faults::ResiliencePolicy& policy = options_.resilience;
  const int max_attempts = std::max(1, policy.max_task_attempts);
  result.stats.stage_seconds.assign(dag_->num_stages(), 0.0);

  /// Per-stage bookkeeping of one overlap group (a singleton group is
  /// exactly one classic wave).
  struct StageWave {
    StageId s = kNoStage;
    int dop = 0;
    double launch_time = 0.0;
    double done_time = -1.0;  ///< set when every slot has a winner
    std::vector<TaskSlot> slots;
    std::mutex dur_mu;
    std::vector<double> durations;
    explicit StageWave(int n) : slots(n) { durations.reserve(n); }
  };

  // Overlap groups in topological order. Within a group, producers are
  // submitted before their streaming consumers (topo order + FIFO
  // pools), so every task in the group holds a thread and chunks flow
  // producer -> consumer without a wave barrier.
  for (std::size_t gi = 0; gi < groups.size() && !rs.failed.load(); ++gi) {
    const std::vector<std::size_t>& gidx = groups[gi];

    if (cancel_requested()) {
      rs.fail(Status::cancelled("engine run cancelled before stage " +
                                dag_->stage(order[gidx.front()]).name()));
      break;
    }

    // Server-loss boundary: kill the doomed server, reroute its pending
    // tasks, and re-publish completed zero-copy intermediates it held.
    // The boundary index is the order position of the group's first
    // stage, so a loss scheduled mid-group fires before the group (the
    // injector fires at the first boundary >= its configured wave).
    if (rs.injector != nullptr) {
      const ServerId lost = rs.injector->take_server_loss(static_cast<int>(gidx.front()));
      if (lost != kNoServer) {
        const Status st = recover_server_loss(rs, lost, order, gidx.front());
        if (!st.is_ok()) {
          for (auto& [edge, ex] : exchanges) ex->cancel();
          return st;
        }
      }
    }

    std::vector<std::unique_ptr<StageWave>> waves;
    waves.reserve(gidx.size());
    std::vector<std::future<Status>> futures;
    // ScopedSpan is pinned (no moves); deque emplace never relocates.
    std::deque<obs::ScopedSpan> spans;  // one per stage, closed at group end

    for (const std::size_t idx : gidx) {
      const StageId s = order[idx];
      const int dop = plan_->dop_of(s);
      spans.emplace_back("engine.stage", dag_->stage(s).name().c_str(), -1,
                         static_cast<std::int64_t>(s));
      spans.back().arg("dop", std::to_string(dop));
      if (gidx.size() > 1) spans.back().arg("overlap_group", std::to_string(gi));

      auto wave = std::make_unique<StageWave>(dop);
      wave->s = s;
      wave->dop = dop;
      wave->launch_time = clock.elapsed_seconds();
      StageWave& w = *wave;
      waves.push_back(std::move(wave));

      for (int t = 0; t < dop; ++t) {
        const ServerId server = rs.task_server[s][t];
        ThreadPool& pool = pool_for(server);
        TaskSlot& slot = w.slots[t];
        slot.launch = clock.elapsed_seconds();
        slot.inflight.fetch_add(1, std::memory_order_acq_rel);
        futures.push_back(pool.submit_guarded([&rs, &w, &slot, s, t, dop, server,
                                               max_attempts]() -> Status {
          Status last = Status::ok();
          for (int attempt = 0; attempt < max_attempts; ++attempt) {
            if (rs.failed.load() || slot.won.load()) {
              slot.inflight.fetch_sub(1, std::memory_order_acq_rel);
              return Status::ok();
            }
            if (attempt > 0) {
              rs.task_retries.fetch_add(1, std::memory_order_relaxed);
              note_resilience("task_retry", task_label(*rs.dag, s, static_cast<TaskId>(t)) +
                                                " attempt " + std::to_string(attempt));
            }
            last = task_attempt(rs, s, static_cast<TaskId>(t), dop, server, attempt,
                                /*speculative=*/false, slot, w.dur_mu, w.durations);
            if (last.is_ok()) {
              slot.inflight.fetch_sub(1, std::memory_order_acq_rel);
              return Status::ok();
            }
          }
          // Out of attempts. A speculative duplicate may still win the
          // slot; record the failure and let the post-wave check (or
          // the overlap-group dead-slot scan) decide.
          slot.exhausted = last;
          slot.inflight.fetch_sub(1, std::memory_order_acq_rel);
          return Status::ok();
        }));
      }
    }

    // Drive the group: poll for completion, launching speculative
    // duplicates for stragglers past the deadline or the median-based
    // speculation threshold (per stage, as in classic waves).
    const bool watching =
        policy.speculation_enabled() || policy.task_deadline > 0.0;
    bool cancelled_exchanges = false;
    for (;;) {
      bool all_ready = true;
      for (std::size_t i = 0; i < futures.size(); ++i) {
        if (futures[i].wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
          all_ready = false;
          break;
        }
      }
      if (all_ready) break;
      if (cancel_requested() && !rs.failed.load()) {
        // Queued/retrying attempts observe rs.failed and short-circuit;
        // attempts already computing finish their current pass (their
        // publishes are idempotent and will be discarded with the job).
        rs.fail(Status::cancelled("engine run cancelled"));
      }
      const double now = clock.elapsed_seconds();
      for (auto& wptr : waves) {
        StageWave& w = *wptr;
        if (w.done_time < 0.0 &&
            std::all_of(w.slots.begin(), w.slots.end(),
                        [](const TaskSlot& sl) { return sl.won.load(); })) {
          w.done_time = now;
        }
      }
      if (gidx.size() > 1 && !rs.failed.load()) {
        // Dead-slot scan: in an overlap group a task that exhausted
        // every attempt (with no duplicate left in flight) must fail
        // the run NOW — its streaming consumers are blocked on chunks
        // that will never arrive, so waiting for all futures would
        // deadlock. (Classic waves keep the post-drain check, which
        // also lets a later-launched duplicate rescue the slot.)
        for (auto& wptr : waves) {
          StageWave& w = *wptr;
          for (int t = 0; t < w.dop && !rs.failed.load(); ++t) {
            TaskSlot& slot = w.slots[t];
            if (!slot.won.load(std::memory_order_acquire) &&
                slot.inflight.load(std::memory_order_acquire) == 0) {
              rs.fail(!slot.exhausted.is_ok()
                          ? slot.exhausted
                          : Status::internal("task " +
                                             task_label(*dag_, w.s, static_cast<TaskId>(t)) +
                                             " failed every attempt"));
            }
          }
        }
      }
      if (gidx.size() > 1 && rs.failed.load() && !cancelled_exchanges) {
        // Unblock streaming producers (tick) and consumers (cursors)
        // so the group can drain; the failed run tears down anyway.
        cancelled_exchanges = true;
        for (auto& [edge, ex] : exchanges) ex->cancel();
      }
      if (watching && !rs.failed.load()) {
        for (auto& wptr : waves) {
          StageWave& w = *wptr;
          const StageId s = w.s;
          double median = 0.0;
          std::size_t completed = 0;
          {
            std::lock_guard<std::mutex> lock(w.dur_mu);
            completed = w.durations.size();
            if (completed > 0) {
              std::vector<double> sorted = w.durations;
              std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                               sorted.end());
              median = sorted[sorted.size() / 2];
            }
          }
          for (int t = 0; t < w.dop; ++t) {
            TaskSlot& slot = w.slots[t];
            if (slot.won.load() || slot.spec_launched.load()) continue;
            const double age = now - slot.launch;
            const bool past_deadline =
                policy.task_deadline > 0.0 && age > policy.task_deadline;
            const bool straggling =
                policy.speculation_enabled() && completed > 0 &&
                completed * 2 >= w.slots.size() &&
                age > std::max(policy.speculation_min_wait, policy.speculation_factor * median);
            if (!past_deadline && !straggling) continue;
            slot.spec_launched.store(true);
            rs.spec_launched.fetch_add(1, std::memory_order_relaxed);
            note_resilience(past_deadline ? "deadline_duplicate" : "speculative_launch",
                            task_label(*dag_, s, static_cast<TaskId>(t)));
            // Duplicate on the next server over (if any), so a slow or
            // hung slot on the original server cannot delay the copy.
            const ServerId home = rs.task_server[s][t];
            ServerId spec_server = home;
            for (ServerId v = 1; v <= max_server; ++v) {
              const ServerId cand =
                  (home == kNoServer ? v - 1 : home + v) % (max_server + 1);
              if (rs.injector != nullptr && rs.injector->server_dead(cand)) continue;
              spec_server = cand;
              break;
            }
            ThreadPool& pool = pool_for(spec_server);
            const int dop = w.dop;
            slot.inflight.fetch_add(1, std::memory_order_acq_rel);
            futures.push_back(pool.submit_guarded(
                [&rs, &w, &slot, s, t, dop, spec_server, max_attempts]() -> Status {
                  // Attempt index >= max_attempts: injected attempt-0
                  // faults never re-fire on the duplicate.
                  const Status st =
                      task_attempt(rs, s, static_cast<TaskId>(t), dop, spec_server,
                                   max_attempts, /*speculative=*/true, slot, w.dur_mu,
                                   w.durations);
                  slot.inflight.fetch_sub(1, std::memory_order_acq_rel);
                  return st;
                }));
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    for (auto& f : futures) {
      const Status st = f.get();
      if (!st.is_ok()) rs.fail(st);  // thrown-through-pool defence
    }
    const double drain_time = clock.elapsed_seconds();
    for (auto& wptr : waves) {
      StageWave& w = *wptr;
      bool all_won = true;
      for (int t = 0; t < w.dop; ++t) {
        if (!w.slots[t].won.load()) {
          all_won = false;
          std::lock_guard<std::mutex> lock(rs.error_mu);
          if (rs.first_error.is_ok()) {
            rs.first_error =
                !w.slots[t].exhausted.is_ok()
                    ? w.slots[t].exhausted
                    : Status::internal("task " + task_label(*dag_, w.s, static_cast<TaskId>(t)) +
                                       " failed every attempt");
          }
          rs.failed.store(true);
        }
      }
      if (all_won && w.done_time < 0.0) w.done_time = drain_time;
    }

    // Per-stage drift: observed time is overlap-adjusted — a stage
    // pipelined behind in-group parents is charged only its tail past
    // the last such parent's completion, the same quantity an
    // annotated (pipelined-read-skipping) time model predicts. For a
    // singleton group this reduces to the classic wave wall time.
    if (!rs.failed.load()) {
      for (auto& wptr : waves) {
        StageWave& w = *wptr;
        double start = w.launch_time;
        for (StageId p : dag_->parents(w.s)) {
          if (group_of[p] != static_cast<int>(gi)) continue;
          for (const auto& pw : waves) {
            if (pw->s == p && pw->done_time >= 0.0) start = std::max(start, pw->done_time);
          }
        }
        const double observed = std::max(0.0, w.done_time - start);
        result.stats.stage_seconds[w.s] = observed;
        if (w.s < options_.predicted_stage_seconds.size()) {
          const double predicted = options_.predicted_stage_seconds[w.s];
          obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
          if (predicted > 0.0 && observed > 0.0 && mx.enabled()) {
            const double rel = std::abs(predicted - observed) / observed;
            mx.histogram("timemodel.drift", 0.0, 2.0, 20).observe(rel);
            mx.gauge("timemodel.rel_error", {{"stage", dag_->stage(w.s).name()}}).set(rel);
          }
        }
      }
    }
  }

  if (rs.failed.load()) {
    for (auto& [edge, ex] : exchanges) ex->cancel();
    std::lock_guard<std::mutex> lock(rs.error_mu);
    return rs.first_error.is_ok() ? Status::internal("engine failed") : rs.first_error;
  }

  // Deterministic sink assembly: concatenate per-task slots in task
  // order, independent of which attempt produced each slot.
  for (auto& [s, parts] : rs.sink_parts) {
    Table merged;
    bool first = true;
    for (auto& [t, table] : parts) {  // std::map iterates tasks in order
      if (first) {
        merged = std::move(table);
        first = false;
      } else {
        DITTO_RETURN_IF_ERROR(merged.concat(table));
      }
    }
    result.sink_outputs.emplace(s, std::move(merged));
  }
  for (auto& [s, parts] : rs.capture_parts) {
    Table merged;
    bool first = true;
    for (auto& [t, table] : parts) {
      if (first) {
        merged = std::move(table);
        first = false;
      } else {
        DITTO_RETURN_IF_ERROR(merged.concat(table));
      }
    }
    result.captured_outputs.emplace(s, std::move(merged));
  }

  for (const auto& [edge, ex] : exchanges) {
    const ExchangeStats es = ex->stats();
    result.stats.exchange.zero_copy_messages += es.zero_copy_messages;
    result.stats.exchange.remote_messages += es.remote_messages;
    result.stats.exchange.remote_bytes += es.remote_bytes;
    result.stats.exchange.duplicate_publishes += es.duplicate_publishes;
    result.stats.exchange.storage_retries += es.storage_retries;
    result.stats.exchange.producers_reset += es.producers_reset;
    result.stats.exchange.chunks_published += es.chunks_published;
    result.stats.exchange.chunks_consumed += es.chunks_consumed;
  }
  for (StageId s = 0; s < dag_->num_stages(); ++s) {
    result.stats.tasks_run += static_cast<std::size_t>(plan_->dop_of(s));
  }
  faults::ResilienceStats& res = result.stats.resilience;
  res.task_retries = rs.task_retries.load();
  res.speculative_launched = rs.spec_launched.load();
  res.speculative_wins = rs.spec_wins.load();
  res.storage_retries = result.stats.exchange.storage_retries;
  res.servers_lost = rs.servers_lost.load();
  res.tasks_rerouted = rs.tasks_rerouted.load();
  res.producers_recovered = rs.producers_recovered.load();
  res.duplicate_publishes = result.stats.exchange.duplicate_publishes;
  result.stats.wall_seconds = clock.elapsed_seconds();
  return result;
}

}  // namespace ditto::exec
