#include "exec/engine.h"

#include <atomic>
#include <future>

#include "common/stopwatch.h"
#include "dag/dag_algorithms.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ditto::exec {

MiniEngine::MiniEngine(const JobDag& dag, const cluster::PlacementPlan& plan,
                       storage::ObjectStore& store)
    : dag_(&dag), plan_(&plan), store_(&store) {}

Result<EngineResult> MiniEngine::run(const std::map<StageId, StageBinding>& bindings,
                                     cluster::RuntimeMonitor* monitor) {
  DITTO_RETURN_IF_ERROR(dag_->validate());
  for (StageId s = 0; s < dag_->num_stages(); ++s) {
    if (bindings.count(s) == 0) {
      return Status::invalid_argument("missing binding for stage " + dag_->stage(s).name());
    }
    if (plan_->dop_of(s) < 1 || plan_->task_server[s].size() != static_cast<std::size_t>(plan_->dop[s])) {
      return Status::invalid_argument("plan not sized to DAG");
    }
  }

  // Materialize servers as thread pools. Width = the maximum number of
  // tasks any single stage places there (stages execute in waves).
  ServerId max_server = 0;
  for (const auto& ts : plan_->task_server) {
    for (ServerId v : ts) {
      if (v != kNoServer) max_server = std::max(max_server, v);
    }
  }
  std::vector<std::size_t> width(max_server + 1, 1);
  for (StageId s = 0; s < dag_->num_stages(); ++s) {
    std::vector<std::size_t> per_server(max_server + 1, 0);
    for (ServerId v : plan_->task_server[s]) {
      if (v != kNoServer) width[v] = std::max(width[v], ++per_server[v]);
    }
  }
  std::vector<std::unique_ptr<ThreadPool>> pools;
  pools.reserve(width.size());
  for (std::size_t w : width) pools.push_back(std::make_unique<ThreadPool>(w));

  // One exchange per DAG edge.
  std::map<std::pair<StageId, StageId>, std::unique_ptr<Exchange>> exchanges;
  for (const Edge& e : dag_->edges()) {
    const std::string key = bindings.at(e.src).key_for(e.dst);
    exchanges.emplace(
        std::make_pair(e.src, e.dst),
        std::make_unique<Exchange>(e.exchange, key, plan_->task_server[e.src],
                                   plan_->task_server[e.dst], *store_,
                                   dag_->name() + "/e" + std::to_string(e.src) + "_" +
                                       std::to_string(e.dst)));
  }

  Stopwatch clock;
  EngineResult result;
  std::mutex result_mu;
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mu;

  // Stage waves in topological order.
  for (StageId s : topological_order(*dag_)) {
    const StageBinding& binding = bindings.at(s);
    const int dop = plan_->dop_of(s);
    obs::ScopedSpan stage_span("engine.stage", dag_->stage(s).name().c_str(), -1,
                               static_cast<std::int64_t>(s));
    stage_span.arg("dop", std::to_string(dop));
    std::vector<std::future<void>> futures;
    futures.reserve(dop);
    for (int t = 0; t < dop; ++t) {
      const ServerId server = plan_->task_server[s][t];
      ThreadPool& pool = server == kNoServer ? *pools[0] : *pools[server];
      futures.push_back(pool.submit([&, s, t, dop, server] {
        if (failed.load()) return;
        const Stopwatch task_clock;
        const double t_start = clock.elapsed_seconds();

        // Gather inputs from every parent edge.
        std::vector<Table> inputs;
        inputs.reserve(dag_->parents(s).size());
        Bytes bytes_in = 0;
        for (StageId p : dag_->parents(s)) {
          auto in = exchanges.at({p, s})->recv_all(static_cast<std::size_t>(t));
          if (!in.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.is_ok()) first_error = in.status();
            failed.store(true);
            return;
          }
          bytes_in += in.value().byte_size();
          inputs.push_back(std::move(in).value());
        }
        const double t_gathered = clock.elapsed_seconds();

        Result<Table> out = binding.fn(t, dop, inputs);
        if (!out.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.is_ok()) first_error = out.status();
          failed.store(true);
          return;
        }
        const double t_computed = clock.elapsed_seconds();

        Bytes bytes_out = 0;
        std::size_t rows_out = out.value().num_rows();
        const auto& children = dag_->children(s);
        if (children.empty()) {
          Table value = std::move(out).value();
          bytes_out = value.byte_size();
          std::lock_guard<std::mutex> lock(result_mu);
          auto [it, inserted] = result.sink_outputs.try_emplace(s, std::move(value));
          if (!inserted) (void)it->second.concat(value);
        } else {
          bytes_out = out.value().byte_size();
          for (std::size_t c = 0; c < children.size(); ++c) {
            // The last child may take the table by move.
            Table payload = (c + 1 == children.size()) ? std::move(out).value() : out.value();
            const Status st =
                exchanges.at({s, children[c]})->send(static_cast<std::size_t>(t),
                                                     std::move(payload));
            if (!st.is_ok()) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (first_error.is_ok()) first_error = st;
              failed.store(true);
              return;
            }
          }
        }
        const double t_end = clock.elapsed_seconds();

        if (monitor != nullptr) {
          cluster::TaskRecord rec;
          rec.stage = s;
          rec.task = static_cast<TaskId>(t);
          rec.server = server;
          rec.start = t_start;
          rec.end = t_end;
          rec.read_time = t_gathered - t_start;
          rec.compute_time = t_computed - t_gathered;
          rec.write_time = t_end - t_computed;
          rec.bytes_read = bytes_in;
          rec.bytes_written = bytes_out;
          monitor->record(rec);
        }

        obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
        if (mx.enabled()) {
          mx.counter("engine.tasks_total").add();
          mx.counter("engine.rows_out").add(rows_out);
          mx.counter("engine.bytes_out").add(bytes_out);
          mx.counter("engine.bytes_in").add(bytes_in);
          mx.histogram("engine.task_seconds", 0.0, 10.0, 50).observe(t_end - t_start);
        }
        obs::TraceCollector& tc = obs::TraceCollector::global();
        if (tc.enabled()) {
          const std::string& stage_name = dag_->stage(s).name();
          const std::int64_t pid = server == kNoServer ? -1 : static_cast<std::int64_t>(server);
          const std::int64_t tid = static_cast<std::int64_t>(s) * 4096 + t;
          const std::uint64_t now = tc.now_us();
          const std::uint64_t dur =
              static_cast<std::uint64_t>((t_end - t_start) * 1e6 + 0.5);
          obs::TraceArgs args;
          args.emplace_back("stage", stage_name);
          args.emplace_back("task", std::to_string(t));
          args.emplace_back("rows_out", std::to_string(rows_out));
          args.emplace_back("bytes_in", std::to_string(bytes_in));
          args.emplace_back("bytes_out", std::to_string(bytes_out));
          args.emplace_back("gather_s", std::to_string(t_gathered - t_start));
          args.emplace_back("compute_s", std::to_string(t_computed - t_gathered));
          args.emplace_back("emit_s", std::to_string(t_end - t_computed));
          tc.span("engine.task", stage_name + "/" + std::to_string(t),
                  now > dur ? now - dur : 0, dur, pid, tid, std::move(args));
        }
      }));
    }
    for (auto& f : futures) f.get();
    if (failed.load()) break;
  }

  if (failed.load()) {
    std::lock_guard<std::mutex> lock(error_mu);
    return first_error.is_ok() ? Status::internal("engine failed") : first_error;
  }

  for (const auto& [edge, ex] : exchanges) {
    result.stats.exchange.zero_copy_messages += ex->stats().zero_copy_messages;
    result.stats.exchange.remote_messages += ex->stats().remote_messages;
    result.stats.exchange.remote_bytes += ex->stats().remote_bytes;
  }
  for (StageId s = 0; s < dag_->num_stages(); ++s) {
    result.stats.tasks_run += static_cast<std::size_t>(plan_->dop_of(s));
  }
  result.stats.wall_seconds = clock.elapsed_seconds();
  return result;
}

}  // namespace ditto::exec
