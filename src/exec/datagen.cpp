#include "exec/datagen.h"

#include <unordered_set>

namespace ditto::exec {

Table gen_fact_table(const FactTableSpec& spec) {
  Rng rng(spec.seed);
  std::vector<std::int64_t> order_id, warehouse_id, date_id, site_id, quantity;
  std::vector<double> price;
  order_id.reserve(spec.rows);

  const ZipfDistribution* zipf = nullptr;
  ZipfDistribution zipf_holder(std::max<std::int64_t>(spec.num_orders, 1),
                               spec.key_zipf_skew > 0 ? spec.key_zipf_skew : 0.0);
  if (spec.key_zipf_skew > 0.0) zipf = &zipf_holder;

  for (std::size_t r = 0; r < spec.rows; ++r) {
    const std::int64_t oid =
        zipf ? static_cast<std::int64_t>(zipf->sample(rng)) - 1
             : rng.uniform_int(0, spec.num_orders - 1);
    order_id.push_back(oid);
    warehouse_id.push_back(rng.uniform_int(0, spec.num_warehouses - 1));
    date_id.push_back(rng.uniform_int(0, spec.num_dates - 1));
    site_id.push_back(rng.uniform_int(0, spec.num_sites - 1));
    quantity.push_back(rng.uniform_int(1, 100));
    price.push_back(rng.uniform(1.0, 500.0));
  }

  auto t = Table::make(
      {{"order_id", DataType::kInt64},
       {"warehouse_id", DataType::kInt64},
       {"date_id", DataType::kInt64},
       {"site_id", DataType::kInt64},
       {"quantity", DataType::kInt64},
       {"price", DataType::kDouble}},
      {Column(std::move(order_id)), Column(std::move(warehouse_id)),
       Column(std::move(date_id)), Column(std::move(site_id)), Column(std::move(quantity)),
       Column(std::move(price))});
  assert(t.ok());
  return std::move(t).value();
}

Table gen_dim_table(std::size_t rows, std::int64_t attr_domain, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> id, attr;
  id.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    id.push_back(static_cast<std::int64_t>(r));
    attr.push_back(rng.uniform_int(0, attr_domain - 1));
  }
  auto t = Table::make({{"id", DataType::kInt64}, {"attr", DataType::kInt64}},
                       {Column(std::move(id)), Column(std::move(attr))});
  assert(t.ok());
  return std::move(t).value();
}

Table gen_returns_table(const Table& fact, double return_fraction, std::uint64_t seed) {
  Rng rng(seed);
  const auto& orders = fact.column_by_name("order_id").int_span();
  std::unordered_set<std::int64_t> distinct(orders.begin(), orders.end());
  std::vector<std::int64_t> order_id;
  std::vector<double> amount;
  for (std::int64_t oid : distinct) {
    if (rng.coin(return_fraction)) {
      order_id.push_back(oid);
      amount.push_back(rng.uniform(1.0, 200.0));
    }
  }
  auto t = Table::make({{"order_id", DataType::kInt64}, {"return_amount", DataType::kDouble}},
                       {Column(std::move(order_id)), Column(std::move(amount))});
  assert(t.ok());
  return std::move(t).value();
}

}  // namespace ditto::exec
