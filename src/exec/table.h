// Table: an ordered set of equal-length typed columns with a schema.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/column.h"

namespace ditto::exec {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  /// Builds a table from a schema and matching columns.
  static Result<Table> make(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  bool empty() const { return num_rows() == 0; }

  const Column& column(std::size_t i) const { return columns_.at(i); }
  Column& column(std::size_t i) { return columns_.at(i); }

  /// Index of a named column; -1 when absent.
  int column_index(const std::string& name) const;

  /// Named lookup; ABORTS with a diagnostic when the column is absent
  /// (defined behaviour in release builds too). Prefer checked_column
  /// on any path fed by untrusted or computed schemas.
  const Column& column_by_name(const std::string& name) const;

  /// Named lookup that can miss: nullptr when absent.
  const Column* find_column(const std::string& name) const;

  /// Named lookup as a Result (NOT_FOUND on miss); the never-null
  /// pointer makes DITTO_ASSIGN_OR_RETURN chains read naturally.
  Result<const Column*> checked_column(const std::string& name) const;

  /// Appends row `row` of `src` (same schema) to this table.
  void append_row_from(const Table& src, std::size_t row);

  /// New table with the rows selected by `indices` (in order).
  Table take(const std::vector<std::size_t>& indices) const;

  /// New table with rows [offset, offset+count): the bulk fast path for
  /// contiguous selections (range partitioning, limit). Fixed-width
  /// columns copy with one memcpy, or stay zero-copy when borrowed.
  Table slice(std::size_t offset, std::size_t count) const;

  /// Converts every borrowed column to owned storage.
  void ensure_owned();

  /// Appends all rows of `other` (same schema).
  Status concat(const Table& other);

  /// Approximate in-memory footprint.
  std::size_t byte_size() const;

  /// Structural check: every column matches the schema type and all
  /// columns have equal length.
  Status validate() const;

  friend bool operator==(const Table& a, const Table& b) {
    return a.schema_ == b.schema_ && a.columns_ == b.columns_;
  }

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

/// Convenience builders for tests and examples.
Table table_of_ints(std::initializer_list<std::pair<std::string, std::vector<std::int64_t>>> cols);

}  // namespace ditto::exec
