// Table: an ordered set of equal-length typed columns with a schema.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/column.h"

namespace ditto::exec {

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  /// Builds a table from a schema and matching columns.
  static Result<Table> make(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  bool empty() const { return num_rows() == 0; }

  const Column& column(std::size_t i) const { return columns_.at(i); }
  Column& column(std::size_t i) { return columns_.at(i); }

  /// Index of a named column; -1 when absent.
  int column_index(const std::string& name) const;
  const Column& column_by_name(const std::string& name) const;

  /// Appends row `row` of `src` (same schema) to this table.
  void append_row_from(const Table& src, std::size_t row);

  /// New table with the rows selected by `indices` (in order).
  Table take(const std::vector<std::size_t>& indices) const;

  /// Appends all rows of `other` (same schema).
  Status concat(const Table& other);

  /// Approximate in-memory footprint.
  std::size_t byte_size() const;

  /// Structural check: every column matches the schema type and all
  /// columns have equal length.
  Status validate() const;

  friend bool operator==(const Table& a, const Table& b) {
    return a.schema_ == b.schema_ && a.columns_ == b.columns_;
  }

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

/// Convenience builders for tests and examples.
Table table_of_ints(std::initializer_list<std::pair<std::string, std::vector<std::int64_t>>> cols);

}  // namespace ditto::exec
