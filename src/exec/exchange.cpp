#include "exec/exchange.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ditto::exec {

Status LocalTableChannel::send(std::shared_ptr<const Table> table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::failed_precondition("send on closed channel");
  queue_.push_back(std::move(table));  // zero-copy: pointer moves
  cv_.notify_one();
  return Status::ok();
}

std::optional<std::shared_ptr<const Table>> LocalTableChannel::recv() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  auto out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

void LocalTableChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

Status RemoteTableChannel::send(std::shared_ptr<const Table> table) {
  std::size_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::failed_precondition("send on closed channel");
    seq = next_send_++;
  }
  const shm::Buffer bytes = serialize_table(*table);  // the copy shm avoids
  DITTO_RETURN_IF_ERROR(store_->put(prefix_ + "/" + std::to_string(seq), bytes.view()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }
  return Status::ok();
}

std::optional<std::shared_ptr<const Table>> RemoteTableChannel::recv() {
  std::size_t seq;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return next_recv_ < next_send_ || closed_; });
    if (next_recv_ >= next_send_) return std::nullopt;
    seq = next_recv_++;
  }
  const auto bytes = store_->get(prefix_ + "/" + std::to_string(seq));
  if (!bytes.ok()) return std::nullopt;
  auto table = deserialize_table(*bytes);
  if (!table.ok()) return std::nullopt;
  return std::make_shared<const Table>(std::move(table).value());
}

void RemoteTableChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

Exchange::Exchange(ExchangeKind kind, std::string partition_key,
                   const std::vector<ServerId>& prod_servers,
                   const std::vector<ServerId>& cons_servers, storage::ObjectStore& store,
                   std::string prefix)
    : kind_(kind),
      partition_key_(std::move(partition_key)),
      producers_(prod_servers.size()),
      consumers_(cons_servers.size()) {
  channels_.reserve(producers_ * consumers_);
  for (std::size_t i = 0; i < producers_; ++i) {
    for (std::size_t j = 0; j < consumers_; ++j) {
      if (prod_servers[i] != kNoServer && prod_servers[i] == cons_servers[j]) {
        channels_.push_back(std::make_unique<LocalTableChannel>());
      } else {
        channels_.push_back(std::make_unique<RemoteTableChannel>(
            store, prefix + "/" + std::to_string(i) + "-" + std::to_string(j)));
      }
    }
  }
}

Status Exchange::route(std::size_t i, std::size_t j, std::shared_ptr<const Table> t) {
  TableChannel& ch = channel(i, j);
  const Bytes payload = t->byte_size();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (ch.is_zero_copy()) {
      ++stats_.zero_copy_messages;
    } else {
      ++stats_.remote_messages;
      stats_.remote_bytes += payload;
    }
  }
  // Global data-movement telemetry: counters prove how much of the
  // job's traffic stayed zero-copy, and the trace gains a cumulative
  // counter track per path (the engine-mode analogue of the sim's).
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    const char* path = ch.is_zero_copy() ? "zero_copy" : "remote";
    const std::uint64_t msgs =
        mx.counter("exchange.messages", {{"path", path}}).add();
    const std::uint64_t bytes =
        mx.counter("exchange.bytes", {{"path", path}}).add(payload);
    (void)msgs;
    obs::TraceCollector& tc = obs::TraceCollector::global();
    if (tc.enabled()) {
      tc.counter("exchange", ch.is_zero_copy() ? "zero_copy_bytes" : "remote_bytes",
                 tc.now_us(), static_cast<double>(bytes), -1);
    }
  }
  return ch.send(std::move(t));
}

Status Exchange::send(std::size_t producer, Table table) {
  if (producer >= producers_) return Status::out_of_range("bad producer index");
  switch (kind_) {
    case ExchangeKind::kShuffle: {
      DITTO_ASSIGN_OR_RETURN(std::vector<Table> parts,
                             hash_partition(table, partition_key_, consumers_));
      for (std::size_t j = 0; j < consumers_; ++j) {
        DITTO_RETURN_IF_ERROR(
            route(producer, j, std::make_shared<const Table>(std::move(parts[j]))));
      }
      break;
    }
    case ExchangeKind::kGather: {
      // One producer feeds exactly one consumer (paper §4.5 Fig. 7).
      const std::size_t j = producer % consumers_;
      DITTO_RETURN_IF_ERROR(route(producer, j, std::make_shared<const Table>(std::move(table))));
      break;
    }
    case ExchangeKind::kBroadcast:
    case ExchangeKind::kAllGather: {
      // Every consumer receives the full table. The shared_ptr makes the
      // local copies free; remote consumers each pay serialization.
      const auto shared = std::make_shared<const Table>(std::move(table));
      for (std::size_t j = 0; j < consumers_; ++j) {
        DITTO_RETURN_IF_ERROR(route(producer, j, shared));
      }
      break;
    }
  }
  // This producer is done: close its row of channels.
  for (std::size_t j = 0; j < consumers_; ++j) channel(producer, j).close();
  return Status::ok();
}

Result<Table> Exchange::recv_all(std::size_t consumer) {
  if (consumer >= consumers_) return Status::out_of_range("bad consumer index");
  Table merged;
  bool first = true;
  for (std::size_t i = 0; i < producers_; ++i) {
    // Gather sends only on one pipe; others close empty.
    for (;;) {
      auto t = channel(i, consumer).recv();
      if (!t.has_value()) break;
      if (first) {
        merged = **t;
        first = false;
      } else {
        DITTO_RETURN_IF_ERROR(merged.concat(**t));
      }
    }
  }
  return merged;
}

ExchangeStats Exchange::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace ditto::exec
