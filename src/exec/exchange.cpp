#include "exec/exchange.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ditto::exec {

Status LocalTableChannel::send(std::shared_ptr<const Table> table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::failed_precondition("send on closed channel");
  items_.push_back(std::move(table));  // zero-copy: pointer moves
  cv_.notify_all();
  return Status::ok();
}

std::optional<std::shared_ptr<const Table>> LocalTableChannel::recv() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return next_recv_ < items_.size() || closed_; });
  if (next_recv_ >= items_.size()) return std::nullopt;
  return items_[next_recv_++];
}

Result<std::vector<std::shared_ptr<const Table>>> LocalTableChannel::snapshot_all() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_; });
  if (aborted_) return Status::unavailable("exchange canceled");
  return items_;
}

Result<std::shared_ptr<const Table>> LocalTableChannel::recv_at(std::size_t idx) const {
  std::unique_lock<std::mutex> lock(mu_);
  // Deliberately does NOT wait for closed_: chunk `idx` becomes
  // readable the moment it is buffered. A producer reset clears
  // items_, in which case we simply wait for the byte-identical
  // re-publish to refill the slot.
  cv_.wait(lock, [&] { return idx < items_.size() || aborted_; });
  if (aborted_) return Status::unavailable("exchange canceled");
  return items_[idx];
}

void LocalTableChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

void LocalTableChannel::reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) return;  // cancel is terminal; never resurrect readers
  items_.clear();  // the lost server's shared memory is gone
  next_recv_ = 0;
  closed_ = false;
}

void LocalTableChannel::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  aborted_ = true;
  cv_.notify_all();
}

Status RemoteTableChannel::send(std::shared_ptr<const Table> table) {
  std::size_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::failed_precondition("send on closed channel");
    seq = next_send_;
  }
  const std::string key = prefix_ + "/" + std::to_string(seq);
  const faults::RetryPolicy pol = policy();
  {
    // Encode into the channel's reusable scratch (exact-size, no
    // realloc in steady state) and hand the store a view of it.
    std::lock_guard<std::mutex> slock(scratch_mu_);
    const std::string_view bytes = serialize_table_into(*table, scratch_);
    DITTO_RETURN_IF_ERROR(faults::retry_status(
        pol, "exchange.put", [&] { return store_->put(key, bytes); }, retry_counter_));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_send_ = seq + 1;
    cv_.notify_all();
  }
  return Status::ok();
}

std::optional<std::shared_ptr<const Table>> RemoteTableChannel::recv() {
  std::size_t seq;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return next_recv_ < next_send_ || closed_; });
    if (next_recv_ >= next_send_) return std::nullopt;
    seq = next_recv_++;
  }
  auto bytes = store_->get(prefix_ + "/" + std::to_string(seq));
  if (!bytes.ok()) return std::nullopt;
  // Zero-copy receive: fixed-width columns view the fetched payload,
  // which the table keeps alive through `owner`.
  const auto owner = std::make_shared<const std::string>(std::move(bytes).value());
  auto table = deserialize_table_borrowing(*owner, owner);
  if (!table.ok()) return std::nullopt;
  return std::make_shared<const Table>(std::move(table).value());
}

Result<std::vector<std::shared_ptr<const Table>>> RemoteTableChannel::snapshot_all() const {
  std::size_t n;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_; });
    if (aborted_) return Status::unavailable("exchange canceled");
    n = next_send_;
  }
  const faults::RetryPolicy pol = policy();
  std::vector<std::shared_ptr<const Table>> out;
  out.reserve(n);
  for (std::size_t seq = 0; seq < n; ++seq) {
    const std::string key = prefix_ + "/" + std::to_string(seq);
    DITTO_ASSIGN_OR_RETURN(
        std::string bytes,
        faults::retry_result<std::string>(
            pol, "exchange.get", [&] { return store_->get(key); }, retry_counter_));
    const auto owner = std::make_shared<const std::string>(std::move(bytes));
    DITTO_ASSIGN_OR_RETURN(Table table, deserialize_table_borrowing(*owner, owner));
    out.push_back(std::make_shared<const Table>(std::move(table)));
  }
  return out;
}

Result<std::shared_ptr<const Table>> RemoteTableChannel::recv_at(std::size_t idx) const {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return idx < next_send_ || aborted_; });
    if (aborted_) return Status::unavailable("exchange canceled");
  }
  // Chunk-seq deterministic key: a rollback between the wait and this
  // get is harmless — the durable bytes survive and the re-publish
  // overwrites them identically.
  const std::string key = prefix_ + "/" + std::to_string(idx);
  const faults::RetryPolicy pol = policy();
  DITTO_ASSIGN_OR_RETURN(std::string bytes,
                         faults::retry_result<std::string>(
                             pol, "exchange.get", [&] { return store_->get(key); },
                             retry_counter_));
  const auto owner = std::make_shared<const std::string>(std::move(bytes));
  DITTO_ASSIGN_OR_RETURN(Table table, deserialize_table_borrowing(*owner, owner));
  return std::make_shared<const Table>(std::move(table));
}

void RemoteTableChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

void RemoteTableChannel::reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) return;  // cancel is terminal; never resurrect readers
  // Durable payloads survive in the store; the re-publish overwrites
  // the same deterministic keys with identical bytes.
  next_send_ = 0;
  next_recv_ = 0;
  closed_ = false;
}

void RemoteTableChannel::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  aborted_ = true;
  cv_.notify_all();
}

Exchange::Exchange(ExchangeKind kind, std::string partition_key,
                   const std::vector<ServerId>& prod_servers,
                   const std::vector<ServerId>& cons_servers, storage::ObjectStore& store,
                   std::string prefix, const faults::RetryPolicy* retry,
                   ThreadPool* scatter_pool)
    : kind_(kind),
      partition_key_(std::move(partition_key)),
      scatter_pool_(scatter_pool),
      producers_(prod_servers.size()),
      consumers_(cons_servers.size()),
      streams_(prod_servers.size()),
      stats_chunks_counted_(prod_servers.size(), 0) {
  channels_.reserve(producers_ * consumers_);
  for (std::size_t i = 0; i < producers_; ++i) {
    for (std::size_t j = 0; j < consumers_; ++j) {
      if (prod_servers[i] != kNoServer && prod_servers[i] == cons_servers[j]) {
        channels_.push_back(std::make_unique<LocalTableChannel>());
      } else {
        channels_.push_back(std::make_unique<RemoteTableChannel>(
            store, prefix + "/" + std::to_string(i) + "-" + std::to_string(j), retry,
            &storage_retries_));
      }
    }
  }
}

Status Exchange::route(std::size_t i, std::size_t j, std::shared_ptr<const Table> t,
                       PendingStats& pending) {
  TableChannel& ch = channel(i, j);
  const Bytes payload = t->byte_size();
  if (ch.is_zero_copy()) {
    ++pending.zero_copy_messages;
    pending.zero_copy_bytes += payload;
  } else {
    ++pending.remote_messages;
    pending.remote_bytes += payload;
  }
  return ch.send(std::move(t));
}

// Routing telemetry is committed once per (producer, chunk), on the
// chunk's first winning publish: failed-publish retries and server-loss
// re-publishes move the same logical data again and would otherwise
// inflate the zero-copy-vs-remote counters relative to the data
// actually exchanged.
void Exchange::commit_route_stats(std::size_t producer, std::size_t chunk,
                                  const PendingStats& pending) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (chunk < stats_chunks_counted_[producer]) return;
    stats_chunks_counted_[producer] = chunk + 1;
    ++stats_.chunks_published;
    stats_.zero_copy_messages += pending.zero_copy_messages;
    stats_.remote_messages += pending.remote_messages;
    stats_.remote_bytes += pending.remote_bytes;
  }
  // Global data-movement telemetry: counters prove how much of the
  // job's traffic stayed zero-copy, and the trace gains a cumulative
  // counter track per path (the engine-mode analogue of the sim's).
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (!mx.enabled()) return;
  obs::TraceCollector& tc = obs::TraceCollector::global();
  mx.counter("exchange.chunks_published").add();
  if (pending.zero_copy_messages > 0) {
    mx.counter("exchange.messages", {{"path", "zero_copy"}})
        .add(pending.zero_copy_messages);
    const std::uint64_t bytes =
        mx.counter("exchange.bytes", {{"path", "zero_copy"}}).add(pending.zero_copy_bytes);
    if (tc.enabled()) {
      tc.counter("exchange", "zero_copy_bytes", tc.now_us(), static_cast<double>(bytes), -1);
    }
  }
  if (pending.remote_messages > 0) {
    mx.counter("exchange.messages", {{"path", "remote"}}).add(pending.remote_messages);
    const std::uint64_t bytes =
        mx.counter("exchange.bytes", {{"path", "remote"}}).add(pending.remote_bytes);
    if (tc.enabled()) {
      tc.counter("exchange", "remote_bytes", tc.now_us(), static_cast<double>(bytes), -1);
    }
  }
}

// Routes one chunk of producer `i`'s output to its consumers. The
// chunk is partitioned/replicated exactly like a whole-table publish,
// which is what keeps chunked and materialized execution bit-identical:
// hash_partition preserves input row order within each partition, so
// the per-consumer concat of chunk partitions equals the partition of
// the concatenated chunks.
Status Exchange::route_chunk(std::size_t producer, std::size_t chunk, Table table) {
  obs::ScopedSpan span("exchange", "chunk");
  if (span.active()) {
    span.arg("producer", std::to_string(producer));
    span.arg("chunk", std::to_string(chunk));
    span.arg("rows", std::to_string(table.num_rows()));
  }
  PendingStats pending;
  switch (kind_) {
    case ExchangeKind::kShuffle: {
      DITTO_ASSIGN_OR_RETURN(std::vector<Table> parts,
                             hash_partition(table, partition_key_, consumers_, scatter_pool_));
      for (std::size_t j = 0; j < consumers_; ++j) {
        DITTO_RETURN_IF_ERROR(
            route(producer, j, std::make_shared<const Table>(std::move(parts[j])), pending));
      }
      break;
    }
    case ExchangeKind::kGather: {
      // One producer feeds exactly one consumer (paper §4.5 Fig. 7).
      const std::size_t j = producer % consumers_;
      DITTO_RETURN_IF_ERROR(
          route(producer, j, std::make_shared<const Table>(std::move(table)), pending));
      break;
    }
    case ExchangeKind::kBroadcast:
    case ExchangeKind::kAllGather: {
      // Every consumer receives the full chunk. The shared_ptr makes the
      // local copies free; remote consumers each pay serialization.
      const auto shared = std::make_shared<const Table>(std::move(table));
      for (std::size_t j = 0; j < consumers_; ++j) {
        DITTO_RETURN_IF_ERROR(route(producer, j, shared, pending));
      }
      break;
    }
  }
  commit_route_stats(producer, chunk, pending);
  return Status::ok();
}

void Exchange::count_duplicate_publish() {
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.duplicate_publishes;
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("exchange.duplicate_publishes").add();
}

namespace {

// Zero-copy chunk view: rows [offset, offset+count) of `owner`, with
// fixed-width columns borrowing the owner's storage instead of copying
// (Table::slice would memcpy owned columns once per chunk). String
// columns still copy — they are never borrowed.
Table chunk_view(const std::shared_ptr<const Table>& owner, std::size_t offset,
                 std::size_t count) {
  std::vector<Column> cols;
  cols.reserve(owner->num_columns());
  for (std::size_t c = 0; c < owner->num_columns(); ++c) {
    const Column& col = owner->column(c);
    switch (col.type()) {
      case DataType::kInt64:
        cols.push_back(Column::borrow_ints(owner, col.int_span().data() + offset, count));
        break;
      case DataType::kDouble:
        cols.push_back(
            Column::borrow_doubles(owner, col.double_span().data() + offset, count));
        break;
      default:
        cols.push_back(col.slice(offset, count));
        break;
    }
  }
  auto t = Table::make(owner->schema(), std::move(cols));
  return t.ok() ? std::move(t).value() : owner->slice(offset, count);
}

}  // namespace

Status Exchange::send_chunked(std::size_t producer, Table table, std::size_t chunk_rows,
                              const std::function<Status()>& tick) {
  if (producer >= producers_) return Status::out_of_range("bad producer index");
  if (chunk_rows == 0) return Status::invalid_argument("chunk_rows must be > 0");

  const std::size_t rows = table.num_rows();
  // Always at least one chunk: a zero-row output still publishes its
  // (empty, schema-bearing) table, exactly like the whole-table path.
  const std::size_t nchunks = rows == 0 ? 1 : (rows + chunk_rows - 1) / chunk_rows;
  const auto owner = std::make_shared<const Table>(std::move(table));

  // Chunk-granular idempotence gate: concurrent attempts of the same
  // producer (speculative duplicates, post-failure retries) claim the
  // next unpublished chunk from the shared `accepted` counter, so each
  // chunk is routed exactly once regardless of interleaving, and a
  // rolled-back stream is re-driven by whichever attempt iterates
  // next. Stage functions are deterministic and chunk_rows is fixed
  // per edge, so every attempt slices byte-identical chunks.
  bool claimed_any = false;
  for (;;) {
    std::size_t c;
    {
      std::unique_lock<std::mutex> lock(pub_mu_);
      pub_cv_.wait(lock, [&] { return !streams_[producer].publishing; });
      if (cancelled_) return Status::unavailable("exchange canceled");
      ChunkStream& s = streams_[producer];
      if (s.finished) {
        lock.unlock();
        if (!claimed_any) count_duplicate_publish();
        return Status::ok();
      }
      if (s.accepted >= nchunks) {
        // Every chunk is routed; this attempt seals the stream.
        s.finished = true;
        lock.unlock();
        for (std::size_t j = 0; j < consumers_; ++j) channel(producer, j).close();
        pub_cv_.notify_all();
        return Status::ok();
      }
      c = s.accepted;
      s.publishing = true;
    }

    if (tick != nullptr) {
      // Cancellation at chunk boundaries: abandon the stream without
      // rollback — the job is aborting and will cancel the exchange.
      const Status st = tick();
      if (!st.is_ok()) {
        std::lock_guard<std::mutex> lock(pub_mu_);
        streams_[producer].publishing = false;
        pub_cv_.notify_all();
        return st;
      }
    }

    const std::size_t off = c * chunk_rows;
    const std::size_t len = std::min(chunk_rows, rows - std::min(rows, off));
    const Status st =
        route_chunk(producer, c, nchunks == 1 ? *owner : chunk_view(owner, off, len));
    {
      std::lock_guard<std::mutex> lock(pub_mu_);
      ChunkStream& s = streams_[producer];
      if (st.is_ok()) {
        s.accepted = c + 1;
        claimed_any = true;
      } else {
        // Mid-stream rollback: reopen the whole row and restart from
        // chunk 0 so the re-publish overwrites the same deterministic
        // keys instead of appending — a consumer mid-stream keeps the
        // chunks it already read (byte-identical to the re-publish)
        // and blocks until the stream catches back up.
        for (std::size_t j = 0; j < consumers_; ++j) channel(producer, j).reopen();
        s.accepted = 0;
      }
      s.publishing = false;
    }
    pub_cv_.notify_all();
    if (!st.is_ok()) return st;
  }
}

Status Exchange::send(std::size_t producer, Table table) {
  // The whole-table publish is the single-chunk special case of the
  // chunked protocol; first-publish-wins and failure-rollback semantics
  // are identical to the original implementation.
  const std::size_t rows = std::max<std::size_t>(table.num_rows(), 1);
  return send_chunked(producer, std::move(table), rows);
}

Result<Table> Exchange::recv_all(std::size_t consumer) {
  if (consumer >= consumers_) return Status::out_of_range("bad consumer index");
  Table merged;
  bool first = true;
  for (std::size_t i = 0; i < producers_; ++i) {
    // Gather sends only on one pipe; others close empty.
    DITTO_ASSIGN_OR_RETURN(auto items, channel(i, consumer).snapshot_all());
    for (const auto& t : items) {
      if (first) {
        merged = *t;
        first = false;
      } else {
        DITTO_RETURN_IF_ERROR(merged.concat(*t));
      }
    }
  }
  return merged;
}

void Exchange::reset_producer(std::size_t producer) {
  if (producer >= producers_) return;
  {
    std::unique_lock<std::mutex> lock(pub_mu_);
    pub_cv_.wait(lock, [&] { return !streams_[producer].publishing; });
    // Drop the partial (or complete) stream: the engine re-runs the
    // producer task, which re-streams from chunk 0 under the same
    // deterministic keys.
    streams_[producer] = ChunkStream{};
  }
  for (std::size_t j = 0; j < consumers_; ++j) channel(producer, j).reopen();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.producers_reset;
}

void Exchange::cancel() {
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    cancelled_ = true;  // fails cursors blocked on future chunks
  }
  for (auto& ch : channels_) ch->abort();
  pub_cv_.notify_all();
}

Result<std::optional<std::shared_ptr<const Table>>> Exchange::next_chunk(
    std::size_t consumer, std::size_t producer, std::size_t chunk) {
  if (consumer >= consumers_) return Status::out_of_range("bad consumer index");
  // Gather routes each producer to exactly one consumer; the other
  // consumers' channels never see its chunks, so skip the stream
  // instead of blocking on it.
  if (kind_ == ExchangeKind::kGather && producer % consumers_ != consumer) {
    return std::optional<std::shared_ptr<const Table>>(std::nullopt);
  }
  bool ready = false;
  {
    std::unique_lock<std::mutex> lock(pub_mu_);
    pub_cv_.wait(lock, [&] {
      return cancelled_ || chunk < streams_[producer].accepted || streams_[producer].finished;
    });
    if (cancelled_) return Status::unavailable("exchange canceled");
    ready = chunk < streams_[producer].accepted;
    // else: finished && chunk >= accepted — producer drained.
  }
  if (!ready) return std::optional<std::shared_ptr<const Table>>(std::nullopt);
  // Safe outside the lock: an accepted chunk has been routed to every
  // consumer, and a concurrent rollback only delays recv_at until the
  // byte-identical re-publish refills the slot.
  DITTO_ASSIGN_OR_RETURN(auto t, channel(producer, consumer).recv_at(chunk));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.chunks_consumed;
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("exchange.chunks_consumed").add();
  return std::optional<std::shared_ptr<const Table>>(std::move(t));
}

Result<std::optional<std::shared_ptr<const Table>>> ChunkCursor::next() {
  while (producer_ < ex_->producers()) {
    DITTO_ASSIGN_OR_RETURN(auto chunk, ex_->next_chunk(consumer_, producer_, chunk_));
    if (chunk.has_value()) {
      ++chunk_;
      bytes_ += (*chunk)->byte_size();
      return chunk;
    }
    ++producer_;  // producer drained, move to the next stream
    chunk_ = 0;
  }
  return std::optional<std::shared_ptr<const Table>>(std::nullopt);
}

bool Exchange::producer_has_local_channel(std::size_t producer) const {
  if (producer >= producers_) return false;
  for (std::size_t j = 0; j < consumers_; ++j) {
    if (channel(producer, j).is_zero_copy()) return true;
  }
  return false;
}

ExchangeStats Exchange::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ExchangeStats out = stats_;
  out.storage_retries = storage_retries_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ditto::exec
