#include "exec/exchange.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ditto::exec {

Status LocalTableChannel::send(std::shared_ptr<const Table> table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::failed_precondition("send on closed channel");
  items_.push_back(std::move(table));  // zero-copy: pointer moves
  cv_.notify_all();
  return Status::ok();
}

std::optional<std::shared_ptr<const Table>> LocalTableChannel::recv() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return next_recv_ < items_.size() || closed_; });
  if (next_recv_ >= items_.size()) return std::nullopt;
  return items_[next_recv_++];
}

Result<std::vector<std::shared_ptr<const Table>>> LocalTableChannel::snapshot_all() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_; });
  if (aborted_) return Status::unavailable("exchange canceled");
  return items_;
}

void LocalTableChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

void LocalTableChannel::reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  items_.clear();  // the lost server's shared memory is gone
  next_recv_ = 0;
  closed_ = false;
  aborted_ = false;
}

void LocalTableChannel::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  aborted_ = true;
  cv_.notify_all();
}

Status RemoteTableChannel::send(std::shared_ptr<const Table> table) {
  std::size_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::failed_precondition("send on closed channel");
    seq = next_send_;
  }
  const std::string key = prefix_ + "/" + std::to_string(seq);
  const faults::RetryPolicy pol = policy();
  {
    // Encode into the channel's reusable scratch (exact-size, no
    // realloc in steady state) and hand the store a view of it.
    std::lock_guard<std::mutex> slock(scratch_mu_);
    const std::string_view bytes = serialize_table_into(*table, scratch_);
    DITTO_RETURN_IF_ERROR(faults::retry_status(
        pol, "exchange.put", [&] { return store_->put(key, bytes); }, retry_counter_));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_send_ = seq + 1;
    cv_.notify_all();
  }
  return Status::ok();
}

std::optional<std::shared_ptr<const Table>> RemoteTableChannel::recv() {
  std::size_t seq;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return next_recv_ < next_send_ || closed_; });
    if (next_recv_ >= next_send_) return std::nullopt;
    seq = next_recv_++;
  }
  auto bytes = store_->get(prefix_ + "/" + std::to_string(seq));
  if (!bytes.ok()) return std::nullopt;
  // Zero-copy receive: fixed-width columns view the fetched payload,
  // which the table keeps alive through `owner`.
  const auto owner = std::make_shared<const std::string>(std::move(bytes).value());
  auto table = deserialize_table_borrowing(*owner, owner);
  if (!table.ok()) return std::nullopt;
  return std::make_shared<const Table>(std::move(table).value());
}

Result<std::vector<std::shared_ptr<const Table>>> RemoteTableChannel::snapshot_all() const {
  std::size_t n;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_; });
    if (aborted_) return Status::unavailable("exchange canceled");
    n = next_send_;
  }
  const faults::RetryPolicy pol = policy();
  std::vector<std::shared_ptr<const Table>> out;
  out.reserve(n);
  for (std::size_t seq = 0; seq < n; ++seq) {
    const std::string key = prefix_ + "/" + std::to_string(seq);
    DITTO_ASSIGN_OR_RETURN(
        std::string bytes,
        faults::retry_result<std::string>(
            pol, "exchange.get", [&] { return store_->get(key); }, retry_counter_));
    const auto owner = std::make_shared<const std::string>(std::move(bytes));
    DITTO_ASSIGN_OR_RETURN(Table table, deserialize_table_borrowing(*owner, owner));
    out.push_back(std::make_shared<const Table>(std::move(table)));
  }
  return out;
}

void RemoteTableChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

void RemoteTableChannel::reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  // Durable payloads survive in the store; the re-publish overwrites
  // the same deterministic keys with identical bytes.
  next_send_ = 0;
  next_recv_ = 0;
  closed_ = false;
  aborted_ = false;
}

void RemoteTableChannel::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  aborted_ = true;
  cv_.notify_all();
}

Exchange::Exchange(ExchangeKind kind, std::string partition_key,
                   const std::vector<ServerId>& prod_servers,
                   const std::vector<ServerId>& cons_servers, storage::ObjectStore& store,
                   std::string prefix, const faults::RetryPolicy* retry,
                   ThreadPool* scatter_pool)
    : kind_(kind),
      partition_key_(std::move(partition_key)),
      scatter_pool_(scatter_pool),
      producers_(prod_servers.size()),
      consumers_(cons_servers.size()),
      pub_state_(prod_servers.size(), PubState::kIdle),
      stats_counted_(prod_servers.size(), false) {
  channels_.reserve(producers_ * consumers_);
  for (std::size_t i = 0; i < producers_; ++i) {
    for (std::size_t j = 0; j < consumers_; ++j) {
      if (prod_servers[i] != kNoServer && prod_servers[i] == cons_servers[j]) {
        channels_.push_back(std::make_unique<LocalTableChannel>());
      } else {
        channels_.push_back(std::make_unique<RemoteTableChannel>(
            store, prefix + "/" + std::to_string(i) + "-" + std::to_string(j), retry,
            &storage_retries_));
      }
    }
  }
}

Status Exchange::route(std::size_t i, std::size_t j, std::shared_ptr<const Table> t,
                       PendingStats& pending) {
  TableChannel& ch = channel(i, j);
  const Bytes payload = t->byte_size();
  if (ch.is_zero_copy()) {
    ++pending.zero_copy_messages;
    pending.zero_copy_bytes += payload;
  } else {
    ++pending.remote_messages;
    pending.remote_bytes += payload;
  }
  return ch.send(std::move(t));
}

// Routing telemetry is committed once per producer, on its first winning
// publish: failed-publish retries and server-loss re-publishes move the
// same logical data again and would otherwise inflate the
// zero-copy-vs-remote counters relative to the data actually exchanged.
void Exchange::commit_route_stats(std::size_t producer, const PendingStats& pending) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (stats_counted_[producer]) return;
    stats_counted_[producer] = true;
    stats_.zero_copy_messages += pending.zero_copy_messages;
    stats_.remote_messages += pending.remote_messages;
    stats_.remote_bytes += pending.remote_bytes;
  }
  // Global data-movement telemetry: counters prove how much of the
  // job's traffic stayed zero-copy, and the trace gains a cumulative
  // counter track per path (the engine-mode analogue of the sim's).
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (!mx.enabled()) return;
  obs::TraceCollector& tc = obs::TraceCollector::global();
  if (pending.zero_copy_messages > 0) {
    mx.counter("exchange.messages", {{"path", "zero_copy"}})
        .add(pending.zero_copy_messages);
    const std::uint64_t bytes =
        mx.counter("exchange.bytes", {{"path", "zero_copy"}}).add(pending.zero_copy_bytes);
    if (tc.enabled()) {
      tc.counter("exchange", "zero_copy_bytes", tc.now_us(), static_cast<double>(bytes), -1);
    }
  }
  if (pending.remote_messages > 0) {
    mx.counter("exchange.messages", {{"path", "remote"}}).add(pending.remote_messages);
    const std::uint64_t bytes =
        mx.counter("exchange.bytes", {{"path", "remote"}}).add(pending.remote_bytes);
    if (tc.enabled()) {
      tc.counter("exchange", "remote_bytes", tc.now_us(), static_cast<double>(bytes), -1);
    }
  }
}

Status Exchange::do_send(std::size_t producer, Table table) {
  PendingStats pending;
  switch (kind_) {
    case ExchangeKind::kShuffle: {
      DITTO_ASSIGN_OR_RETURN(std::vector<Table> parts,
                             hash_partition(table, partition_key_, consumers_, scatter_pool_));
      for (std::size_t j = 0; j < consumers_; ++j) {
        DITTO_RETURN_IF_ERROR(
            route(producer, j, std::make_shared<const Table>(std::move(parts[j])), pending));
      }
      break;
    }
    case ExchangeKind::kGather: {
      // One producer feeds exactly one consumer (paper §4.5 Fig. 7).
      const std::size_t j = producer % consumers_;
      DITTO_RETURN_IF_ERROR(
          route(producer, j, std::make_shared<const Table>(std::move(table)), pending));
      break;
    }
    case ExchangeKind::kBroadcast:
    case ExchangeKind::kAllGather: {
      // Every consumer receives the full table. The shared_ptr makes the
      // local copies free; remote consumers each pay serialization.
      const auto shared = std::make_shared<const Table>(std::move(table));
      for (std::size_t j = 0; j < consumers_; ++j) {
        DITTO_RETURN_IF_ERROR(route(producer, j, shared, pending));
      }
      break;
    }
  }
  // This producer is done: close its row of channels.
  for (std::size_t j = 0; j < consumers_; ++j) channel(producer, j).close();
  commit_route_stats(producer, pending);
  return Status::ok();
}

Status Exchange::send(std::size_t producer, Table table) {
  if (producer >= producers_) return Status::out_of_range("bad producer index");

  // Idempotence gate: first publish wins. A duplicate arriving while
  // the winner is still in flight waits for it to resolve — and takes
  // over if the winner's publish failed.
  {
    std::unique_lock<std::mutex> lock(pub_mu_);
    pub_cv_.wait(lock, [&] { return pub_state_[producer] != PubState::kPublishing; });
    if (pub_state_[producer] == PubState::kPublished) {
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.duplicate_publishes;
      }
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      if (mx.enabled()) mx.counter("exchange.duplicate_publishes").add();
      return Status::ok();
    }
    pub_state_[producer] = PubState::kPublishing;
  }

  const Status st = do_send(producer, std::move(table));
  if (!st.is_ok()) {
    // Roll back the partial publish before releasing the gate: a failed
    // do_send may have advanced some channels in the row (remote seqs,
    // locally buffered tables) without closing them. Reopening resets
    // every channel to seq 0 so the retried publish — or the duplicate
    // that takes over — overwrites the same deterministic keys instead
    // of appending a second copy of the data.
    for (std::size_t j = 0; j < consumers_; ++j) channel(producer, j).reopen();
  }
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    pub_state_[producer] = st.is_ok() ? PubState::kPublished : PubState::kIdle;
  }
  pub_cv_.notify_all();
  return st;
}

Result<Table> Exchange::recv_all(std::size_t consumer) {
  if (consumer >= consumers_) return Status::out_of_range("bad consumer index");
  Table merged;
  bool first = true;
  for (std::size_t i = 0; i < producers_; ++i) {
    // Gather sends only on one pipe; others close empty.
    DITTO_ASSIGN_OR_RETURN(auto items, channel(i, consumer).snapshot_all());
    for (const auto& t : items) {
      if (first) {
        merged = *t;
        first = false;
      } else {
        DITTO_RETURN_IF_ERROR(merged.concat(*t));
      }
    }
  }
  return merged;
}

void Exchange::reset_producer(std::size_t producer) {
  if (producer >= producers_) return;
  {
    std::unique_lock<std::mutex> lock(pub_mu_);
    pub_cv_.wait(lock, [&] { return pub_state_[producer] != PubState::kPublishing; });
    pub_state_[producer] = PubState::kIdle;
  }
  for (std::size_t j = 0; j < consumers_; ++j) channel(producer, j).reopen();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.producers_reset;
}

void Exchange::cancel() {
  for (auto& ch : channels_) ch->abort();
  pub_cv_.notify_all();
}

bool Exchange::producer_has_local_channel(std::size_t producer) const {
  if (producer >= producers_) return false;
  for (std::size_t j = 0; j < consumers_; ++j) {
    if (channel(producer, j).is_zero_copy()) return true;
  }
  return false;
}

ExchangeStats Exchange::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ExchangeStats out = stats_;
  out.storage_retries = storage_retries_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ditto::exec
