#include "exec/partition.h"

namespace ditto::exec {

std::uint64_t stable_hash64(std::int64_t key) {
  // SplitMix64 finalizer: deterministic, well mixed.
  std::uint64_t x = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Result<std::vector<Table>> hash_partition(const Table& in, const std::string& key,
                                          std::size_t n) {
  if (n == 0) return Status::invalid_argument("zero partitions");
  const int ki = in.column_index(key);
  if (ki < 0) return Status::not_found("no such column: " + key);
  if (in.column(ki).type() != DataType::kInt64) {
    return Status::invalid_argument("hash_partition key must be int64");
  }
  const auto& keys = in.column(ki).ints();
  std::vector<std::vector<std::size_t>> buckets(n);
  for (std::size_t r = 0; r < keys.size(); ++r) {
    buckets[stable_hash64(keys[r]) % n].push_back(r);
  }
  std::vector<Table> out;
  out.reserve(n);
  for (const auto& b : buckets) out.push_back(in.take(b));
  return out;
}

std::vector<Table> round_robin_partition(const Table& in, std::size_t n) {
  std::vector<std::vector<std::size_t>> buckets(n);
  for (std::size_t r = 0; r < in.num_rows(); ++r) buckets[r % n].push_back(r);
  std::vector<Table> out;
  out.reserve(n);
  for (const auto& b : buckets) out.push_back(in.take(b));
  return out;
}

std::vector<Table> range_partition(const Table& in, std::size_t n) {
  std::vector<Table> out;
  out.reserve(n);
  const std::size_t rows = in.num_rows();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = rows * i / n;
    const std::size_t hi = rows * (i + 1) / n;
    std::vector<std::size_t> idx;
    idx.reserve(hi - lo);
    for (std::size_t r = lo; r < hi; ++r) idx.push_back(r);
    out.push_back(in.take(idx));
  }
  return out;
}

}  // namespace ditto::exec
