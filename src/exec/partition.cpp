#include "exec/partition.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>
#include <future>

#include "common/thread_pool.h"

namespace ditto::exec {

std::uint64_t stable_hash64(std::int64_t key) {
  // SplitMix64 finalizer: deterministic, well mixed.
  std::uint64_t x = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void run_chunked(std::size_t chunks, ThreadPool* pool,
                 const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) body(c);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(pool->submit([&body, c] { body(c); }));
  }
  for (auto& f : futures) f.get();
}

namespace {

template <typename PartFn>
ScatterPlan make_plan(std::size_t rows, std::size_t parts, ThreadPool* pool,
                      PartFn part_of_row) {
  ScatterPlan p;
  p.rows = rows;
  p.parts = parts;
  p.chunks = std::max<std::size_t>(1, (rows + p.chunk_rows - 1) / p.chunk_rows);
  p.part_of.resize(rows);
  p.base.assign(p.chunks * parts, 0);
  p.counts.assign(parts, 0);

  // Count pass: per-row partition ids and per-chunk histograms (each
  // chunk owns one histogram row, so no synchronization).
  run_chunked(p.chunks, pool, [&](std::size_t c) {
    const std::size_t lo = c * p.chunk_rows;
    const std::size_t hi = std::min(rows, lo + p.chunk_rows);
    std::size_t* hist = p.base.data() + c * parts;
    for (std::size_t r = lo; r < hi; ++r) {
      const std::uint32_t q = part_of_row(r);
      p.part_of[r] = q;
      ++hist[q];
    }
  });

  // Exclusive scan per partition: base[c][q] = rows of partition q in
  // chunks before c. Rewrites the histograms in place.
  for (std::size_t q = 0; q < parts; ++q) {
    std::size_t running = 0;
    for (std::size_t c = 0; c < p.chunks; ++c) {
      const std::size_t h = p.base[c * parts + q];
      p.base[c * parts + q] = running;
      running += h;
    }
    p.counts[q] = running;
  }
  p.part_start.resize(parts + 1);
  p.part_start[0] = 0;
  for (std::size_t q = 0; q < parts; ++q) {
    p.part_start[q + 1] = p.part_start[q] + p.counts[q];
  }
  return p;
}

/// String scatter keeps per-partition owned vectors: strings copy
/// either way, and borrowed columns are fixed-width only.
std::vector<std::vector<std::string>> scatter_strings(const std::vector<std::string>& src,
                                                      const ScatterPlan& p, ThreadPool* pool) {
  std::vector<std::vector<std::string>> out(p.parts);
  std::vector<std::string*> dst(p.parts);
  for (std::size_t q = 0; q < p.parts; ++q) {
    out[q].resize(p.counts[q]);
    dst[q] = out[q].data();
  }
  run_chunked(p.chunks, pool, [&](std::size_t c) {
    std::vector<std::size_t> cursor(p.base.begin() + static_cast<std::ptrdiff_t>(c * p.parts),
                                    p.base.begin() + static_cast<std::ptrdiff_t>((c + 1) * p.parts));
    const std::size_t lo = c * p.chunk_rows;
    const std::size_t hi = std::min(p.rows, lo + p.chunk_rows);
    for (std::size_t r = lo; r < hi; ++r) {
      const std::uint32_t q = p.part_of[r];
      dst[q][cursor[q]++] = src[r];
    }
  });
  return out;
}

std::vector<Table> scatter_table(const Table& in, const ScatterPlan& p, ThreadPool* pool) {
  const std::size_t ncols = in.num_columns();
  std::vector<std::vector<Column>> cols(p.parts);
  for (auto& c : cols) c.resize(ncols);

  // All fixed-width columns share one fused scatter sweep: every column
  // has the same partition-major layout, so one cursor update per ROW
  // routes all of them, and `part_of` is read once instead of once per
  // column. int64 and double are both 8-byte PODs; the move is a fixed
  // 8-byte memcpy (a single load/store after optimization), which
  // sidesteps strict-aliasing for the double case. Each column lands in
  // ONE uninitialized partition-major buffer (every slot written
  // exactly once — no zero-fill, one allocation) and partitions BORROW
  // slices of it: holding one small partition keeps the whole gathered
  // column alive (same deal as Table::slice); mutation copies out.
  struct FusedCol {
    std::size_t index;
    DataType type;
    const unsigned char* src;
    unsigned char* dst;
    std::shared_ptr<void> buf;
  };
  std::vector<FusedCol> fused;
  fused.reserve(ncols);
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    const Column& col = in.column(ci);
    if (col.type() == DataType::kInt64) {
      std::shared_ptr<void> buf(new std::int64_t[p.rows], std::default_delete<std::int64_t[]>());
      fused.push_back({ci, col.type(),
                       reinterpret_cast<const unsigned char*>(col.int_span().data()),
                       static_cast<unsigned char*>(buf.get()), std::move(buf)});
    } else if (col.type() == DataType::kDouble) {
      std::shared_ptr<void> buf(new double[p.rows], std::default_delete<double[]>());
      fused.push_back({ci, col.type(),
                       reinterpret_cast<const unsigned char*>(col.double_span().data()),
                       static_cast<unsigned char*>(buf.get()), std::move(buf)});
    }
  }
  if (!fused.empty() && p.rows > 0) {
    run_chunked(p.chunks, pool, [&](std::size_t c) {
      std::vector<std::size_t> cursor(p.parts);
      for (std::size_t q = 0; q < p.parts; ++q) {
        cursor[q] = p.part_start[q] + p.base[c * p.parts + q];
      }
      const std::size_t lo = c * p.chunk_rows;
      const std::size_t hi = std::min(p.rows, lo + p.chunk_rows);
      for (std::size_t r = lo; r < hi; ++r) {
        const std::size_t slot = cursor[p.part_of[r]]++;
        for (const FusedCol& f : fused) {
          std::memcpy(f.dst + slot * 8, f.src + r * 8, 8);
        }
      }
    });
  }
  for (const FusedCol& f : fused) {
    for (std::size_t q = 0; q < p.parts; ++q) {
      if (p.counts[q] == 0) {
        cols[q][f.index] = f.type == DataType::kInt64 ? Column(std::vector<std::int64_t>{})
                                                      : Column(std::vector<double>{});
      } else if (f.type == DataType::kInt64) {
        cols[q][f.index] = Column::borrow_ints(
            f.buf, reinterpret_cast<const std::int64_t*>(f.dst) + p.part_start[q], p.counts[q]);
      } else {
        cols[q][f.index] = Column::borrow_doubles(
            f.buf, reinterpret_cast<const double*>(f.dst) + p.part_start[q], p.counts[q]);
      }
    }
  }

  for (std::size_t ci = 0; ci < ncols; ++ci) {
    const Column& col = in.column(ci);
    if (col.type() != DataType::kString) continue;
    auto outs = scatter_strings(col.strings(), p, pool);
    for (std::size_t q = 0; q < p.parts; ++q) cols[q][ci] = Column(std::move(outs[q]));
  }
  std::vector<Table> out;
  out.reserve(p.parts);
  for (std::size_t q = 0; q < p.parts; ++q) {
    auto t = Table::make(in.schema(), std::move(cols[q]));
    assert(t.ok() && "scatter built a malformed partition");
    out.push_back(std::move(t).value());
  }
  return out;
}

}  // namespace

ScatterPlan make_hash_plan(ColumnSpan<std::int64_t> keys, std::size_t parts,
                           ThreadPool* pool) {
  return make_plan(keys.size(), parts, pool, [keys, parts](std::size_t r) {
    return static_cast<std::uint32_t>(stable_hash64(keys[r]) % parts);
  });
}

ScatterPlan make_radix_plan(ColumnSpan<std::int64_t> keys, std::size_t parts,
                            ThreadPool* pool) {
  assert(parts > 0 && (parts & (parts - 1)) == 0 && "radix fanout must be a power of two");
  const std::uint64_t mask = parts - 1;
  return make_plan(keys.size(), parts, pool, [keys, mask](std::size_t r) {
    return static_cast<std::uint32_t>(stable_hash64(keys[r]) & mask);
  });
}

ScatterPlan make_radix_plan_multi(const std::vector<ColumnSpan<std::int64_t>>& keys,
                                  std::size_t parts, ThreadPool* pool) {
  assert(parts > 0 && (parts & (parts - 1)) == 0 && "radix fanout must be a power of two");
  assert(!keys.empty());
  const std::uint64_t mask = parts - 1;
  const std::size_t rows = keys[0].size();
  return make_plan(rows, parts, pool, [&keys, mask](std::size_t r) {
    std::uint64_t h = 0;
    for (const auto& k : keys) h = stable_hash64(static_cast<std::int64_t>(h) ^ k[r]);
    return static_cast<std::uint32_t>(h & mask);
  });
}

std::vector<std::uint32_t> partitioned_row_indices(const ScatterPlan& p, ThreadPool* pool) {
  std::vector<std::uint32_t> out(p.rows);
  run_chunked(p.chunks, pool, [&](std::size_t c) {
    std::vector<std::size_t> cursor(p.parts);
    for (std::size_t q = 0; q < p.parts; ++q) {
      cursor[q] = p.part_start[q] + p.base[c * p.parts + q];
    }
    const std::size_t lo = c * p.chunk_rows;
    const std::size_t hi = std::min(p.rows, lo + p.chunk_rows);
    for (std::size_t r = lo; r < hi; ++r) {
      out[cursor[p.part_of[r]]++] = static_cast<std::uint32_t>(r);
    }
  });
  return out;
}

namespace {

template <typename T>
std::vector<T> partitioned_values_impl(const ScatterPlan& p, ColumnSpan<T> vals,
                                       ThreadPool* pool) {
  std::vector<T> out(p.rows);
  run_chunked(p.chunks, pool, [&](std::size_t c) {
    std::vector<std::size_t> cursor(p.parts);
    for (std::size_t q = 0; q < p.parts; ++q) {
      cursor[q] = p.part_start[q] + p.base[c * p.parts + q];
    }
    const std::size_t lo = c * p.chunk_rows;
    const std::size_t hi = std::min(p.rows, lo + p.chunk_rows);
    for (std::size_t r = lo; r < hi; ++r) {
      out[cursor[p.part_of[r]]++] = vals[r];
    }
  });
  return out;
}

}  // namespace

std::vector<std::int64_t> partitioned_values(const ScatterPlan& plan,
                                             ColumnSpan<std::int64_t> vals,
                                             ThreadPool* pool) {
  return partitioned_values_impl(plan, vals, pool);
}

std::vector<double> partitioned_values(const ScatterPlan& plan, ColumnSpan<double> vals,
                                       ThreadPool* pool) {
  return partitioned_values_impl(plan, vals, pool);
}

Table gather_rows(const Table& in, const std::uint32_t* rows, std::size_t n,
                  ThreadPool* pool) {
  const std::size_t ncols = in.num_columns();
  std::vector<Column> cols(ncols);

  // Fused fixed-width gather: one sweep over the output positions moves
  // every fixed-width column, each into one uninitialized exact-size
  // buffer written exactly once; the output columns borrow the buffers.
  struct FusedCol {
    std::size_t index;
    DataType type;
    const unsigned char* src;
    unsigned char* dst;
    std::shared_ptr<void> buf;
  };
  std::vector<FusedCol> fused;
  fused.reserve(ncols);
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    const Column& col = in.column(ci);
    if (col.type() == DataType::kInt64) {
      std::shared_ptr<void> buf(new std::int64_t[n], std::default_delete<std::int64_t[]>());
      fused.push_back({ci, col.type(),
                       reinterpret_cast<const unsigned char*>(col.int_span().data()),
                       static_cast<unsigned char*>(buf.get()), std::move(buf)});
    } else if (col.type() == DataType::kDouble) {
      std::shared_ptr<void> buf(new double[n], std::default_delete<double[]>());
      fused.push_back({ci, col.type(),
                       reinterpret_cast<const unsigned char*>(col.double_span().data()),
                       static_cast<unsigned char*>(buf.get()), std::move(buf)});
    }
  }
  const std::size_t chunks = std::max<std::size_t>(1, (n + kScatterChunkRows - 1) / kScatterChunkRows);
  if (!fused.empty() && n > 0) {
    run_chunked(chunks, pool, [&](std::size_t c) {
      const std::size_t lo = c * kScatterChunkRows;
      const std::size_t hi = std::min(n, lo + kScatterChunkRows);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t r = rows[i];
        for (const FusedCol& f : fused) {
          std::memcpy(f.dst + i * 8, f.src + r * 8, 8);
        }
      }
    });
  }
  for (const FusedCol& f : fused) {
    if (n == 0) {
      cols[f.index] = f.type == DataType::kInt64 ? Column(std::vector<std::int64_t>{})
                                                 : Column(std::vector<double>{});
    } else if (f.type == DataType::kInt64) {
      cols[f.index] =
          Column::borrow_ints(f.buf, reinterpret_cast<const std::int64_t*>(f.dst), n);
    } else {
      cols[f.index] = Column::borrow_doubles(f.buf, reinterpret_cast<const double*>(f.dst), n);
    }
  }
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    const Column& col = in.column(ci);
    if (col.type() != DataType::kString) continue;
    const auto& src = col.strings();
    std::vector<std::string> dst(n);
    run_chunked(chunks, pool, [&](std::size_t c) {
      const std::size_t lo = c * kScatterChunkRows;
      const std::size_t hi = std::min(n, lo + kScatterChunkRows);
      for (std::size_t i = lo; i < hi; ++i) dst[i] = src[rows[i]];
    });
    cols[ci] = Column(std::move(dst));
  }
  auto t = Table::make(in.schema(), std::move(cols));
  assert(t.ok() && "gather built a malformed table");
  return std::move(t).value();
}

Result<std::vector<Table>> hash_partition(const Table& in, const std::string& key,
                                          std::size_t n, ThreadPool* pool) {
  if (n == 0) return Status::invalid_argument("zero partitions");
  DITTO_ASSIGN_OR_RETURN(const Column* kc, in.checked_column(key));
  if (kc->type() != DataType::kInt64) {
    return Status::invalid_argument("hash_partition key must be int64");
  }
  const ColumnSpan<std::int64_t> keys = kc->int_span();
  const ScatterPlan plan = make_hash_plan(keys, n, pool);
  return scatter_table(in, plan, pool);
}

std::vector<Table> round_robin_partition(const Table& in, std::size_t n, ThreadPool* pool) {
  assert(n > 0 && "zero partitions");
  const ScatterPlan plan = make_plan(in.num_rows(), n, pool, [n](std::size_t r) {
    return static_cast<std::uint32_t>(r % n);
  });
  return scatter_table(in, plan, pool);
}

std::vector<Table> range_partition(const Table& in, std::size_t n) {
  assert(n > 0 && "zero partitions");
  std::vector<Table> out;
  out.reserve(n);
  const std::size_t rows = in.num_rows();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = rows * i / n;
    const std::size_t hi = rows * (i + 1) / n;
    out.push_back(in.slice(lo, hi - lo));
  }
  return out;
}

}  // namespace ditto::exec
