#include "exec/column.h"

namespace ditto::exec {

const char* data_type_name(DataType t) {
  switch (t) {
    case DataType::kInt64: return "int64";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
  }
  return "?";
}

std::size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

void Column::append_from(const Column& src, std::size_t i) {
  assert(type() == src.type());
  switch (type()) {
    case DataType::kInt64: ints().push_back(src.int_at(i)); break;
    case DataType::kDouble: doubles().push_back(src.double_at(i)); break;
    case DataType::kString: strings().push_back(src.string_at(i)); break;
  }
}

Column Column::take(const std::vector<std::size_t>& indices) const {
  switch (type()) {
    case DataType::kInt64: {
      std::vector<std::int64_t> out;
      out.reserve(indices.size());
      for (std::size_t i : indices) out.push_back(int_at(i));
      return Column(std::move(out));
    }
    case DataType::kDouble: {
      std::vector<double> out;
      out.reserve(indices.size());
      for (std::size_t i : indices) out.push_back(double_at(i));
      return Column(std::move(out));
    }
    case DataType::kString: {
      std::vector<std::string> out;
      out.reserve(indices.size());
      for (std::size_t i : indices) out.push_back(string_at(i));
      return Column(std::move(out));
    }
  }
  return Column();
}

std::size_t Column::byte_size() const {
  switch (type()) {
    case DataType::kInt64: return ints().size() * sizeof(std::int64_t);
    case DataType::kDouble: return doubles().size() * sizeof(double);
    case DataType::kString: {
      std::size_t n = 0;
      for (const std::string& s : strings()) n += s.size() + sizeof(std::size_t);
      return n;
    }
  }
  return 0;
}

}  // namespace ditto::exec
