#include "exec/column.h"

#include <cstring>

namespace ditto::exec {

const char* data_type_name(DataType t) {
  switch (t) {
    case DataType::kInt64: return "int64";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
  }
  return "?";
}

Column Column::borrow_ints(std::shared_ptr<const void> owner, const std::int64_t* p,
                           std::size_t n) {
  assert((n == 0 || p != nullptr) && "borrowed column needs a payload");
  assert(reinterpret_cast<std::uintptr_t>(p) % alignof(std::int64_t) == 0);
  Column c;
  c.data_ = Borrowed<std::int64_t>{std::move(owner), p, n};
  return c;
}

Column Column::borrow_doubles(std::shared_ptr<const void> owner, const double* p,
                              std::size_t n) {
  assert((n == 0 || p != nullptr) && "borrowed column needs a payload");
  assert(reinterpret_cast<std::uintptr_t>(p) % alignof(double) == 0);
  Column c;
  c.data_ = Borrowed<double>{std::move(owner), p, n};
  return c;
}

DataType Column::type() const {
  switch (data_.index()) {
    case 0: case 3: return DataType::kInt64;
    case 1: case 4: return DataType::kDouble;
    default: return DataType::kString;
  }
}

std::size_t Column::size() const {
  switch (data_.index()) {
    case 0: return std::get<0>(data_).size();
    case 1: return std::get<1>(data_).size();
    case 2: return std::get<2>(data_).size();
    case 3: return std::get<3>(data_).size;
    default: return std::get<4>(data_).size;
  }
}

bool Column::is_borrowed() const { return data_.index() >= 3; }

ColumnSpan<std::int64_t> Column::int_span() const {
  if (data_.index() == 3) {
    const auto& b = std::get<3>(data_);
    return {b.data, b.size};
  }
  const auto& v = std::get<0>(data_);
  return {v.data(), v.size()};
}

ColumnSpan<double> Column::double_span() const {
  if (data_.index() == 4) {
    const auto& b = std::get<4>(data_);
    return {b.data, b.size};
  }
  const auto& v = std::get<1>(data_);
  return {v.data(), v.size()};
}

const std::vector<std::int64_t>& Column::ints() const {
  if (data_.index() == 3) return materialized(std::get<3>(data_));
  return std::get<0>(data_);
}

const std::vector<double>& Column::doubles() const {
  if (data_.index() == 4) return materialized(std::get<4>(data_));
  return std::get<1>(data_);
}

std::vector<std::int64_t>& Column::ints() {
  ensure_owned();
  return std::get<0>(data_);
}

std::vector<double>& Column::doubles() {
  ensure_owned();
  return std::get<1>(data_);
}

void Column::ensure_owned() {
  if (data_.index() == 3) {
    const auto& b = std::get<3>(data_);
    data_ = std::vector<std::int64_t>(b.data, b.data + b.size);
  } else if (data_.index() == 4) {
    const auto& b = std::get<4>(data_);
    data_ = std::vector<double>(b.data, b.data + b.size);
  }
}

void Column::append_from(const Column& src, std::size_t i) {
  assert(type() == src.type());
  switch (type()) {
    case DataType::kInt64: ints().push_back(src.int_span()[i]); break;
    case DataType::kDouble: doubles().push_back(src.double_span()[i]); break;
    case DataType::kString: strings().push_back(src.string_at(i)); break;
  }
}

Column Column::take(const std::vector<std::size_t>& indices) const {
  switch (type()) {
    case DataType::kInt64: {
      const auto src = int_span();
      std::vector<std::int64_t> out(indices.size());
      for (std::size_t i = 0; i < indices.size(); ++i) out[i] = src[indices[i]];
      return Column(std::move(out));
    }
    case DataType::kDouble: {
      const auto src = double_span();
      std::vector<double> out(indices.size());
      for (std::size_t i = 0; i < indices.size(); ++i) out[i] = src[indices[i]];
      return Column(std::move(out));
    }
    case DataType::kString: {
      const auto& src = strings();
      std::vector<std::string> out;
      out.reserve(indices.size());
      for (std::size_t i : indices) {
        assert(i < src.size());
        out.push_back(src[i]);
      }
      return Column(std::move(out));
    }
  }
  return Column();
}

Column Column::slice(std::size_t offset, std::size_t count) const {
  assert(offset <= size() && count <= size() - offset && "slice out of range");
  switch (data_.index()) {
    case 3: {
      const auto& b = std::get<3>(data_);
      return borrow_ints(b.owner, b.data + offset, count);
    }
    case 4: {
      const auto& b = std::get<4>(data_);
      return borrow_doubles(b.owner, b.data + offset, count);
    }
    case 0: {
      const auto src = int_span();
      return Column(std::vector<std::int64_t>(src.data() + offset, src.data() + offset + count));
    }
    case 1: {
      const auto src = double_span();
      return Column(std::vector<double>(src.data() + offset, src.data() + offset + count));
    }
    default: {
      const auto& src = strings();
      return Column(std::vector<std::string>(src.begin() + static_cast<std::ptrdiff_t>(offset),
                                             src.begin() + static_cast<std::ptrdiff_t>(offset + count)));
    }
  }
}

Column Column::borrowed_copy() const {
  switch (type()) {
    case DataType::kInt64: {
      const auto src = int_span();
      auto buf = std::make_shared<std::vector<std::int64_t>>(src.begin(), src.end());
      const std::int64_t* p = buf->data();
      const std::size_t n = buf->size();
      return borrow_ints(std::move(buf), p, n);
    }
    case DataType::kDouble: {
      const auto src = double_span();
      auto buf = std::make_shared<std::vector<double>>(src.begin(), src.end());
      const double* p = buf->data();
      const std::size_t n = buf->size();
      return borrow_doubles(std::move(buf), p, n);
    }
    case DataType::kString: return *this;
  }
  return *this;
}

std::size_t Column::byte_size() const {
  switch (type()) {
    case DataType::kInt64: return size() * sizeof(std::int64_t);
    case DataType::kDouble: return size() * sizeof(double);
    case DataType::kString: {
      std::size_t n = 0;
      for (const std::string& s : strings()) n += s.size() + sizeof(std::size_t);
      return n;
    }
  }
  return 0;
}

bool operator==(const Column& a, const Column& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kInt64: return a.int_span() == b.int_span();
    case DataType::kDouble: return a.double_span() == b.double_span();
    case DataType::kString: return a.strings() == b.strings();
  }
  return false;
}

}  // namespace ditto::exec
