// CSV import/export for tables — the practical on-ramp for feeding a
// user's own data into the engine (dittoctl-style workflows, examples,
// and debugging dumps).
//
// Format: RFC-4180-ish. First line is the header; a type suffix on
// each column name selects the column type: ":int" (default), ":double",
// ":str". Fields containing commas, quotes, or newlines are quoted and
// inner quotes doubled.
#pragma once

#include <string>

#include "common/status.h"
#include "exec/table.h"

namespace ditto::exec {

/// Renders a table as CSV (with typed header).
std::string table_to_csv(const Table& table);

/// Parses CSV produced by table_to_csv (or hand-written with typed
/// headers). Numeric parse failures and ragged rows are errors.
Result<Table> table_from_csv(const std::string& csv);

}  // namespace ditto::exec
