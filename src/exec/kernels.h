// Columnar multi-core operator kernels (ROADMAP item 1).
//
// The hot operators — group-by, hash join, filter — are implemented
// here as chunk/partition-parallel kernels over borrowed fixed-width
// columns, reusing the ScatterPlan count-then-scatter machinery from
// partition.{h,cpp}. The row-at-a-time formulations they replaced are
// retained under ditto::exec::reference (operators.h) and every kernel
// is required to be bit-identical to its reference — see
// tests/exec/kernels_test.cpp and the bench_engine_micro gates.
//
// Bit-identity argument, in one place:
//  - Radix group-by routes every row of one key to one partition and
//    partitioned_row_indices preserves original row order within the
//    partition, so each group's accumulator sees exactly the
//    reference's value sequence (FP sums add in the same order).
//  - The central-merge group-by variant merges chunk-local tables in
//    chunk order, which is only exact for order-insensitive
//    aggregates; the adaptive pick therefore routes kSum/kAvg to the
//    radix path unconditionally.
//  - The join builds per-partition tables by appending right rows in
//    ascending order and probes left rows in order, reproducing the
//    documented output order (left-row major, duplicate matches by
//    ascending right row).
//  - The filter evaluates predicates into a selection mask whose
//    gather preserves row order; the mask itself is order-free.
//
// Thread-pool contract: every kernel takes an optional ThreadPool*.
// nullptr means "consult task_compute_pool()", the thread-local set by
// the engine around each task body (the engine's dedicated pure-compute
// scatter pool — never a bounded server pool, so kernels can block on
// their sub-work without deadlocking task scheduling). Kernel sub-work
// never submits to the pool from a pool thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/operators.h"
#include "exec/table.h"

namespace ditto {
class ThreadPool;
}

namespace ditto::exec {

// ---------------------------------------------------------------------------
// Compute-pool plumbing.

/// The pure-compute pool the engine granted the current task (nullptr
/// outside a task, or when the engine runs without one). Operators use
/// it when their explicit pool argument is nullptr.
ThreadPool* task_compute_pool();

/// RAII setter for task_compute_pool(); the engine wraps each stage
/// function invocation in one of these.
class ScopedComputePool {
 public:
  explicit ScopedComputePool(ThreadPool* pool);
  ~ScopedComputePool();
  ScopedComputePool(const ScopedComputePool&) = delete;
  ScopedComputePool& operator=(const ScopedComputePool&) = delete;

 private:
  ThreadPool* prev_;
};

// ---------------------------------------------------------------------------
// Per-kernel wall-time accounting (thread-local, entry-point only:
// nested operator calls fold into the outermost kernel's bucket).

struct KernelSeconds {
  double group_by = 0.0;
  double join = 0.0;
  double filter = 0.0;
  double top_k = 0.0;

  double total() const { return group_by + join + filter + top_k; }
  bool any() const { return total() > 0.0; }
};

/// Zeroes the calling thread's kernel-time accumulator. The engine
/// calls this before each task attempt.
void reset_kernel_seconds();

/// The calling thread's accumulated kernel time since the last reset.
KernelSeconds current_kernel_seconds();

namespace detail {

/// RAII scope accumulating wall time into one KernelSeconds bucket.
/// Only the outermost scope on a thread records (nested operator calls
/// fold into the entry-point's bucket). Placed at every dispatching
/// operator entry point in operators.cpp.
class KernelTimer {
 public:
  explicit KernelTimer(double KernelSeconds::*field);
  ~KernelTimer();
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  double KernelSeconds::*field_;
  std::chrono::steady_clock::time_point start_;
  bool outer_;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Group-by strategy (exposed so tests can pin the adaptive pick).

enum class GroupByStrategy {
  kSerialFlat,        ///< one flat table, one thread (small inputs)
  kRadixPartitioned,  ///< ScatterPlan radix route + per-partition tables;
                      ///< picked for every large input — with a pool the
                      ///< partitions aggregate in parallel, without one the
                      ///< value scatter still pays for itself by keeping
                      ///< per-partition state cache-resident
  kCentralMerge,      ///< chunk-local tables merged centrally (low card.)
};

const char* group_by_strategy_name(GroupByStrategy s);

/// Observed-cardinality threshold below which the central-merge variant
/// wins (no row movement; merge cost ~ cardinality x chunks).
inline constexpr std::size_t kCentralMergeCardinality = 512;

/// Tables at or below this many rows always take the serial flat path.
inline constexpr std::size_t kParallelMinRows = 32 * 1024;

/// Distinct keys in a fixed-stride sample of at most 4096 rows — the
/// cheap cardinality estimate driving the adaptive pick.
std::size_t sample_cardinality(ColumnSpan<std::int64_t> keys);

/// True iff every aggregate is exact under chunk-ordered merging
/// (kCount/kMin/kMax/kFirstInt; double sums are order-dependent).
bool aggs_merge_exact(const std::vector<AggSpec>& aggs);

/// The pick group_by_kernel will make for this input and pool.
GroupByStrategy pick_group_by_strategy(ColumnSpan<std::int64_t> keys,
                                       const std::vector<AggSpec>& aggs,
                                       ThreadPool* pool);

// ---------------------------------------------------------------------------
// Kernels. Entry points mirror the operators.h contracts exactly
// (schema, row order, error statuses); operators.cpp dispatches here.

Result<Table> group_by_kernel(const Table& in, const std::string& key,
                              const std::vector<AggSpec>& aggs, ThreadPool* pool);

Result<Table> group_by_multi_kernel(const Table& in, const std::vector<std::string>& keys,
                                    const std::vector<AggSpec>& aggs, ThreadPool* pool);

Result<Table> hash_join_kernel(const Table& left, const std::string& left_key,
                               const Table& right, const std::string& right_key,
                               JoinKind kind, ThreadPool* pool);

/// Fused multi-predicate columnar filter: evaluates each predicate
/// column-at-a-time into a shared selection mask (AND) and gathers the
/// surviving rows through the uninitialized-buffer move path.
Result<Table> filter_kernel(const Table& in, const std::vector<ColumnPred>& preds,
                            ThreadPool* pool);

// ---------------------------------------------------------------------------
// Streaming kernels (pipelined shuffle, paper §4.5). A chunk source is
// a pull iterator: each call blocks for and returns the next input
// chunk in deterministic (producer-major, chunk-seq) order; nullopt =
// stream drained. Each streaming kernel is bit-identical to running
// its materialized counterpart on the concatenation of every chunk —
// that contract is what keeps pipelined and wave execution
// interchangeable (and is pinned by the fault-storm identity tests).

/// Pull-based chunk iterator handed to streaming consumers.
using TableChunkFn = std::function<Result<std::optional<Table>>()>;

/// Drains a chunk stream into one table (the gather-on-last-chunk
/// fallback for blocking consumers like group-by builds). Errors on an
/// empty stream — Exchange always publishes at least one (possibly
/// zero-row) chunk, so a drained-empty stream means a protocol bug.
Result<Table> gather_chunks(const TableChunkFn& next);

/// filter_kernel applied per chunk; filtering preserves row order, so
/// the concatenated survivors equal filtering the concatenated input.
Result<Table> filter_stream(const TableChunkFn& next, const std::vector<ColumnPred>& preds,
                            ThreadPool* pool);

/// Hash join with a streaming probe side: builds the right-side hash
/// ONCE, then probes each left chunk as it arrives and concatenates
/// the per-chunk results. Probe chunks are ascending left-row ranges
/// and hash_join_kernel's output is left-row major, so the concat is
/// bit-identical to the materialized join. The build side must be a
/// complete table (it is blocking by nature — gather_chunks it first).
Result<Table> hash_join_stream(const TableChunkFn& next_left, const std::string& left_key,
                               const Table& right, const std::string& right_key,
                               JoinKind kind, ThreadPool* pool);

}  // namespace ditto::exec
