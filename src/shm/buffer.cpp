#include "shm/buffer.h"

#include "shm/arena.h"

namespace ditto::shm {

Buffer::Block::~Block() {
  if (arena != nullptr) arena->release(payload.size());
}

Buffer Buffer::from_bytes(std::string_view data, Arena* arena) {
  std::vector<std::uint8_t> payload(data.size());
  std::memcpy(payload.data(), data.data(), data.size());
  return adopt(std::move(payload), arena);
}

Buffer Buffer::adopt(std::vector<std::uint8_t> payload, Arena* arena) {
  if (arena != nullptr) {
    // Best effort: if the arena is full we still adopt but untracked —
    // the execution engine checks capacity before producing.
    if (!arena->reserve(payload.size()).is_ok()) arena = nullptr;
  }
  auto block = std::make_shared<Block>();
  block->payload = std::move(payload);
  block->arena = arena;
  return Buffer(std::move(block));
}

}  // namespace ditto::shm
