// Per-server shared-memory arena.
//
// Each simulated server owns one Arena sized like its memory. Buffers
// allocated from the arena account against it for the lifetime of the
// payload; the accounting feeds the shared-memory persistence cost in
// the paper's cost metric (§6.2: "Ditto schedules more stages to
// exchange data through shared memory ... increasing the shared memory
// cost caused by data persistence").
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "common/status.h"
#include "common/units.h"

namespace ditto::shm {

class Arena {
 public:
  explicit Arena(Bytes capacity, std::string name = "arena")
      : capacity_(capacity), name_(std::move(name)) {}

  /// Reserve `n` bytes; RESOURCE_EXHAUSTED when it would overflow.
  Status reserve(Bytes n);
  /// Return `n` bytes (called by Buffer's control block on destruction).
  void release(Bytes n);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_.load(std::memory_order_relaxed); }
  Bytes available() const { return capacity_ - used(); }
  const std::string& name() const { return name_; }

  /// Integral of bytes x seconds is approximated by the simulator; the
  /// arena itself tracks the high-water mark for diagnostics.
  Bytes high_water() const { return high_water_.load(std::memory_order_relaxed); }

 private:
  const Bytes capacity_;
  const std::string name_;
  std::atomic<Bytes> used_{0};
  std::atomic<Bytes> high_water_{0};
};

}  // namespace ditto::shm
