// SPRIGHT-style single-producer/single-consumer descriptor ring.
//
// SPRIGHT's eBPF dataplane passes fixed-size *descriptors* (pointers
// into a shared-memory pool) through a lock-free ring; payloads never
// move. This is a faithful in-process reproduction: a bounded SPSC
// ring of Buffer handles with acquire/release synchronization and no
// locks on the fast path.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

#include "shm/buffer.h"

namespace ditto::shm {

class DescriptorRing {
 public:
  /// `capacity` must be a power of two (mask-based indexing).
  explicit DescriptorRing(std::size_t capacity) : slots_(capacity), mask_(capacity - 1) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "ring capacity must be a power of two");
  }

  /// Producer side. Returns false when the ring is full.
  bool try_push(Buffer buf) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) return false;
    slots_[head & mask_] = std::move(buf);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when the ring is empty.
  std::optional<Buffer> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    Buffer out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return out;
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

 private:
  std::vector<Buffer> slots_;
  const std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer cursor
};

}  // namespace ditto::shm
