#include "shm/channel.h"

#include "obs/metrics.h"

namespace ditto::shm {

namespace {
/// Channel-level counters in the global registry, labeled by channel
/// kind so shm and remote traffic stay separable in one snapshot.
void count_message(const char* kind, Bytes payload) {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (!mx.enabled()) return;
  const obs::MetricLabels labels{{"kind", kind}};
  mx.counter("shm.channel_messages", labels).add();
  mx.counter("shm.channel_bytes", labels).add(payload);
}
}  // namespace

Status SharedMemoryChannel::send(Buffer buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::failed_precondition("send on closed channel");
  ++stats_.messages;
  stats_.payload_bytes += buf.size();
  count_message(kind(), buf.size());
  // Zero-copy: the handle moves, the payload stays put.
  queue_.push_back(std::move(buf));
  cv_.notify_one();
  return Status::ok();
}

std::optional<Buffer> SharedMemoryChannel::recv() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Buffer out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

void SharedMemoryChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

ChannelStats SharedMemoryChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status RemoteChannel::send(Buffer buf) {
  std::size_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::failed_precondition("send on closed channel");
    seq = next_send_++;
    ++stats_.messages;
    stats_.payload_bytes += buf.size();
    ++stats_.payload_copies;  // serialize into the store
    stats_.modeled_time += store_->put_time(buf.size());
  }
  count_message(kind(), buf.size());
  DITTO_RETURN_IF_ERROR(store_->put(prefix_ + "/" + std::to_string(seq), buf.view()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }
  return Status::ok();
}

std::optional<Buffer> RemoteChannel::recv() {
  std::size_t seq;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return next_recv_ < next_send_ || closed_; });
    if (next_recv_ >= next_send_) return std::nullopt;  // closed and drained
    seq = next_recv_++;
  }
  Result<std::string> value = store_->get(prefix_ + "/" + std::to_string(seq));
  if (!value.ok()) return std::nullopt;  // producer claimed the seq but put failed
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.payload_copies;  // deserialize out of the store
    stats_.modeled_time += store_->get_time(value.value().size());
  }
  return Buffer::from_bytes(*value);
}

void RemoteChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

ChannelStats RemoteChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ditto::shm
