// Task-to-task data channels.
//
// Channel is the abstract pipe between an upstream task and a
// downstream task. Two implementations realize the paper's placement
// asymmetry:
//   * SharedMemoryChannel — same server: the Buffer handle is moved
//     through an in-memory queue; the payload is never copied or
//     serialized (SPRIGHT zero-copy, "microsecond-level latency").
//   * RemoteChannel — different servers: the payload is written to an
//     ObjectStore (S3/Redis sim) and read back by the consumer, paying
//     serialization + transport on both sides.
// Both are multi-producer/multi-consumer and support close() so
// consumers can distinguish "empty for now" from "no more data".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.h"
#include "shm/buffer.h"
#include "storage/object_store.h"

namespace ditto::shm {

/// Counters proving which path data took (asserted by tests).
struct ChannelStats {
  std::size_t messages = 0;
  Bytes payload_bytes = 0;
  std::size_t payload_copies = 0;  ///< deep copies made end to end
  Seconds modeled_time = 0.0;      ///< modeled transfer time accumulated
};

class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends one buffer. Blocking sends never fail except on a closed
  /// channel or a storage error.
  virtual Status send(Buffer buf) = 0;

  /// Receives the next buffer; blocks until data or close. Empty
  /// optional = channel closed and drained.
  virtual std::optional<Buffer> recv() = 0;

  /// Marks the producer side done; consumers drain then see EOF.
  virtual void close() = 0;

  virtual ChannelStats stats() const = 0;
  virtual const char* kind() const = 0;
};

/// Zero-copy intra-server channel.
class SharedMemoryChannel final : public Channel {
 public:
  SharedMemoryChannel() = default;

  Status send(Buffer buf) override;
  std::optional<Buffer> recv() override;
  void close() override;
  ChannelStats stats() const override;
  const char* kind() const override { return "shm"; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Buffer> queue_;
  bool closed_ = false;
  ChannelStats stats_;
};

/// Cross-server channel through external storage. Each message becomes
/// one object `prefix/<seq>`; the consumer reads them in order.
class RemoteChannel final : public Channel {
 public:
  /// The store must outlive the channel.
  RemoteChannel(storage::ObjectStore& store, std::string key_prefix)
      : store_(&store), prefix_(std::move(key_prefix)) {}

  Status send(Buffer buf) override;
  std::optional<Buffer> recv() override;
  void close() override;
  ChannelStats stats() const override;
  const char* kind() const override { return "remote"; }

 private:
  storage::ObjectStore* store_;
  const std::string prefix_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t next_send_ = 0;
  std::size_t next_recv_ = 0;
  bool closed_ = false;
  ChannelStats stats_;
};

}  // namespace ditto::shm
