#include "shm/arena.h"

namespace ditto::shm {

Status Arena::reserve(Bytes n) {
  Bytes cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur + n > capacity_) {
      return Status::resource_exhausted("arena '" + name_ + "' full");
    }
    if (used_.compare_exchange_weak(cur, cur + n, std::memory_order_relaxed)) break;
  }
  // Best-effort high-water update (monotone).
  Bytes hw = high_water_.load(std::memory_order_relaxed);
  const Bytes now = cur + n;
  while (now > hw && !high_water_.compare_exchange_weak(hw, now, std::memory_order_relaxed)) {
  }
  return Status::ok();
}

void Arena::release(Bytes n) { used_.fetch_sub(n, std::memory_order_relaxed); }

}  // namespace ditto::shm
