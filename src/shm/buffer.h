// Zero-copy buffer abstraction for the SPRIGHT-style data plane
// (paper §2.2, §4.1 "Modeling the shared memory").
//
// A Buffer owns an immutable byte payload via a shared control block.
// Passing a Buffer between tasks on the same server copies only the
// handle (a pointer bump), never the payload — that is the zero-copy
// property the scheduler's grouping decision exploits. Payloads are
// immutable after sealing so concurrent consumers need no locks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace ditto::shm {

class Arena;  // forward; see arena.h

/// Immutable, ref-counted byte buffer. Cheap to copy (handle only).
class Buffer {
 public:
  Buffer() = default;

  /// Copies `data` into a fresh payload (the single copy at produce time).
  static Buffer from_bytes(std::string_view data, Arena* arena = nullptr);

  /// Takes ownership of an already-built payload without copying.
  static Buffer adopt(std::vector<std::uint8_t> payload, Arena* arena = nullptr);

  bool empty() const { return !block_ || block_->payload.empty(); }
  std::size_t size() const { return block_ ? block_->payload.size() : 0; }
  const std::uint8_t* data() const { return block_ ? block_->payload.data() : nullptr; }

  std::string_view view() const {
    return block_ ? std::string_view(reinterpret_cast<const char*>(block_->payload.data()),
                                     block_->payload.size())
                  : std::string_view();
  }

  /// Number of handles sharing this payload (diagnostics/tests).
  long use_count() const { return block_ ? block_.use_count() : 0; }

  /// True if two handles alias the same payload (proof of zero-copy).
  bool same_payload(const Buffer& other) const { return block_ == other.block_; }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    if (a.size() != b.size()) return false;
    if (a.block_ == b.block_) return true;
    return a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0;
  }

 private:
  struct Block {
    std::vector<std::uint8_t> payload;
    Arena* arena = nullptr;  // non-owning; nullptr = untracked
    ~Block();
  };

  explicit Buffer(std::shared_ptr<Block> b) : block_(std::move(b)) {}
  std::shared_ptr<Block> block_;
};

}  // namespace ditto::shm
