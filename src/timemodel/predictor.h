// Placement-aware execution time prediction (paper §4.1).
//
// T(s, d, P) = R(s, d, P) + C(s, d) + W(s, d, P)
//
// Read/write steps tied to a data dependency cost zero when the
// placement P co-locates the two stages on the same server (zero-copy
// shared memory, "Modeling the shared memory"); compute steps never
// depend on placement. A per-stage straggler scaling factor inflates
// the parallelized term to account for skew ("Modeling stragglers").
#pragma once

#include <functional>
#include <vector>

#include "dag/job_dag.h"
#include "timemodel/step_model.h"

namespace ditto {

/// Answers "are stages a and b placed so their exchange is zero-copy?".
/// The scheduler provides this from its current grouping decision; the
/// simulator provides it from the concrete placement plan.
using ColocatedFn = std::function<bool(StageId, StageId)>;

/// A placement view under which no pair is co-located (everything
/// shuffles through external storage).
ColocatedFn nothing_colocated();

/// A placement view under which every pair is co-located.
ColocatedFn everything_colocated();

class ExecTimePredictor {
 public:
  /// The predictor borrows the DAG; it must outlive the predictor.
  explicit ExecTimePredictor(const JobDag& dag) : dag_(&dag) {}

  /// Effective stage-level (alpha, beta) under the placement view:
  /// sums non-pipelined steps, zeroing IO steps whose dependency is
  /// co-located, and applies the straggler factor to alpha.
  StepModel stage_model(StageId s, const ColocatedFn& colocated) const;

  /// Predicted total stage time at DoP d (Eq. 1).
  double stage_time(StageId s, int dop, const ColocatedFn& colocated) const;

  /// Per-step-kind components (for breakdown figures).
  double read_time(StageId s, int dop, const ColocatedFn& colocated) const;
  double compute_time(StageId s, int dop) const;
  double write_time(StageId s, int dop, const ColocatedFn& colocated) const;

  /// Straggler scaling factor applied to the parallelized term of stage
  /// `s`. Default 1.0; the runtime monitor tunes it from job history.
  void set_straggler_factor(StageId s, double factor);
  double straggler_factor(StageId s) const;

  /// Whether pipelining annotations (Step::pipelined, paper §4.5) are
  /// honored — i.e. pipelined read steps are skipped because the
  /// runtime overlaps them with the upstream write. Default true.
  /// Callers predicting for an engine that MATERIALIZES every exchange
  /// (EngineOptions::pipeline off) must set this false, or the model
  /// credits an overlap the runtime never delivers and every drift
  /// metric downstream of the prediction is inflated.
  void set_honor_pipelining(bool honor) { honor_pipelining_ = honor; }
  bool honor_pipelining() const { return honor_pipelining_; }

  /// Predicted cost of a stage (Eq. 5 product): M(s, d) * T(s, d, P)
  /// with M(s, d) = rho + sigma * d.
  double stage_cost(StageId s, int dop, const ColocatedFn& colocated) const;

  /// Resource usage M(s, d) = rho + sigma * d.
  double resource_usage(StageId s, int dop) const;

  /// Time attributable to one data dependency when it goes through
  /// external storage: src's write step feeding dst (at dop_src) plus
  /// dst's read step from src (at dop_dst). This is the edge weight
  /// W(s_i) + R(s_j) of the grouping algorithm (paper §4.3).
  double edge_io_time(StageId src, StageId dst, int dop_src, int dop_dst) const;

  /// The two components of edge_io_time separately (cost weighting
  /// multiplies them by different resource usages).
  double edge_write_time(StageId src, StageId dst, int dop_src) const;
  double edge_read_time(StageId src, StageId dst, int dop_dst) const;

  const JobDag& dag() const { return *dag_; }

 private:
  double kind_time(StageId s, int dop, StepKind kind, const ColocatedFn& colocated) const;
  bool step_is_zero_copy(StageId s, const Step& step, const ColocatedFn& colocated) const;

  const JobDag* dag_;
  std::vector<double> straggler_;  // indexed by StageId; empty entries = 1.0
  bool honor_pipelining_ = true;
};

}  // namespace ditto
