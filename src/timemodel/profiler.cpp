#include "timemodel/profiler.h"

#include <cassert>

#include "common/stopwatch.h"

namespace ditto {

Result<StageFit> Profiler::profile_stage(StageId s) {
  const Stage& stage = dag_->stage(s);
  const std::size_t n_steps = stage.steps().size();
  if (n_steps == 0) return Status::failed_precondition("stage has no steps: " + stage.name());
  if (options_.dops.size() < 2) {
    return Status::invalid_argument("profiler needs at least 2 DoPs");
  }

  // samples[k] collects (dop, time) pairs for step k.
  std::vector<std::vector<ProfileSample>> samples(n_steps);
  double straggler_sum = 0.0;
  std::size_t straggler_n = 0;

  for (int dop : options_.dops) {
    if (dop < 1) return Status::invalid_argument("profiler DoP < 1");
    // Average step times across repeats before fitting.
    std::vector<double> acc(n_steps, 0.0);
    for (int r = 0; r < options_.repeats; ++r) {
      const StepObservation obs = runner_(s, dop);
      if (obs.step_times.size() != n_steps) {
        return Status::internal("runner returned wrong step count for stage " + stage.name());
      }
      for (std::size_t k = 0; k < n_steps; ++k) acc[k] += obs.step_times[k];
      straggler_sum += obs.straggler_scale;
      ++straggler_n;
    }
    for (std::size_t k = 0; k < n_steps; ++k) {
      samples[k].push_back({dop, acc[k] / static_cast<double>(options_.repeats)});
    }
  }

  StageFit fit;
  fit.stage = s;
  fit.step_fits.reserve(n_steps);
  for (std::size_t k = 0; k < n_steps; ++k) {
    DITTO_ASSIGN_OR_RETURN(FitResult fr, fit_step_model(samples[k]));
    fit.step_fits.push_back(fr);
  }
  fit.straggler_scale = straggler_n ? straggler_sum / static_cast<double>(straggler_n) : 1.0;
  return fit;
}

Result<ProfileReport> Profiler::profile_all() {
  ProfileReport report;
  report.fits.reserve(dag_->num_stages());

  // Phase 1: gather observations (the expensive part — actual runs).
  Stopwatch profiling_clock;
  std::vector<std::vector<std::vector<ProfileSample>>> all_samples(dag_->num_stages());
  std::vector<double> straggler(dag_->num_stages(), 1.0);
  for (StageId s = 0; s < dag_->num_stages(); ++s) {
    const Stage& stage = dag_->stage(s);
    const std::size_t n_steps = stage.steps().size();
    if (n_steps == 0) return Status::failed_precondition("stage has no steps: " + stage.name());
    all_samples[s].resize(n_steps);
    double ssum = 0.0;
    std::size_t sn = 0;
    for (int dop : options_.dops) {
      std::vector<double> acc(n_steps, 0.0);
      for (int r = 0; r < options_.repeats; ++r) {
        const StepObservation obs = runner_(s, dop);
        if (obs.step_times.size() != n_steps) {
          return Status::internal("runner returned wrong step count for stage " + stage.name());
        }
        for (std::size_t k = 0; k < n_steps; ++k) acc[k] += obs.step_times[k];
        ssum += obs.straggler_scale;
        ++sn;
      }
      for (std::size_t k = 0; k < n_steps; ++k) {
        all_samples[s][k].push_back({dop, acc[k] / static_cast<double>(options_.repeats)});
      }
    }
    straggler[s] = sn ? ssum / static_cast<double>(sn) : 1.0;
  }
  report.profiling_seconds = profiling_clock.elapsed_seconds();

  // Phase 2: least-squares fitting — this is what Table 2 times.
  Stopwatch fit_clock;
  for (StageId s = 0; s < dag_->num_stages(); ++s) {
    StageFit fit;
    fit.stage = s;
    fit.straggler_scale = straggler[s];
    const std::size_t n_steps = dag_->stage(s).steps().size();
    for (std::size_t k = 0; k < n_steps; ++k) {
      DITTO_ASSIGN_OR_RETURN(FitResult fr, fit_step_model(all_samples[s][k]));
      fit.step_fits.push_back(fr);
    }
    // Write the fitted model back into the DAG, including the observed
    // straggler scale (paper §4.1: the scaling factor is "dynamically
    // tuned according to the profiled job history").
    for (std::size_t k = 0; k < n_steps; ++k) {
      Step& step = dag_->stage(s).steps()[k];
      step.alpha = fit.step_fits[k].model.alpha;
      step.beta = fit.step_fits[k].model.beta;
    }
    dag_->stage(s).set_straggler_scale(fit.straggler_scale);
    report.fits.push_back(std::move(fit));
  }
  report.model_build_seconds = fit_clock.elapsed_seconds();
  return report;
}

}  // namespace ditto
