// The step-based execution time model (paper §4.1, Eq. 1–2).
//
// Each step of a stage runs in  t(d) = alpha / d + beta  where d is the
// stage's degree of parallelism: alpha/d is the parallelized portion and
// beta the inherent per-task overhead. A stage's time is the sum of its
// steps' times, so it also has the form  alpha_s / d + beta_s.
#pragma once

#include <algorithm>
#include <cassert>

namespace ditto {

struct StepModel {
  double alpha = 0.0;
  double beta = 0.0;

  /// Predicted step time at DoP `d` (d >= 1).
  double eval(int d) const {
    assert(d >= 1);
    return alpha / static_cast<double>(d) + beta;
  }

  StepModel operator+(const StepModel& o) const { return {alpha + o.alpha, beta + o.beta}; }
  StepModel& operator+=(const StepModel& o) {
    alpha += o.alpha;
    beta += o.beta;
    return *this;
  }
};

/// Merged "virtual stage" parameters from Algorithm 1:
///   intra-path (parent-child):  alpha' = (sqrt(ai) + sqrt(aj))^2,  beta' = bi + bj
///   inter-path (siblings):      alpha' = ai + aj,                  beta' = max(bi, bj)
StepModel merge_intra_path(const StepModel& a, const StepModel& b);
StepModel merge_inter_path(const StepModel& a, const StepModel& b);

}  // namespace ditto
