#include "timemodel/step_model.h"

#include <cmath>

namespace ditto {

StepModel merge_intra_path(const StepModel& a, const StepModel& b) {
  const double s = std::sqrt(a.alpha) + std::sqrt(b.alpha);
  return {s * s, a.beta + b.beta};
}

StepModel merge_inter_path(const StepModel& a, const StepModel& b) {
  return {a.alpha + b.alpha, std::max(a.beta, b.beta)};
}

}  // namespace ditto
