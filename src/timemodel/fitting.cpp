#include "timemodel/fitting.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/stats.h"
#include "obs/profile_store.h"

namespace ditto {

Result<FitResult> fit_step_model(const std::vector<ProfileSample>& samples) {
  if (samples.size() < 2) {
    return Status::invalid_argument("fit_step_model needs at least 2 samples");
  }
  std::set<int> dops;
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const ProfileSample& s : samples) {
    if (s.dop < 1) return Status::invalid_argument("sample with DoP < 1");
    dops.insert(s.dop);
    x.push_back(1.0 / static_cast<double>(s.dop));
    y.push_back(s.time);
  }
  if (dops.size() < 2) {
    return Status::invalid_argument("samples must cover at least 2 distinct DoPs");
  }
  const LinearFit lf = least_squares(x, y);
  FitResult out;
  out.model.alpha = std::max(0.0, lf.slope);
  out.model.beta = std::max(0.0, lf.intercept);
  out.r2 = lf.r2;
  return out;
}

double relative_error(const StepModel& model, int dop, double actual) {
  if (actual <= 0.0) return 0.0;
  return std::abs(model.eval(dop) - actual) / actual;
}

namespace {

/// Fits one component from (dop, value) observations. A single
/// distinct DoP pins the model at the operating point: beta = the
/// observed value there (count-weighted mean), alpha = 0.
StepModel fit_component(const std::vector<obs::StageProfile>& history,
                        double (*value_of)(const obs::StageProfile&), bool* pinned,
                        double* r2) {
  std::set<int> dops;
  for (const obs::StageProfile& p : history) dops.insert(p.dop);
  if (dops.size() >= 2) {
    std::vector<ProfileSample> samples;
    samples.reserve(history.size());
    for (const obs::StageProfile& p : history) {
      samples.push_back({p.dop, value_of(p)});
    }
    Result<FitResult> fit = fit_step_model(samples);
    if (fit.ok()) {
      if (pinned) *pinned = false;
      if (r2) *r2 = fit.value().r2;
      return fit.value().model;
    }
  }
  double weight = 0.0, sum = 0.0;
  for (const obs::StageProfile& p : history) {
    const double w = static_cast<double>(std::max<std::size_t>(p.count, 1));
    weight += w;
    sum += w * value_of(p);
  }
  if (pinned) *pinned = true;
  if (r2) *r2 = 0.0;
  return {0.0, weight > 0.0 ? sum / weight : 0.0};
}

/// Rescales the steps selected by `want` so their summed (alpha, beta)
/// equals `target`; zero-valued groups split the target evenly.
void apply_component(Stage& stage, bool (*want)(const Step&), const StepModel& target) {
  double old_alpha = 0.0, old_beta = 0.0;
  std::size_t n = 0;
  for (const Step& s : stage.steps()) {
    if (!want(s)) continue;
    ++n;
    old_alpha += s.alpha;
    old_beta += s.beta;
  }
  if (n == 0) {
    // No step of this kind (e.g. a source stage with no reads): fold
    // the component into a fresh compute step so the total survives.
    if (target.alpha > 0.0 || target.beta > 0.0) {
      Step extra;
      extra.kind = StepKind::kCompute;
      extra.alpha = target.alpha;
      extra.beta = target.beta;
      stage.add_step(extra);
    }
    return;
  }
  for (Step& s : stage.steps()) {
    if (!want(s)) continue;
    s.alpha = old_alpha > 0.0 ? s.alpha * target.alpha / old_alpha
                              : target.alpha / static_cast<double>(n);
    s.beta = old_beta > 0.0 ? s.beta * target.beta / old_beta
                            : target.beta / static_cast<double>(n);
  }
}

bool is_compute_step(const Step& s) { return s.kind == StepKind::kCompute; }
bool is_transport_step(const Step& s) {
  return !s.pipelined && (s.kind == StepKind::kRead || s.kind == StepKind::kWrite);
}

}  // namespace

Result<RefitReport> refit_from_profiles(const obs::StageProfileStore& store,
                                        std::uint64_t fingerprint, JobDag& dag) {
  const std::vector<obs::StageProfile> profiles = store.profiles_for(fingerprint);
  if (profiles.empty()) {
    return Status::not_found("no profiles recorded for fingerprint " +
                             obs::fingerprint_hex(fingerprint));
  }
  std::map<StageId, std::vector<obs::StageProfile>> by_stage;
  for (const obs::StageProfile& p : profiles) {
    if (p.stage < dag.num_stages()) by_stage[p.stage].push_back(p);
  }
  if (by_stage.empty()) {
    return Status::invalid_argument("profiles for fingerprint " +
                                    obs::fingerprint_hex(fingerprint) +
                                    " reference no stage of this DAG");
  }

  RefitReport report;
  report.fingerprint = fingerprint;
  for (auto& [stage_id, history] : by_stage) {
    StageRefit refit;
    refit.stage = stage_id;
    std::set<int> dops;
    for (const obs::StageProfile& p : history) {
      dops.insert(p.dop);
      refit.tasks += p.count;
    }
    refit.distinct_dops = dops.size();
    refit.total = fit_component(
        history, [](const obs::StageProfile& p) { return p.ewma_task; }, &refit.pinned,
        &refit.r2);
    refit.compute = fit_component(
        history, [](const obs::StageProfile& p) { return p.ewma_compute; }, nullptr,
        nullptr);
    refit.transport = fit_component(
        history, [](const obs::StageProfile& p) { return p.ewma_transport; }, nullptr,
        nullptr);

    Stage& stage = dag.stage(stage_id);
    apply_component(stage, is_compute_step, refit.compute);
    apply_component(stage, is_transport_step, refit.transport);
    report.stages.push_back(std::move(refit));
  }
  return report;
}

}  // namespace ditto
