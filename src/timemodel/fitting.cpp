#include "timemodel/fitting.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/stats.h"

namespace ditto {

Result<FitResult> fit_step_model(const std::vector<ProfileSample>& samples) {
  if (samples.size() < 2) {
    return Status::invalid_argument("fit_step_model needs at least 2 samples");
  }
  std::set<int> dops;
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const ProfileSample& s : samples) {
    if (s.dop < 1) return Status::invalid_argument("sample with DoP < 1");
    dops.insert(s.dop);
    x.push_back(1.0 / static_cast<double>(s.dop));
    y.push_back(s.time);
  }
  if (dops.size() < 2) {
    return Status::invalid_argument("samples must cover at least 2 distinct DoPs");
  }
  const LinearFit lf = least_squares(x, y);
  FitResult out;
  out.model.alpha = std::max(0.0, lf.slope);
  out.model.beta = std::max(0.0, lf.intercept);
  out.r2 = lf.r2;
  return out;
}

double relative_error(const StepModel& model, int dop, double actual) {
  if (actual <= 0.0) return 0.0;
  return std::abs(model.eval(dop) - actual) / actual;
}

}  // namespace ditto
