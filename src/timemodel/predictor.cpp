#include "timemodel/predictor.h"

#include <cassert>

namespace ditto {

ColocatedFn nothing_colocated() {
  return [](StageId, StageId) { return false; };
}

ColocatedFn everything_colocated() {
  return [](StageId, StageId) { return true; };
}

bool ExecTimePredictor::step_is_zero_copy(StageId s, const Step& step,
                                          const ColocatedFn& colocated) const {
  if (step.kind == StepKind::kCompute) return false;
  if (step.dep == kNoStage) return false;  // external storage IO is never free
  if (step.kind == StepKind::kRead) return colocated(step.dep, s);
  return colocated(s, step.dep);  // write step feeding a downstream stage
}

StepModel ExecTimePredictor::stage_model(StageId s, const ColocatedFn& colocated) const {
  StepModel m;
  for (const Step& step : dag_->stage(s).steps()) {
    // Overlapped with the producer (paper §4.5) — but only when the
    // runtime actually pipelines; see set_honor_pipelining.
    if (step.pipelined && honor_pipelining_) continue;
    if (step_is_zero_copy(s, step, colocated)) continue;  // alpha = beta = 0
    m.alpha += step.alpha;
    m.beta += step.beta;
  }
  m.alpha *= straggler_factor(s);
  return m;
}

double ExecTimePredictor::stage_time(StageId s, int dop, const ColocatedFn& colocated) const {
  assert(dop >= 1);
  return stage_model(s, colocated).eval(dop);
}

double ExecTimePredictor::kind_time(StageId s, int dop, StepKind kind,
                                    const ColocatedFn& colocated) const {
  assert(dop >= 1);
  StepModel m;
  for (const Step& step : dag_->stage(s).steps()) {
    if (step.kind != kind || (step.pipelined && honor_pipelining_)) continue;
    if (step_is_zero_copy(s, step, colocated)) continue;
    m.alpha += step.alpha;
    m.beta += step.beta;
  }
  m.alpha *= straggler_factor(s);
  return m.eval(dop);
}

double ExecTimePredictor::read_time(StageId s, int dop, const ColocatedFn& colocated) const {
  return kind_time(s, dop, StepKind::kRead, colocated);
}

double ExecTimePredictor::compute_time(StageId s, int dop) const {
  return kind_time(s, dop, StepKind::kCompute, nothing_colocated());
}

double ExecTimePredictor::write_time(StageId s, int dop, const ColocatedFn& colocated) const {
  return kind_time(s, dop, StepKind::kWrite, colocated);
}

void ExecTimePredictor::set_straggler_factor(StageId s, double factor) {
  assert(factor > 0.0);
  if (straggler_.size() <= s) straggler_.resize(s + 1, 0.0);  // 0 = unset
  straggler_[s] = factor;
}

double ExecTimePredictor::straggler_factor(StageId s) const {
  // Explicit overrides win; otherwise use the profiler-recorded scale
  // carried on the stage itself.
  if (s < straggler_.size() && straggler_[s] > 0.0) return straggler_[s];
  return dag_->stage(s).straggler_scale();
}

double ExecTimePredictor::stage_cost(StageId s, int dop, const ColocatedFn& colocated) const {
  return resource_usage(s, dop) * stage_time(s, dop, colocated);
}

double ExecTimePredictor::resource_usage(StageId s, int dop) const {
  const Stage& st = dag_->stage(s);
  return st.rho() + st.sigma() * static_cast<double>(dop);
}

double ExecTimePredictor::edge_write_time(StageId src, StageId dst, int dop_src) const {
  StepModel m;
  for (const Step& step : dag_->stage(src).steps()) {
    if (step.kind == StepKind::kWrite && step.dep == dst && !step.pipelined) {
      m += StepModel{step.alpha, step.beta};
    }
  }
  m.alpha *= straggler_factor(src);
  return m.eval(std::max(dop_src, 1));
}

double ExecTimePredictor::edge_read_time(StageId src, StageId dst, int dop_dst) const {
  StepModel m;
  for (const Step& step : dag_->stage(dst).steps()) {
    if (step.kind == StepKind::kRead && step.dep == src && !step.pipelined) {
      m += StepModel{step.alpha, step.beta};
    }
  }
  m.alpha *= straggler_factor(dst);
  return m.eval(std::max(dop_dst, 1));
}

double ExecTimePredictor::edge_io_time(StageId src, StageId dst, int dop_src,
                                       int dop_dst) const {
  return edge_write_time(src, dst, dop_src) + edge_read_time(src, dst, dop_dst);
}

}  // namespace ditto
