// Least-squares fitting of the step time model from profiled samples.
//
// Given observations (d_i, t_i) for one step, fit t = alpha * (1/d) + beta
// by ordinary least squares with x = 1/d (paper §6.5: five DoPs per
// stage, least-squares method). Negative fitted parameters are clamped
// to zero: both alpha and beta are physically non-negative.
#pragma once

#include <vector>

#include "common/status.h"
#include "timemodel/step_model.h"

namespace ditto {

struct ProfileSample {
  int dop = 1;
  double time = 0.0;  ///< measured average task time at this DoP
};

struct FitResult {
  StepModel model;
  double r2 = 0.0;  ///< goodness of fit on the (1/d, t) regression
};

/// Fits a StepModel; needs >= 2 samples at distinct DoPs.
Result<FitResult> fit_step_model(const std::vector<ProfileSample>& samples);

/// Relative prediction error |pred - actual| / actual at one point.
double relative_error(const StepModel& model, int dop, double actual);

}  // namespace ditto
