// Least-squares fitting of the step time model from profiled samples.
//
// Given observations (d_i, t_i) for one step, fit t = alpha * (1/d) + beta
// by ordinary least squares with x = 1/d (paper §6.5: five DoPs per
// stage, least-squares method). Negative fitted parameters are clamped
// to zero: both alpha and beta are physically non-negative.
//
// refit_from_profiles closes the loop for recurring jobs: it pulls the
// durable per-(stage, DoP) history out of an obs::StageProfileStore and
// rewrites a JobDag's step parameters so the next submission's
// predictions track what the engine actually measured.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dag/job_dag.h"
#include "timemodel/step_model.h"

namespace ditto::obs {
class StageProfileStore;
}  // namespace ditto::obs

namespace ditto {

struct ProfileSample {
  int dop = 1;
  double time = 0.0;  ///< measured average task time at this DoP
};

struct FitResult {
  StepModel model;
  double r2 = 0.0;  ///< goodness of fit on the (1/d, t) regression
};

/// Fits a StepModel; needs >= 2 samples at distinct DoPs.
Result<FitResult> fit_step_model(const std::vector<ProfileSample>& samples);

/// Relative prediction error |pred - actual| / actual at one point.
double relative_error(const StepModel& model, int dop, double actual);

/// Outcome of recalibrating one stage from profiled history.
struct StageRefit {
  StageId stage = kNoStage;
  StepModel total;      ///< fitted end-to-end stage-time model
  StepModel compute;    ///< fitted compute component
  StepModel transport;  ///< fitted gather+publish component
  double r2 = 0.0;      ///< goodness of the total fit (pinned -> 0)
  std::size_t distinct_dops = 0;
  std::size_t tasks = 0;  ///< observations backing the fit
  bool pinned = false;    ///< single-DoP history: model pinned at the
                          ///< operating point (alpha = 0, beta = t)
};

struct RefitReport {
  std::uint64_t fingerprint = 0;
  std::vector<StageRefit> stages;
};

/// Recalibrates `dag`'s step models from the history stored for
/// `fingerprint`: compute steps are rescaled to the fitted compute
/// component, read/write steps to the fitted transport component, so
/// ExecTimePredictor over the rewritten DAG reproduces the observed
/// times. With history at only one DoP the fit degenerates to a pin
/// (beta = observed mean, alpha = 0) — exact at the operating DoP,
/// conservative elsewhere. Stages with no recorded history keep their
/// hand-seeded parameters. Fails if the store holds nothing for the
/// fingerprint.
Result<RefitReport> refit_from_profiles(const obs::StageProfileStore& store,
                                        std::uint64_t fingerprint, JobDag& dag);

}  // namespace ditto
