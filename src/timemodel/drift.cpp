#include "timemodel/drift.h"

#include <algorithm>

namespace ditto {

DriftSummary summarize_drift(const std::vector<StageDriftSample>& samples) {
  DriftSummary out;
  if (samples.empty()) return out;
  double sum = 0.0;
  for (const StageDriftSample& s : samples) {
    const double e = s.rel_error();
    sum += e;
    out.max_abs_rel_error = std::max(out.max_abs_rel_error, e);
  }
  out.count = samples.size();
  out.mean_abs_rel_error = sum / static_cast<double>(samples.size());
  return out;
}

}  // namespace ditto
