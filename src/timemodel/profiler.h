// Offline profiler: builds the execution time model from job history
// (paper §3 "Execution time predictor", §6.5 Table 2).
//
// For each stage the profiler requests runs at a small set of DoPs
// (five by default, like the paper) from a StageRunner — in this repo
// that is either the discrete-event simulator or the real execution
// engine — and least-squares fits alpha/beta for every step. Fitted
// parameters are written back into the JobDag's steps so the scheduler
// and predictor can use them.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "dag/job_dag.h"
#include "timemodel/fitting.h"

namespace ditto {

/// One profiled execution of a stage at a given DoP.
struct StepObservation {
  /// Average per-task time of each step, aligned with Stage::steps().
  std::vector<double> step_times;
  /// max task time / mean task time across the stage's tasks; feeds the
  /// straggler scaling factor ("Modeling stragglers").
  double straggler_scale = 1.0;
};

/// Runs stage `s` at DoP `d` and reports measured step times.
using StageRunner = std::function<StepObservation(StageId s, int d)>;

struct ProfilerOptions {
  /// DoPs to sample; the paper profiles five per stage.
  std::vector<int> dops = {4, 8, 16, 32, 64};
  /// Repeats per DoP (observations are averaged before fitting).
  int repeats = 1;
};

struct StageFit {
  StageId stage = kNoStage;
  std::vector<FitResult> step_fits;  // aligned with Stage::steps()
  double straggler_scale = 1.0;      // mean across observations
};

struct ProfileReport {
  std::vector<StageFit> fits;
  double model_build_seconds = 0.0;  ///< wall time of the fitting pass only (Table 2)
  double profiling_seconds = 0.0;    ///< wall time spent in the StageRunner
};

class Profiler {
 public:
  Profiler(JobDag& dag, StageRunner runner, ProfilerOptions options = {})
      : dag_(&dag), runner_(std::move(runner)), options_(std::move(options)) {}

  /// Profiles every stage, fits all step models, and writes the fitted
  /// alpha/beta back into the DAG's steps.
  Result<ProfileReport> profile_all();

  /// Profiles a single stage (no write-back).
  Result<StageFit> profile_stage(StageId s);

 private:
  JobDag* dag_;
  StageRunner runner_;
  ProfilerOptions options_;
};

}  // namespace ditto
