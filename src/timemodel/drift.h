// Predicted-vs-observed drift: how far the step time model is from
// what the engine actually measured (paper §6.5 — the check side of
// the profiling loop for recurring jobs).
//
// A StageDriftSample joins one stage's predicted time (from
// ExecTimePredictor under the placement used) with the observed wall
// time of its wave. summarize_drift reduces a set of samples to the
// mean / max absolute relative error that the ExecutionReport and
// bench_fig11_timemodel print, and that the `timemodel.drift`
// histogram feeds from.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "dag/types.h"

namespace ditto {

/// One stage's prediction joined against its observation.
struct StageDriftSample {
  StageId stage = kNoStage;
  int dop = 0;
  double predicted_seconds = 0.0;
  double observed_seconds = 0.0;

  /// |predicted - observed| / observed; 0 when nothing was observed.
  double rel_error() const {
    if (!(observed_seconds > 0.0)) return 0.0;
    return std::abs(predicted_seconds - observed_seconds) / observed_seconds;
  }
};

struct DriftSummary {
  double mean_abs_rel_error = 0.0;
  double max_abs_rel_error = 0.0;
  std::size_t count = 0;
};

/// Mean / max of |rel error| over the samples (empty set -> zeros).
DriftSummary summarize_drift(const std::vector<StageDriftSample>& samples);

}  // namespace ditto
