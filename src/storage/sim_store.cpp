#include "storage/sim_store.h"

namespace ditto::storage {

StorageModel s3_model() {
  StorageModel m;
  m.request_latency = 0.030;          // ~30 ms first byte
  m.bandwidth_bytes_per_s = 90e6;     // ~90 MB/s per connection
  m.cost_per_gb_second = 8.9e-9;      // $0.023/GB-month — negligible, per paper §6
  m.capacity = 0;                     // unbounded
  return m;
}

StorageModel redis_model() {
  StorageModel m;
  m.request_latency = 0.0003;         // ~300 us
  m.bandwidth_bytes_per_s = 1.25e9;   // 10 GbE node
  m.cost_per_gb_second = 1.6e-5;      // ElastiCache r5 memory pricing
  m.capacity = 228_GB;                // 2x cache.r5.4xlarge (114 GB each)
  return m;
}

StorageModel instant_model() { return StorageModel{}; }

std::unique_ptr<MemStore> make_s3_sim() {
  return std::make_unique<MemStore>(s3_model(), "s3");
}

std::unique_ptr<MemStore> make_redis_sim() {
  return std::make_unique<MemStore>(redis_model(), "redis");
}

std::unique_ptr<MemStore> make_instant_store() {
  return std::make_unique<MemStore>(instant_model(), "instant");
}

}  // namespace ditto::storage
