// Tiered external storage: fast in-memory store for small objects,
// object storage for everything else.
//
// The paper's §6.3 notes that "Redis is typically used to speed up
// access to small intermediate data and has limited capacity"; prior
// serverless analytics systems (Pu et al., NSDI'19 [45]) explicitly
// combine a small fast store with S3. TieredStore reproduces that
// pattern: objects at or below `fast_threshold` go to the fast tier
// (falling back to the slow tier when the fast tier is full), larger
// objects go straight to the slow tier. Reads check the fast tier
// first.
#pragma once

#include <memory>

#include "storage/mem_store.h"
#include "storage/sim_store.h"

namespace ditto::storage {

class TieredStore : public ObjectStore {
 public:
  /// Takes ownership of both tiers.
  TieredStore(std::unique_ptr<MemStore> fast, std::unique_ptr<MemStore> slow,
              Bytes fast_threshold)
      : fast_(std::move(fast)), slow_(std::move(slow)), threshold_(fast_threshold) {}

  /// The paper-shaped default: Redis + S3, 64 MB threshold.
  static std::unique_ptr<TieredStore> redis_over_s3(Bytes fast_threshold = 64_MB);

  const char* kind() const override { return "tiered"; }
  /// The slow tier's model (conservative; per-object timing should use
  /// model_for()).
  const StorageModel& model() const override { return slow_->model(); }

  /// Model that would serve an object of `n` bytes (used by physics).
  const StorageModel& model_for(Bytes n) const;

  Status put(const std::string& key, std::string_view value) override;
  Result<std::string> get(const std::string& key) const override;
  bool contains(const std::string& key) const override;
  Status remove(const std::string& key) override;
  std::vector<std::string> list(const std::string& prefix) const override;

  Bytes used_bytes() const override;
  StoreStats stats() const override;

  const MemStore& fast_tier() const { return *fast_; }
  const MemStore& slow_tier() const { return *slow_; }
  Bytes fast_threshold() const { return threshold_; }

 private:
  std::unique_ptr<MemStore> fast_;
  std::unique_ptr<MemStore> slow_;
  const Bytes threshold_;
};

/// Direct server-to-server transfer model (paper §7: "Ditto's design is
/// suitable for ... direct communication over network", e.g. Knative):
/// ~1 ms connection overhead, 10 GbE bandwidth, nothing persisted so no
/// storage cost, unbounded.
StorageModel direct_network_model();

}  // namespace ditto::storage
