#include "storage/tiered_store.h"

namespace ditto::storage {

std::unique_ptr<TieredStore> TieredStore::redis_over_s3(Bytes fast_threshold) {
  return std::make_unique<TieredStore>(make_redis_sim(), make_s3_sim(), fast_threshold);
}

const StorageModel& TieredStore::model_for(Bytes n) const {
  return n <= threshold_ ? fast_->model() : slow_->model();
}

Status TieredStore::put(const std::string& key, std::string_view value) {
  if (value.size() <= threshold_) {
    const Status st = fast_->put(key, value);
    if (st.is_ok()) {
      // A stale copy in the slow tier must not shadow this write.
      (void)slow_->remove(key);
      return st;
    }
    if (st.code() != StatusCode::kResourceExhausted) return st;
    // Fast tier full: spill to the slow tier.
  }
  const Status st = slow_->put(key, value);
  if (st.is_ok()) (void)fast_->remove(key);
  return st;
}

Result<std::string> TieredStore::get(const std::string& key) const {
  auto fast = fast_->get(key);
  if (fast.ok()) return fast;
  return slow_->get(key);
}

bool TieredStore::contains(const std::string& key) const {
  return fast_->contains(key) || slow_->contains(key);
}

Status TieredStore::remove(const std::string& key) {
  const Status f = fast_->remove(key);
  const Status s = slow_->remove(key);
  if (f.is_ok() || s.is_ok()) return Status::ok();
  return Status::not_found("key not found: " + key);
}

std::vector<std::string> TieredStore::list(const std::string& prefix) const {
  std::vector<std::string> out = fast_->list(prefix);
  for (std::string& k : slow_->list(prefix)) out.push_back(std::move(k));
  return out;
}

Bytes TieredStore::used_bytes() const { return fast_->used_bytes() + slow_->used_bytes(); }

StoreStats TieredStore::stats() const {
  const StoreStats a = fast_->stats();
  const StoreStats b = slow_->stats();
  StoreStats out;
  out.puts = a.puts + b.puts;
  out.gets = a.gets + b.gets;
  out.misses = b.misses;  // fast-tier misses that hit the slow tier are not misses
  out.bytes_written = a.bytes_written + b.bytes_written;
  out.bytes_read = a.bytes_read + b.bytes_read;
  return out;
}

StorageModel direct_network_model() {
  StorageModel m;
  m.request_latency = 0.001;         // connection setup
  m.bandwidth_bytes_per_s = 1.25e9;  // 10 GbE
  m.cost_per_gb_second = 0.0;        // nothing persisted
  m.capacity = 0;
  return m;
}

}  // namespace ditto::storage
