#include "storage/file_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace ditto::storage {

namespace fs = std::filesystem;

FileStore::FileStore(std::string root, StorageModel model)
    : root_(std::move(root)), model_(model) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  // A bad root surfaces as a Status on the first put/get.
}

Result<std::string> FileStore::path_of(const std::string& key) const {
  if (key.empty()) return Status::invalid_argument("file store key is empty");
  if (key.front() == '/') return Status::invalid_argument("file store key is absolute: " + key);
  std::istringstream segs(key);
  std::string seg;
  while (std::getline(segs, seg, '/')) {
    if (seg.empty() || seg == "." || seg == "..") {
      return Status::invalid_argument("file store key has bad segment: " + key);
    }
  }
  return root_ + "/" + key;
}

Status FileStore::put(const std::string& key, std::string_view value) {
  DITTO_ASSIGN_OR_RETURN(const std::string path, path_of(key));
  {
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
      return Status::unavailable("cannot create directories for " + key + ": " + ec.message());
    }
  }
  // Truncate-then-stream on purpose: a crash mid-write leaves a torn
  // prefix, the failure mode journal replay must tolerate.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::unavailable("cannot open " + key + " for writing");
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
  out.flush();
  if (!out) return Status::unavailable("short write to " + key);
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.puts;
  stats_.bytes_written += value.size();
  return Status::ok();
}

Result<std::string> FileStore::get(const std::string& key) const {
  DITTO_ASSIGN_OR_RETURN(const std::string path, path_of(key));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.gets;
    ++stats_.misses;
    return Status::not_found("no object '" + key + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string value = std::move(buf).str();
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.gets;
  stats_.bytes_read += value.size();
  return value;
}

bool FileStore::contains(const std::string& key) const {
  const auto path = path_of(key);
  if (!path.ok()) return false;
  std::error_code ec;
  return fs::is_regular_file(*path, ec);
}

Status FileStore::remove(const std::string& key) {
  DITTO_ASSIGN_OR_RETURN(const std::string path, path_of(key));
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) return Status::not_found("no object '" + key + "'");
  return Status::ok();
}

std::vector<std::string> FileStore::list(const std::string& prefix) const {
  std::vector<std::string> keys;
  std::error_code ec;
  const fs::path root(root_);
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string key = fs::relative(it->path(), root, ec).generic_string();
    if (ec) continue;
    if (key.compare(0, prefix.size(), prefix) == 0) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Bytes FileStore::used_bytes() const {
  Bytes total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec)) total += it->file_size(ec);
  }
  return total;
}

StoreStats FileStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace ditto::storage
