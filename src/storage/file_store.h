// FileStore: directory-backed ObjectStore — durable state that
// survives process death.
//
// The service tier's crash story (journal + recovered sink outputs)
// needs an object store whose contents outlive the process, which the
// in-memory stores cannot provide. Keys map to files under a root
// directory (a '/' in the key becomes a subdirectory), so `journal/log`
// and `sinks/<label>/<stage>` land where a human can inspect them.
//
// Writes are deliberately NOT atomic (no write-to-temp + rename): a
// put truncates the target file and streams the new value, so a
// SIGKILL mid-put leaves a torn prefix on disk — exactly the failure
// the journal's replay is built to tolerate (truncated tail = crash
// mid-append). Making puts atomic here would hide the failure mode the
// chaos-restart harness exists to exercise.
//
// Thread-safe: a single mutex serializes metadata; values stream
// outside the byte-counting bookkeeping. Intended for journal/sink
// traffic (tens of objects), not the exchange hot path.
#pragma once

#include <mutex>
#include <string>

#include "storage/object_store.h"

namespace ditto::storage {

class FileStore final : public ObjectStore {
 public:
  /// `root` is created (recursively) if missing. The model is used only
  /// for simulator pricing; FileStore never sleeps.
  explicit FileStore(std::string root, StorageModel model = {});

  const char* kind() const override { return "file"; }
  const StorageModel& model() const override { return model_; }

  Status put(const std::string& key, std::string_view value) override;
  Result<std::string> get(const std::string& key) const override;
  bool contains(const std::string& key) const override;
  Status remove(const std::string& key) override;
  std::vector<std::string> list(const std::string& prefix) const override;

  Bytes used_bytes() const override;
  StoreStats stats() const override;

  const std::string& root() const { return root_; }

 private:
  /// Root-relative filesystem path for `key`; INVALID_ARGUMENT when the
  /// key would escape the root (empty, absolute, or '..' segments).
  Result<std::string> path_of(const std::string& key) const;

  std::string root_;
  StorageModel model_;
  mutable std::mutex mu_;
  mutable StoreStats stats_;
};

}  // namespace ditto::storage
