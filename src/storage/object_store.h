// External storage abstraction (paper §3: "an external storage service
// to provide data exchange between functions").
//
// Ditto's data plane moves intermediate data either through zero-copy
// shared memory (same server) or through an ObjectStore (cross-server).
// Two concrete stores mirror the paper's testbed: an S3-like object
// store (high per-request latency, per-connection bandwidth, ~free) and
// a Redis-like in-memory store (sub-ms latency, bounded capacity,
// memory-priced). Both are fully functional key-value stores; their
// timing model feeds the simulator and can optionally be applied as
// real delays in engine mode.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace ditto::storage {

/// Latency/bandwidth/pricing parameters of a storage backend.
struct StorageModel {
  Seconds request_latency = 0.0;        ///< fixed per-request overhead
  double bandwidth_bytes_per_s = 0.0;   ///< per-connection throughput (0 = infinite)
  double cost_per_gb_second = 0.0;      ///< persistence price (decimal GB)
  Bytes capacity = 0;                   ///< 0 = unbounded

  /// Modeled wall time for transferring `n` bytes in one request.
  ///
  /// Composition with fault injection: injected latency (FlakyStore,
  /// FaultSpec::storage_delay) is ADDED on top of this modeled time,
  /// once per attempt — total = transfer_time(n) + injected_delay.
  /// The two never multiply, and a retried op pays the modeled time
  /// again per attempt (it is a new request), plus the retry backoff.
  /// Simulator and engine follow the same rule so their timings agree.
  Seconds transfer_time(Bytes n) const {
    Seconds t = request_latency;
    if (bandwidth_bytes_per_s > 0.0) t += static_cast<double>(n) / bandwidth_bytes_per_s;
    return t;
  }

  /// Cost of keeping `n` bytes resident for `dur` seconds.
  double persistence_cost(Bytes n, Seconds dur) const {
    return cost_per_gb_second * (static_cast<double>(n) / 1e9) * dur;
  }
};

/// Price of a store's persistence relative to function/DRAM memory
/// (normalized against ElastiCache-class memory at 1.6e-5 $/GB-s).
/// Redis-class stores come out ~1.0; S3 rounds to ~0 (the paper
/// ignores S3 persistence cost for this reason).
inline double relative_to_memory_price(const StorageModel& m) {
  constexpr double kMemoryGbSecondPrice = 1.6e-5;
  return m.cost_per_gb_second / kMemoryGbSecondPrice;
}

/// Aggregate per-store operation statistics (the runtime monitor reads
/// these; tests assert on them).
struct StoreStats {
  std::size_t puts = 0;      ///< successful puts only
  std::size_t gets = 0;
  std::size_t misses = 0;
  std::size_t rejected = 0;  ///< puts refused for capacity
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  virtual const char* kind() const = 0;
  virtual const StorageModel& model() const = 0;

  /// Stores a value (overwrites). Fails with RESOURCE_EXHAUSTED when a
  /// bounded store would exceed capacity.
  virtual Status put(const std::string& key, std::string_view value) = 0;

  /// Fetches a copy of the value; NOT_FOUND if missing.
  virtual Result<std::string> get(const std::string& key) const = 0;

  virtual bool contains(const std::string& key) const = 0;
  virtual Status remove(const std::string& key) = 0;
  virtual std::vector<std::string> list(const std::string& prefix) const = 0;

  virtual Bytes used_bytes() const = 0;
  virtual StoreStats stats() const = 0;

  /// Modeled times for the simulator (no data movement).
  Seconds put_time(Bytes n) const { return model().transfer_time(n); }
  Seconds get_time(Bytes n) const { return model().transfer_time(n); }
};

}  // namespace ditto::storage
