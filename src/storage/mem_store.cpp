#include "storage/mem_store.h"

#include <chrono>
#include <thread>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ditto::storage {

namespace {

/// Per-backend request accounting: count, bytes, real latency, and an
/// in-flight gauge approximating request concurrency. The cumulative
/// byte counters also feed a trace counter track per store kind.
class RequestScope {
 public:
  RequestScope(const char* kind, const char* op)
      : mx_(obs::MetricsRegistry::global()), enabled_(mx_.enabled()), kind_(kind), op_(op) {
    if (!enabled_) return;
    mx_.gauge("storage.inflight_requests", {{"kind", kind_}}).add(1.0);
  }

  ~RequestScope() {
    if (!enabled_) return;
    const obs::MetricLabels labels{{"kind", kind_}, {"op", op_}};
    mx_.counter("storage.requests", labels).add();
    mx_.histogram("storage.request_seconds", 0.0, 0.1, 50, labels)
        .observe(clock_.elapsed_seconds());
    mx_.gauge("storage.inflight_requests", {{"kind", kind_}}).add(-1.0);
    if (bytes_ > 0) {
      const std::uint64_t total =
          mx_.counter("storage.bytes", labels).add(bytes_);
      obs::TraceCollector& tc = obs::TraceCollector::global();
      if (tc.enabled()) {
        tc.counter("storage", std::string(kind_) + "." + op_ + "_bytes", tc.now_us(),
                   static_cast<double>(total), -1);
      }
    }
    if (miss_) mx_.counter("storage.misses", {{"kind", kind_}}).add();
  }

  void set_bytes(Bytes n) { bytes_ = n; }
  void set_miss() { miss_ = true; }
  bool enabled() const { return enabled_; }

 private:
  obs::MetricsRegistry& mx_;
  const bool enabled_;
  const char* kind_;
  const char* op_;
  Stopwatch clock_;
  Bytes bytes_ = 0;
  bool miss_ = false;
};

}  // namespace

void MemStore::maybe_sleep(Bytes n) const {
  if (delay_scale_ <= 0.0) return;
  const Seconds t = model_.transfer_time(n) * delay_scale_;
  if (t > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(t));
  }
}

Status MemStore::put(const std::string& key, std::string_view value) {
  RequestScope scope(kind(), "put");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key);
    if (model_.capacity > 0) {
      const Bytes prospective =
          used_ + value.size() - (it != data_.end() ? it->second.size() : 0);
      if (prospective > model_.capacity) {
        // A rejected put moves no data: it must not count toward the
        // byte telemetry and pays no modeled transfer delay.
        ++stats_.rejected;
        if (scope.enabled()) {
          obs::MetricsRegistry::global().counter("storage.rejected", {{"kind", kind()}}).add();
        }
        return Status::resource_exhausted(std::string(kind()) + " store capacity exceeded");
      }
    }
    if (it != data_.end()) {
      used_ -= it->second.size();
      it->second.assign(value);
      used_ += it->second.size();
    } else {
      data_.emplace(key, std::string(value));
      used_ += value.size();
    }
    ++stats_.puts;
    stats_.bytes_written += value.size();
  }
  scope.set_bytes(value.size());
  maybe_sleep(value.size());
  return Status::ok();
}

Result<std::string> MemStore::get(const std::string& key) const {
  RequestScope scope(kind(), "get");
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = data_.find(key);
    ++stats_.gets;
    if (it == data_.end()) {
      ++stats_.misses;
      scope.set_miss();
      return Status::not_found("key not found: " + key);
    }
    out = it->second;
    stats_.bytes_read += out.size();
  }
  scope.set_bytes(out.size());
  maybe_sleep(out.size());
  return out;
}

bool MemStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.count(key) != 0;
}

Status MemStore::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = data_.find(key);
  if (it == data_.end()) return Status::not_found("key not found: " + key);
  used_ -= it->second.size();
  data_.erase(it);
  return Status::ok();
}

std::vector<std::string> MemStore::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [k, v] : data_) {
    if (k.rfind(prefix, 0) == 0) out.push_back(k);
  }
  return out;
}

Bytes MemStore::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

StoreStats MemStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MemStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  data_.clear();
  used_ = 0;
}

}  // namespace ditto::storage
