#include "storage/mem_store.h"

#include <chrono>
#include <thread>

namespace ditto::storage {

void MemStore::maybe_sleep(Bytes n) const {
  if (delay_scale_ <= 0.0) return;
  const Seconds t = model_.transfer_time(n) * delay_scale_;
  if (t > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(t));
  }
}

Status MemStore::put(const std::string& key, std::string_view value) {
  maybe_sleep(value.size());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  Bytes delta = value.size();
  if (it != data_.end()) delta = value.size() > it->second.size() ? value.size() - it->second.size() : 0;
  if (model_.capacity > 0) {
    const Bytes prospective =
        used_ + value.size() - (it != data_.end() ? it->second.size() : 0);
    if (prospective > model_.capacity) {
      return Status::resource_exhausted(std::string(kind()) + " store capacity exceeded");
    }
  }
  (void)delta;
  if (it != data_.end()) {
    used_ -= it->second.size();
    it->second.assign(value);
    used_ += it->second.size();
  } else {
    data_.emplace(key, std::string(value));
    used_ += value.size();
  }
  ++stats_.puts;
  stats_.bytes_written += value.size();
  return Status::ok();
}

Result<std::string> MemStore::get(const std::string& key) const {
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = data_.find(key);
    ++stats_.gets;
    if (it == data_.end()) {
      ++stats_.misses;
      return Status::not_found("key not found: " + key);
    }
    out = it->second;
    stats_.bytes_read += out.size();
  }
  maybe_sleep(out.size());
  return out;
}

bool MemStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.count(key) != 0;
}

Status MemStore::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = data_.find(key);
  if (it == data_.end()) return Status::not_found("key not found: " + key);
  used_ -= it->second.size();
  data_.erase(it);
  return Status::ok();
}

std::vector<std::string> MemStore::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [k, v] : data_) {
    if (k.rfind(prefix, 0) == 0) out.push_back(k);
  }
  return out;
}

Bytes MemStore::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

StoreStats MemStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MemStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  data_.clear();
  used_ = 0;
}

}  // namespace ditto::storage
