// In-process key-value object store with a configurable StorageModel.
//
// Serves as the concrete backend for both simulated S3 and simulated
// Redis (see sim_store.h) and as a plain in-memory store for tests.
// Thread-safe. Optionally applies the model's transfer time as a real
// (scaled) sleep so engine-mode runs experience the latency asymmetry.
#pragma once

#include <mutex>
#include <unordered_map>

#include "storage/object_store.h"

namespace ditto::storage {

class MemStore : public ObjectStore {
 public:
  explicit MemStore(StorageModel model = {}, std::string kind = "mem")
      : model_(model), kind_(std::move(kind)) {}

  const char* kind() const override { return kind_.c_str(); }
  const StorageModel& model() const override { return model_; }

  Status put(const std::string& key, std::string_view value) override;
  Result<std::string> get(const std::string& key) const override;
  bool contains(const std::string& key) const override;
  Status remove(const std::string& key) override;
  std::vector<std::string> list(const std::string& prefix) const override;

  Bytes used_bytes() const override;
  StoreStats stats() const override;

  /// When > 0, put/get sleep for model.transfer_time(n) * scale. Use a
  /// small scale (e.g. 1e-3) to keep engine tests fast while preserving
  /// the S3-vs-Redis-vs-shm ordering.
  void set_real_delay_scale(double scale) { delay_scale_ = scale; }
  double real_delay_scale() const { return delay_scale_; }

  void clear();

 private:
  void maybe_sleep(Bytes n) const;

  StorageModel model_;
  std::string kind_;
  double delay_scale_ = 0.0;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> data_;
  Bytes used_ = 0;
  mutable StoreStats stats_;
};

}  // namespace ditto::storage
