// Factory functions for the two external stores of the paper's testbed.
//
// Parameters follow published service characteristics:
//   S3:    ~30 ms time-to-first-byte, ~90 MB/s per connection,
//          priced >1000x below memory — the paper ignores S3 cost.
//   Redis: ~0.3 ms request latency, ~1.25 GB/s (10 GbE ElastiCache
//          node), bounded capacity (two cache.r5.4xlarge = 228 GB),
//          memory-priced per GB-second.
#pragma once

#include <memory>

#include "storage/mem_store.h"

namespace ditto::storage {

/// StorageModel matching Amazon S3 access characteristics.
StorageModel s3_model();

/// StorageModel matching an ElastiCache Redis deployment of the paper's
/// size (2 nodes, 114 GB each).
StorageModel redis_model();

/// Zero-latency, unbounded, free store (unit tests, debugging).
StorageModel instant_model();

std::unique_ptr<MemStore> make_s3_sim();
std::unique_ptr<MemStore> make_redis_sim();
std::unique_ptr<MemStore> make_instant_store();

}  // namespace ditto::storage
