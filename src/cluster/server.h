// A function server: bounded pool of function slots plus a
// shared-memory arena (paper §3: "The number of functions held on each
// server is limited by the hardware capability (e.g., CPU cores)").
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "dag/types.h"
#include "shm/arena.h"

namespace ditto::cluster {

class Server {
 public:
  Server(ServerId id, int total_slots, Bytes memory = 384_GiB)
      : id_(id),
        total_slots_(total_slots),
        free_slots_(total_slots),
        arena_(std::make_unique<shm::Arena>(memory, "server-" + std::to_string(id))) {}

  ServerId id() const { return id_; }
  int total_slots() const { return total_slots_; }
  int free_slots() const { return free_slots_; }
  int used_slots() const { return total_slots_ - free_slots_; }

  /// Reserve `n` function slots; RESOURCE_EXHAUSTED when unavailable.
  Status reserve_slots(int n) {
    if (n < 0) return Status::invalid_argument("negative slot reservation");
    if (n > free_slots_) {
      return Status::resource_exhausted("server " + std::to_string(id_) + " has " +
                                        std::to_string(free_slots_) + " free slots, need " +
                                        std::to_string(n));
    }
    free_slots_ -= n;
    return Status::ok();
  }

  /// Return `n` previously reserved slots. Over-release (returning more
  /// than is outstanding) is a bookkeeping bug: it fails with
  /// FAILED_PRECONDITION and leaves the count untouched instead of
  /// silently clamping — a double release would otherwise hand the same
  /// slots to two jobs.
  Status release_slots(int n) {
    if (n < 0) return Status::invalid_argument("negative slot release");
    if (free_slots_ + n > total_slots_) {
      return Status::failed_precondition(
          "server " + std::to_string(id_) + " release of " + std::to_string(n) +
          " slots exceeds " + std::to_string(total_slots_ - free_slots_) + " outstanding");
    }
    free_slots_ += n;
    return Status::ok();
  }

  shm::Arena& arena() { return *arena_; }
  const shm::Arena& arena() const { return *arena_; }

 private:
  ServerId id_;
  int total_slots_;
  int free_slots_;
  std::unique_ptr<shm::Arena> arena_;
};

}  // namespace ditto::cluster
