// Function-slot availability distributions (paper §6.1).
//
// The evaluation restricts how many slots each of the 8 function
// servers offers, using:
//   * Uniform-<f>:  every server offers f x max slots (Fig. 8b's
//                   100%/75%/50%/25% "slot usage" sweep)
//   * Norm-sigma:   eight probabilities sampled symmetrically with a
//                   fixed step from N(0, sigma); each probability is the
//                   ratio of permitted slots to the per-server maximum
//   * Zipf-s:       ratios from a Zipf pmf with skew s
// Ratios are normalized so the largest server offers its full maximum,
// which preserves each distribution's *shape* (what the scheduler cares
// about) while keeping the cluster non-degenerate.
#pragma once

#include <string>
#include <vector>

namespace ditto::cluster {

enum class SlotDistributionKind { kUniform, kNormal, kZipf };

struct SlotDistributionSpec {
  SlotDistributionKind kind = SlotDistributionKind::kUniform;
  double param = 1.0;  ///< uniform: usage fraction; normal: sigma; zipf: skew s
  std::string label() const;
};

/// Per-server available slot counts for `servers` servers with
/// `max_slots_per_server` capacity each.
std::vector<int> make_slot_distribution(const SlotDistributionSpec& spec, int servers,
                                        int max_slots_per_server);

/// Named presets matching the paper's figures.
SlotDistributionSpec uniform_usage(double fraction);  // 1.0, 0.75, 0.5, 0.25
SlotDistributionSpec norm_1_0();
SlotDistributionSpec norm_0_8();
SlotDistributionSpec zipf_0_9();
SlotDistributionSpec zipf_0_99();

}  // namespace ditto::cluster
