// Runtime feedback loop (paper §3: "Ditto updates the model
// periodically as new job profiles are generated"; §4.1: the straggler
// scaling factor "is dynamically tuned according to the profiled job
// history").
//
// After a job executes, the runtime monitor holds per-task records.
// These utilities fold the observations back into the DAG's model:
//   * straggler scales from max/mean task times, optionally blended
//     with the existing value (exponential moving average), and
//   * per-stage observed mean task times, usable as fresh profile
//     samples for refitting.
#pragma once

#include "cluster/runtime_monitor.h"
#include "dag/job_dag.h"
#include "timemodel/fitting.h"

namespace ditto::cluster {

struct FeedbackOptions {
  /// EMA weight of the NEW observation (1.0 = replace, 0.0 = ignore).
  double straggler_blend = 0.5;
  /// Ignore stages with fewer tasks than this (max/mean is meaningless
  /// for singleton stages).
  std::size_t min_tasks = 2;
};

/// Updates each stage's straggler scale from the monitor's records.
/// Returns the number of stages updated.
int tune_stragglers_from_monitor(JobDag& dag, const RuntimeMonitor& monitor,
                                 const FeedbackOptions& options = {});

/// Extracts one ProfileSample per executed stage (its DoP and mean
/// task time) — fresh material for the Profiler's least-squares refit.
std::vector<std::pair<StageId, ProfileSample>> profile_samples_from_monitor(
    const JobDag& dag, const RuntimeMonitor& monitor);

}  // namespace ditto::cluster
