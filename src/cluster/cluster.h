// Cluster: the set of function servers a job may use, plus the
// resource-manager view the scheduler consumes (free slots per server).
#pragma once

#include <numeric>
#include <vector>

#include "cluster/server.h"
#include "cluster/slot_distribution.h"
#include "common/status.h"

namespace ditto::cluster {

class Cluster {
 public:
  Cluster() = default;

  /// Homogeneous cluster: `servers` servers x `slots` slots each.
  static Cluster uniform(int servers, int slots, Bytes memory_per_server = 384_GiB);

  /// Cluster whose per-server availability follows a distribution spec
  /// (the paper's Fig. 8b/8c setups).
  static Cluster from_distribution(const SlotDistributionSpec& spec, int servers,
                                   int max_slots_per_server,
                                   Bytes memory_per_server = 384_GiB);

  /// The paper's default testbed shape: 8x m6i.24xlarge (96 slots).
  static Cluster paper_testbed(const SlotDistributionSpec& spec);

  /// Cluster with an explicit per-server slot vector (e.g. a snapshot
  /// of another cluster's free slots).
  static Cluster from_slots(const std::vector<int>& slots,
                            Bytes memory_per_server = 384_GiB);

  std::size_t num_servers() const { return servers_.size(); }
  Server& server(ServerId id) { return servers_.at(id); }
  const Server& server(ServerId id) const { return servers_.at(id); }
  std::vector<Server>& servers() { return servers_; }
  const std::vector<Server>& servers() const { return servers_; }

  int total_slots() const;
  int free_slots() const;

  /// Snapshot of free slots per server — the resource constraint R the
  /// scheduling algorithms take as input.
  std::vector<int> free_slot_snapshot() const;

  /// Reserve `n` slots on a specific server.
  Status reserve(ServerId id, int n) { return servers_.at(id).reserve_slots(n); }
  /// Return `n` slots; FAILED_PRECONDITION on over-release (see Server).
  Status release(ServerId id, int n) { return servers_.at(id).release_slots(n); }

 private:
  std::vector<Server> servers_;
};

/// Limits a per-job slot offer to `cap` total slots, shrinking server
/// contributions proportionally (largest-first rounding). `cap <= 0`
/// returns the offer unchanged. Shared by the simulated job queue and
/// the live JobService so fair-share admission decides identically in
/// both worlds.
std::vector<int> cap_offer(std::vector<int> free_slots, int cap);

}  // namespace ditto::cluster
