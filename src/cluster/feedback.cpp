#include "cluster/feedback.h"

namespace ditto::cluster {

int tune_stragglers_from_monitor(JobDag& dag, const RuntimeMonitor& monitor,
                                 const FeedbackOptions& options) {
  int updated = 0;
  for (StageId s = 0; s < dag.num_stages(); ++s) {
    const StageSummary sum = monitor.stage_summary(s);
    if (sum.tasks < options.min_tasks) continue;
    const double observed = sum.straggler_scale();
    const double old = dag.stage(s).straggler_scale();
    dag.stage(s).set_straggler_scale(options.straggler_blend * observed +
                                     (1.0 - options.straggler_blend) * old);
    ++updated;
  }
  return updated;
}

std::vector<std::pair<StageId, ProfileSample>> profile_samples_from_monitor(
    const JobDag& dag, const RuntimeMonitor& monitor) {
  std::vector<std::pair<StageId, ProfileSample>> out;
  for (StageId s = 0; s < dag.num_stages(); ++s) {
    const StageSummary sum = monitor.stage_summary(s);
    if (sum.tasks == 0) continue;
    ProfileSample sample;
    sample.dop = static_cast<int>(sum.tasks);
    sample.time = sum.mean_task_time;
    out.emplace_back(s, sample);
  }
  return out;
}

}  // namespace ditto::cluster
