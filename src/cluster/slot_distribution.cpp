#include "cluster/slot_distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/rng.h"

namespace ditto::cluster {

std::string SlotDistributionSpec::label() const {
  char buf[48];
  switch (kind) {
    case SlotDistributionKind::kUniform:
      std::snprintf(buf, sizeof(buf), "%.0f%%", param * 100.0);
      break;
    case SlotDistributionKind::kNormal:
      std::snprintf(buf, sizeof(buf), "Norm-%.1f", param);
      break;
    case SlotDistributionKind::kZipf:
      std::snprintf(buf, sizeof(buf), "Zipf-%.2g", param);
      break;
  }
  return buf;
}

namespace {
double normal_pdf(double x, double sigma) {
  return std::exp(-x * x / (2.0 * sigma * sigma)) / (sigma * std::sqrt(2.0 * M_PI));
}
}  // namespace

std::vector<int> make_slot_distribution(const SlotDistributionSpec& spec, int servers,
                                        int max_slots_per_server) {
  assert(servers > 0 && max_slots_per_server > 0);
  std::vector<double> ratios(servers, 1.0);
  switch (spec.kind) {
    case SlotDistributionKind::kUniform:
      std::fill(ratios.begin(), ratios.end(), spec.param);
      break;
    case SlotDistributionKind::kNormal: {
      // Symmetric sample points with a fixed step across [-2, 2]
      // (paper §6.1: "symmetrically sample eight probabilities with a
      // fixed step from the standard normal distribution").
      const double lo = -2.0, hi = 2.0;
      const double step = (hi - lo) / static_cast<double>(servers - 1 > 0 ? servers - 1 : 1);
      for (int i = 0; i < servers; ++i) {
        ratios[i] = normal_pdf(lo + step * i, spec.param);
      }
      break;
    }
    case SlotDistributionKind::kZipf: {
      const ZipfDistribution zipf(static_cast<std::size_t>(servers), spec.param);
      for (int i = 0; i < servers; ++i) ratios[i] = zipf.pmf(i + 1);
      break;
    }
  }
  // Uniform fractions are literal usage ratios (the Fig. 8b sweep);
  // shaped distributions are normalized so the best-provisioned server
  // offers its full maximum, preserving the distribution's shape.
  double max_ratio = 1.0;
  if (spec.kind != SlotDistributionKind::kUniform) {
    max_ratio = *std::max_element(ratios.begin(), ratios.end());
  }
  std::vector<int> slots(servers);
  for (int i = 0; i < servers; ++i) {
    const double r = max_ratio > 0.0 ? ratios[i] / max_ratio : 1.0;
    slots[i] = std::max(1, static_cast<int>(std::round(r * max_slots_per_server)));
  }
  return slots;
}

SlotDistributionSpec uniform_usage(double fraction) {
  return {SlotDistributionKind::kUniform, fraction};
}
SlotDistributionSpec norm_1_0() { return {SlotDistributionKind::kNormal, 1.0}; }
SlotDistributionSpec norm_0_8() { return {SlotDistributionKind::kNormal, 0.8}; }
SlotDistributionSpec zipf_0_9() { return {SlotDistributionKind::kZipf, 0.9}; }
SlotDistributionSpec zipf_0_99() { return {SlotDistributionKind::kZipf, 0.99}; }

}  // namespace ditto::cluster
