// Slot leasing: the thread-safe resource-manager face of a Cluster.
//
// The Cluster itself is a plain data structure (the simulator mutates
// it single-threaded); the JobService shares one cluster between many
// concurrently completing jobs, so slot accounting needs a serialized
// owner. The SlotLedger is that owner: every reservation goes through
// acquire(), which hands back a move-only RAII SlotLease. Releasing is
// idempotent at the lease level (the destructor is a no-op after an
// explicit release) and *guarded* at the ledger level — a release that
// does not match outstanding reservations fails with
// FAILED_PRECONDITION instead of silently inflating the free count and
// double-granting slots to two jobs.
#pragma once

#include <mutex>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace ditto::cluster {

class SlotLedger;

/// Move-only RAII handle to a per-server slot reservation. Destruction
/// returns the slots; release() does it eagerly and reports the
/// ledger's verdict (a second explicit release fails).
class SlotLease {
 public:
  SlotLease() = default;
  ~SlotLease();

  SlotLease(SlotLease&& other) noexcept { *this = std::move(other); }
  SlotLease& operator=(SlotLease&& other) noexcept;
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

  bool active() const { return ledger_ != nullptr; }
  const std::vector<int>& slots_per_server() const { return slots_; }
  int total_slots() const;

  /// Returns the slots to the ledger. FAILED_PRECONDITION if the lease
  /// was already released (double release).
  Status release();

 private:
  friend class SlotLedger;
  SlotLease(SlotLedger* ledger, std::vector<int> slots)
      : ledger_(ledger), slots_(std::move(slots)) {}

  SlotLedger* ledger_ = nullptr;
  std::vector<int> slots_;
};

/// Serializes slot reservations on a shared Cluster and tracks the
/// outstanding total so releases can be validated. Also integrates
/// reserved-slots x time for utilization reporting.
class SlotLedger {
 public:
  /// The cluster is not owned and must outlive the ledger. All slot
  /// mutations on it must go through this ledger once it exists.
  explicit SlotLedger(Cluster& cluster);

  /// Reserve `per_server[v]` slots on each server v; all or nothing.
  /// RESOURCE_EXHAUSTED if any server lacks the free slots,
  /// INVALID_ARGUMENT on a malformed demand vector.
  Result<SlotLease> acquire(const std::vector<int>& per_server);

  std::vector<int> free_snapshot() const;
  int free_total() const;
  int total_slots() const { return total_slots_; }
  /// Slots currently out on leases.
  int outstanding_total() const;

  /// Integral of reserved slots over time (slot-seconds) since the
  /// ledger was built, advanced on every acquire/release and on read.
  /// Average utilization over a window is a slot_seconds delta divided
  /// by (total_slots x window).
  double slot_seconds();

  /// Seconds since the ledger was built (the clock slot_seconds uses).
  double elapsed_seconds() const { return clock_.elapsed_seconds(); }

 private:
  friend class SlotLease;
  Status release(const std::vector<int>& per_server);
  void advance_locked();

  Cluster* cluster_;
  const int total_slots_;
  Stopwatch clock_;
  mutable std::mutex mu_;
  std::vector<int> outstanding_;
  double last_advance_ = 0.0;
  double slot_seconds_ = 0.0;
};

}  // namespace ditto::cluster
