// Placement plan: the joint output of the Ditto scheduler — a DoP for
// every stage, a server for every task, and the set of edges promoted
// to zero-copy shared memory by stage grouping.
#pragma once

#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "dag/job_dag.h"
#include "timemodel/predictor.h"

namespace ditto::cluster {

struct PlacementPlan {
  /// Degree of parallelism per stage (indexed by StageId). Always >= 1.
  std::vector<int> dop;

  /// Server of each task: task_server[stage][task].
  std::vector<std::vector<ServerId>> task_server;

  /// Edges whose endpoints were grouped onto the same server and thus
  /// shuffle through zero-copy shared memory.
  std::vector<std::pair<StageId, StageId>> zero_copy_edges;

  /// Per-stage launch offsets from job start (NIMBLE launch-time
  /// algorithm, paper §5 "Task launch time"). Empty = launch on ready.
  std::vector<double> launch_time;

  bool edge_colocated(StageId src, StageId dst) const {
    for (const auto& [a, b] : zero_copy_edges) {
      if (a == src && b == dst) return true;
    }
    return false;
  }

  /// Adapter for the execution time predictor.
  ColocatedFn colocated_fn() const {
    return [this](StageId a, StageId b) { return edge_colocated(a, b); };
  }

  int total_slots_used() const {
    int n = 0;
    for (int d : dop) n += d;
    return n;
  }

  int dop_of(StageId s) const { return s < dop.size() ? dop[s] : 0; }

  /// Structural checks: every stage has a DoP >= 1 and exactly that many
  /// task assignments; per-server task counts fit within free slots;
  /// zero-copy edges really have co-located task sets.
  Status validate(const JobDag& dag, const Cluster& cluster) const;
};

/// Per-server slot demand of a plan: total tasks placed on each server
/// summed over ALL stages — the slots a job holds for its lifetime
/// under the paper's §4.5 reservation model. Shared by the simulated
/// job queue and the live JobService so both account identically.
std::vector<int> slot_demand(const PlacementPlan& plan, std::size_t servers);

}  // namespace ditto::cluster
