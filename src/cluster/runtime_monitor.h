// Runtime monitor (paper §3: "each server accommodates a runtime
// monitor to track the runtime statistics and the execution results of
// each function").
//
// Collects per-task records from executions (simulated or real) and
// derives the aggregates the scheduler feeds back into the time model:
// per-stage mean/max task times (straggler scale) and IO volumes.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "dag/types.h"

namespace ditto::cluster {

struct TaskRecord {
  StageId stage = kNoStage;
  TaskId task = 0;
  ServerId server = kNoServer;
  Seconds start = 0.0;
  Seconds end = 0.0;
  Seconds read_time = 0.0;
  Seconds compute_time = 0.0;
  Seconds write_time = 0.0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;

  Seconds duration() const { return end - start; }
};

struct StageSummary {
  std::size_t tasks = 0;
  Seconds mean_task_time = 0.0;
  Seconds max_task_time = 0.0;
  Seconds stage_start = 0.0;   ///< earliest task start
  Seconds stage_end = 0.0;     ///< latest task end
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;

  /// max/mean — the straggler scaling factor of §4.1.
  double straggler_scale() const {
    return mean_task_time > 0.0 ? max_task_time / mean_task_time : 1.0;
  }
};

class RuntimeMonitor {
 public:
  void record(const TaskRecord& r);

  std::size_t num_records() const;
  std::vector<TaskRecord> records() const;
  std::vector<TaskRecord> records_for_stage(StageId s) const;

  StageSummary stage_summary(StageId s) const;

  /// Job completion time: latest end across all records.
  Seconds job_end() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TaskRecord> records_;
};

}  // namespace ditto::cluster
