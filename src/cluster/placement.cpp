#include "cluster/placement.h"

#include <map>
#include <set>

namespace ditto::cluster {

Status PlacementPlan::validate(const JobDag& dag, const Cluster& cluster) const {
  if (dop.size() != dag.num_stages() || task_server.size() != dag.num_stages()) {
    return Status::invalid_argument("plan is not sized to the DAG");
  }
  std::map<ServerId, int> per_server;
  for (StageId s = 0; s < dag.num_stages(); ++s) {
    if (dop[s] < 1) return Status::invalid_argument("stage with DoP < 1");
    if (task_server[s].size() != static_cast<std::size_t>(dop[s])) {
      return Status::invalid_argument("task assignments do not match DoP for stage " +
                                      dag.stage(s).name());
    }
    for (ServerId srv : task_server[s]) {
      if (srv >= cluster.num_servers()) {
        return Status::invalid_argument("task assigned to unknown server");
      }
      ++per_server[srv];
    }
  }
  for (const auto& [srv, used] : per_server) {
    // free_slots() reflects availability *before* this plan is applied.
    if (used > cluster.server(srv).free_slots()) {
      return Status::resource_exhausted("server over-subscribed by plan: server " +
                                        std::to_string(srv));
    }
  }
  for (const auto& [a, b] : zero_copy_edges) {
    if (dag.find_edge(a, b) == nullptr) {
      return Status::invalid_argument("zero-copy edge not in DAG");
    }
    // Zero-copy requires both stages' tasks to live on one shared server.
    std::set<ServerId> servers(task_server[a].begin(), task_server[a].end());
    servers.insert(task_server[b].begin(), task_server[b].end());
    if (servers.size() != 1) {
      const Edge* e = dag.find_edge(a, b);
      // Gather edges may decompose into task groups across servers as
      // long as each producer/consumer pair matches (paper §4.5).
      if (e->exchange == ExchangeKind::kGather &&
          task_server[a].size() == task_server[b].size()) {
        for (std::size_t t = 0; t < task_server[a].size(); ++t) {
          if (task_server[a][t] != task_server[b][t]) {
            return Status::invalid_argument("gather task pair split across servers");
          }
        }
      } else {
        return Status::invalid_argument("zero-copy edge spans servers");
      }
    }
  }
  return Status::ok();
}

std::vector<int> slot_demand(const PlacementPlan& plan, std::size_t servers) {
  std::vector<int> demand(servers, 0);
  for (const auto& task_servers : plan.task_server) {
    for (ServerId v : task_servers) {
      if (v != kNoServer && v < servers) ++demand[v];
    }
  }
  return demand;
}

}  // namespace ditto::cluster
