#include "cluster/runtime_monitor.h"

#include <algorithm>

namespace ditto::cluster {

void RuntimeMonitor::record(const TaskRecord& r) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(r);
}

std::size_t RuntimeMonitor::num_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<TaskRecord> RuntimeMonitor::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<TaskRecord> RuntimeMonitor::records_for_stage(StageId s) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TaskRecord> out;
  for (const TaskRecord& r : records_) {
    if (r.stage == s) out.push_back(r);
  }
  return out;
}

StageSummary RuntimeMonitor::stage_summary(StageId s) const {
  const auto recs = records_for_stage(s);
  StageSummary sum;
  if (recs.empty()) return sum;
  sum.tasks = recs.size();
  sum.stage_start = recs.front().start;
  sum.stage_end = recs.front().end;
  double total = 0.0;
  for (const TaskRecord& r : recs) {
    total += r.duration();
    sum.max_task_time = std::max(sum.max_task_time, r.duration());
    sum.stage_start = std::min(sum.stage_start, r.start);
    sum.stage_end = std::max(sum.stage_end, r.end);
    sum.bytes_read += r.bytes_read;
    sum.bytes_written += r.bytes_written;
  }
  sum.mean_task_time = total / static_cast<double>(recs.size());
  return sum;
}

Seconds RuntimeMonitor::job_end() const {
  std::lock_guard<std::mutex> lock(mu_);
  Seconds end = 0.0;
  for (const TaskRecord& r : records_) end = std::max(end, r.end);
  return end;
}

void RuntimeMonitor::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

}  // namespace ditto::cluster
