#include "cluster/cluster.h"

#include <cmath>

namespace ditto::cluster {

Cluster Cluster::uniform(int servers, int slots, Bytes memory_per_server) {
  Cluster c;
  c.servers_.reserve(servers);
  for (int i = 0; i < servers; ++i) {
    c.servers_.emplace_back(static_cast<ServerId>(i), slots, memory_per_server);
  }
  return c;
}

Cluster Cluster::from_distribution(const SlotDistributionSpec& spec, int servers,
                                   int max_slots_per_server, Bytes memory_per_server) {
  const std::vector<int> slots = make_slot_distribution(spec, servers, max_slots_per_server);
  Cluster c;
  c.servers_.reserve(servers);
  for (int i = 0; i < servers; ++i) {
    c.servers_.emplace_back(static_cast<ServerId>(i), slots[i], memory_per_server);
  }
  return c;
}

Cluster Cluster::paper_testbed(const SlotDistributionSpec& spec) {
  return from_distribution(spec, /*servers=*/8, /*max_slots_per_server=*/96,
                           /*memory_per_server=*/384_GiB);
}

Cluster Cluster::from_slots(const std::vector<int>& slots, Bytes memory_per_server) {
  Cluster c;
  c.servers_.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    c.servers_.emplace_back(static_cast<ServerId>(i), slots[i], memory_per_server);
  }
  return c;
}

int Cluster::total_slots() const {
  int n = 0;
  for (const Server& s : servers_) n += s.total_slots();
  return n;
}

int Cluster::free_slots() const {
  int n = 0;
  for (const Server& s : servers_) n += s.free_slots();
  return n;
}

std::vector<int> Cluster::free_slot_snapshot() const {
  std::vector<int> out;
  out.reserve(servers_.size());
  for (const Server& s : servers_) out.push_back(s.free_slots());
  return out;
}

std::vector<int> cap_offer(std::vector<int> free_slots, int cap) {
  if (cap <= 0 || free_slots.empty()) return free_slots;
  int total = 0;
  for (int s : free_slots) total += s;
  if (total <= cap) return free_slots;
  const double scale = static_cast<double>(cap) / static_cast<double>(total);
  int granted = 0;
  for (int& s : free_slots) {
    s = static_cast<int>(std::floor(s * scale));
    granted += s;
  }
  // Distribute the rounding remainder to the largest servers.
  while (granted < cap) {
    int* best = &free_slots[0];
    for (int& s : free_slots) {
      if (s > *best) best = &s;
    }
    ++*best;
    ++granted;
  }
  return free_slots;
}

}  // namespace ditto::cluster
