#include "cluster/slot_lease.h"

#include <numeric>
#include <string>

namespace ditto::cluster {

SlotLease::~SlotLease() {
  if (ledger_ != nullptr) (void)release();
}

SlotLease& SlotLease::operator=(SlotLease&& other) noexcept {
  if (this != &other) {
    if (ledger_ != nullptr) (void)release();
    ledger_ = other.ledger_;
    slots_ = std::move(other.slots_);
    other.ledger_ = nullptr;
    other.slots_.clear();
  }
  return *this;
}

int SlotLease::total_slots() const {
  return std::accumulate(slots_.begin(), slots_.end(), 0);
}

Status SlotLease::release() {
  if (ledger_ == nullptr) {
    return Status::failed_precondition("slot lease already released");
  }
  SlotLedger* ledger = ledger_;
  ledger_ = nullptr;  // the lease is spent even if the ledger objects
  const Status st = ledger->release(slots_);
  slots_.clear();
  return st;
}

SlotLedger::SlotLedger(Cluster& cluster)
    : cluster_(&cluster),
      total_slots_(cluster.total_slots()),
      outstanding_(cluster.num_servers(), 0) {}

Result<SlotLease> SlotLedger::acquire(const std::vector<int>& per_server) {
  if (per_server.size() != outstanding_.size()) {
    return Status::invalid_argument("demand vector sized " + std::to_string(per_server.size()) +
                                    " for " + std::to_string(outstanding_.size()) + " servers");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (int n : per_server) {
    if (n < 0) return Status::invalid_argument("negative slot demand");
  }
  // All-or-nothing: validate the whole demand before mutating anything.
  for (std::size_t v = 0; v < per_server.size(); ++v) {
    if (per_server[v] > cluster_->server(static_cast<ServerId>(v)).free_slots()) {
      return Status::resource_exhausted(
          "server " + std::to_string(v) + " has " +
          std::to_string(cluster_->server(static_cast<ServerId>(v)).free_slots()) +
          " free slots, need " + std::to_string(per_server[v]));
    }
  }
  advance_locked();
  for (std::size_t v = 0; v < per_server.size(); ++v) {
    if (per_server[v] == 0) continue;
    const Status st = cluster_->reserve(static_cast<ServerId>(v), per_server[v]);
    if (!st.is_ok()) {
      // Unwind the prefix; the pre-check makes this unreachable unless
      // someone mutated the cluster behind the ledger's back.
      for (std::size_t u = 0; u < v; ++u) {
        if (per_server[u] > 0) {
          (void)cluster_->release(static_cast<ServerId>(u), per_server[u]);
          outstanding_[u] -= per_server[u];
        }
      }
      return st;
    }
    outstanding_[v] += per_server[v];
  }
  return SlotLease(this, per_server);
}

Status SlotLedger::release(const std::vector<int>& per_server) {
  std::lock_guard<std::mutex> lock(mu_);
  if (per_server.size() != outstanding_.size()) {
    return Status::invalid_argument("release vector size mismatch");
  }
  for (std::size_t v = 0; v < per_server.size(); ++v) {
    if (per_server[v] > outstanding_[v]) {
      return Status::failed_precondition(
          "release of " + std::to_string(per_server[v]) + " slots on server " +
          std::to_string(v) + " exceeds " + std::to_string(outstanding_[v]) + " outstanding");
    }
  }
  advance_locked();
  for (std::size_t v = 0; v < per_server.size(); ++v) {
    if (per_server[v] == 0) continue;
    DITTO_RETURN_IF_ERROR(cluster_->release(static_cast<ServerId>(v), per_server[v]));
    outstanding_[v] -= per_server[v];
  }
  return Status::ok();
}

std::vector<int> SlotLedger::free_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cluster_->free_slot_snapshot();
}

int SlotLedger::free_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cluster_->free_slots();
}

int SlotLedger::outstanding_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::accumulate(outstanding_.begin(), outstanding_.end(), 0);
}

double SlotLedger::slot_seconds() {
  std::lock_guard<std::mutex> lock(mu_);
  advance_locked();
  return slot_seconds_;
}

void SlotLedger::advance_locked() {
  const double now = clock_.elapsed_seconds();
  const int reserved = std::accumulate(outstanding_.begin(), outstanding_.end(), 0);
  slot_seconds_ += static_cast<double>(reserved) * (now - last_advance_);
  last_advance_ = now;
}

}  // namespace ditto::cluster
