#include "service/job_service.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "dag/dag_algorithms.h"
#include "exec/serde.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scheduler/ditto_scheduler.h"
#include "timemodel/predictor.h"

namespace ditto::service {
namespace {

std::vector<int> slot_widths(const cluster::Cluster& cluster) {
  std::vector<int> widths(cluster.num_servers(), 1);
  for (std::size_t v = 0; v < cluster.num_servers(); ++v) {
    widths[v] = cluster.server(v).total_slots();
  }
  return widths;
}

/// Per-server shared-memory bytes a job's intermediates occupy: each
/// task materializes output_bytes / dop of its stage's output on its
/// server. A modeling charge (the engine's tables live on the heap),
/// but it makes arena accounting observable and reclaimable per job.
std::vector<Bytes> arena_demand(const JobDag& model_dag, const cluster::PlacementPlan& plan,
                                std::size_t servers) {
  std::vector<Bytes> demand(servers, 0);
  for (StageId s = 0; s < plan.task_server.size(); ++s) {
    if (s >= model_dag.num_stages()) break;
    const int dop = plan.dop_of(s);
    if (dop <= 0) continue;
    const Bytes per_task = model_dag.stage(s).output_bytes() / dop;
    for (ServerId v : plan.task_server[s]) {
      if (v != kNoServer && v < servers) demand[v] += per_task;
    }
  }
  return demand;
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kAdmitted: return "ADMITTED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed || s == JobState::kCancelled;
}

std::string ServiceSummary::to_text() const {
  std::ostringstream out;
  out << "jobs: " << submitted << " submitted, " << done << " done, " << failed << " failed, "
      << cancelled << " cancelled\n";
  out << "queueing: mean " << mean_queueing << " s, max " << max_queueing << " s\n";
  out << "makespan: " << makespan << " s, avg slot utilization "
      << static_cast<int>(avg_utilization * 100.0 + 0.5) << "%\n";
  return out.str();
}

JobService::JobService(cluster::Cluster& cluster, storage::ObjectStore& store,
                       ServiceOptions options)
    : cluster_(&cluster),
      store_(&store),
      options_(std::move(options)),
      ledger_(cluster),
      pools_(slot_widths(cluster)) {
  if (options_.persist_profiles) {
    // Best effort: a fresh store simply has no profiles yet, and a
    // corrupt object must not keep the service from starting.
    const Status loaded = profiles_.load(*store_, options_.profile_prefix);
    (void)loaded;
  }
  dispatcher_ = std::thread(&JobService::dispatcher_loop, this);
}

JobService::~JobService() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_dispatcher_ = true;
  }
  dispatch_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher joins runners as they finish; anything still
  // unjoined after its exit is collected here.
  for (auto& [id, rec] : jobs_) {
    if (rec->runner.joinable()) rec->runner.join();
  }
}

Result<JobId> JobService::submit(JobSubmission sub) {
  if (sub.dag.num_stages() == 0) {
    return Status::invalid_argument("job DAG has no stages");
  }
  if (sub.model_dag.num_stages() != sub.dag.num_stages()) {
    return Status::invalid_argument("model DAG does not match executable DAG (" +
                                    std::to_string(sub.model_dag.num_stages()) + " vs " +
                                    std::to_string(sub.dag.num_stages()) + " stages)");
  }
  if (sub.tier != "latency" && sub.tier != "batch") {
    return Status::invalid_argument("bad tier '" + sub.tier + "' (latency|batch)");
  }
  if (sub.job_attempts < 1) {
    return Status::invalid_argument("job_attempts must be >= 1");
  }
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (intake_closed_) {
      return Status::failed_precondition("job service is draining; intake closed");
    }
    if (options_.max_queue_depth > 0 && queue_.size() >= options_.max_queue_depth) {
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      // Overload: shed the newest queued batch-tier job to make room
      // for a latency-tier arrival; otherwise fast-reject the arrival.
      const auto victim =
          sub.tier == "latency"
              ? std::find_if(queue_.rbegin(), queue_.rend(),
                             [&](JobId qid) { return jobs_.at(qid)->sub.tier != "latency"; })
              : queue_.rend();
      if (victim == queue_.rend()) {
        if (mx.enabled()) mx.counter("service.rejected_jobs", {{"tier", sub.tier}}).add();
        return Status::resource_exhausted(
            "admission queue full (" + std::to_string(queue_.size()) + " jobs)");
      }
      JobRecord& shed = *jobs_.at(*victim);
      queue_.erase(std::next(victim).base());
      if (mx.enabled()) mx.counter("service.shed_jobs", {{"tier", shed.sub.tier}}).add();
      finish_job_locked(shed, JobState::kFailed,
                        Status::resource_exhausted("shed under overload (batch tier, queue "
                                                   "full at depth " +
                                                   std::to_string(options_.max_queue_depth) +
                                                   ")"));
    }
    id = next_id_++;
    auto rec = std::make_unique<JobRecord>();
    rec->id = id;
    rec->sub = std::move(sub);
    if (rec->sub.label.empty()) rec->sub.label = "job-" + std::to_string(id);
    rec->submitted = now();
    if (rec->sub.deadline > 0.0) rec->deadline_at = rec->submitted + rec->sub.deadline;
    rec->epoch = rec->sub.epoch;
    if (options_.journal != nullptr && !rec->sub.spec_line.empty()) {
      auto jid = options_.journal->append_submit(rec->sub.spec_line, rec->sub.tier,
                                                rec->sub.deadline, rec->sub.jid);
      if (!jid.ok()) {
        // A job the journal never saw would be lost by a crash — refuse
        // to accept it on the quiet.
        return Status::unavailable("journal SUBMIT append failed: " + jid.status().message());
      }
      rec->jid = *jid;
    }
    if (first_submit_ < 0.0) {
      first_submit_ = rec->submitted;
      slot_seconds_at_first_submit_ = ledger_.slot_seconds();
    }
    const std::string tier = rec->sub.tier;
    jobs_.emplace(id, std::move(rec));
    enqueue_locked(id, tier);
    note_queue_locked();
  }
  dispatch_cv_.notify_all();
  state_cv_.notify_all();  // a shed job may have just turned terminal
  return id;
}

void JobService::enqueue_locked(JobId id, const std::string& tier) {
  if (tier == "latency") {
    const auto it = std::find_if(queue_.begin(), queue_.end(), [&](JobId qid) {
      return jobs_.at(qid)->sub.tier != "latency";
    });
    queue_.insert(it, id);
  } else {
    queue_.push_back(id);
  }
}

void JobService::note_queue_locked() {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (!mx.enabled()) return;
  mx.gauge("service.queue_depth",
           {{"policy", admission_policy_name(options_.admission.policy)}})
      .set(static_cast<double>(queue_.size()));
}

Status JobService::cancel(JobId id) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("no job " + std::to_string(id));
  }
  JobRecord& rec = *it->second;
  if (is_terminal(rec.state)) {
    if (rec.state == JobState::kCancelled) return Status::ok();
    return Status::failed_precondition("job " + std::to_string(id) + " already " +
                                       job_state_name(rec.state));
  }
  if (rec.state == JobState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
    note_queue_locked();
    finish_job_locked(rec, JobState::kCancelled, Status::cancelled("cancelled while queued"));
    lk.unlock();
    state_cv_.notify_all();
    dispatch_cv_.notify_all();
    return Status::ok();
  }
  // ADMITTED/RUNNING: ask the engine to stop at the next wave boundary.
  if (rec.pending_stop.is_ok()) rec.pending_stop = Status::cancelled("cancelled by caller");
  rec.cancel_token.store(true, std::memory_order_release);
  return Status::ok();
}

Result<JobState> JobService::state(JobId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::not_found("no job " + std::to_string(id));
  return it->second->state;
}

Result<JobOutcome> JobService::wait(JobId id) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::not_found("no job " + std::to_string(id));
  JobRecord& rec = *it->second;
  state_cv_.wait(lk, [&] { return is_terminal(rec.state); });
  return outcome_of_locked(rec);
}

std::vector<JobOutcome> JobService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  intake_closed_ = true;
  dispatch_cv_.notify_all();
  state_cv_.wait(lk, [&] {
    for (const auto& [id, rec] : jobs_) {
      if (!is_terminal(rec->state)) return false;
    }
    return queue_.empty();
  });
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) outcomes.push_back(outcome_of_locked(*rec));
  return outcomes;
}

ServiceSummary JobService::summary() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceSummary s;
  s.submitted = jobs_.size();
  double queue_sum = 0.0;
  std::size_t started = 0;
  for (const auto& [id, rec] : jobs_) {
    switch (rec->state) {
      case JobState::kDone: ++s.done; break;
      case JobState::kFailed: ++s.failed; break;
      case JobState::kCancelled: ++s.cancelled; break;
      default: break;
    }
    if (rec->started > 0.0) {
      const double q = rec->started - rec->submitted;
      queue_sum += q;
      s.max_queueing = std::max(s.max_queueing, q);
      ++started;
    }
  }
  if (started > 0) s.mean_queueing = queue_sum / static_cast<double>(started);
  if (first_submit_ >= 0.0 && last_finish_ > first_submit_) {
    s.makespan = last_finish_ - first_submit_;
    const double busy = slot_seconds_at_last_finish_ - slot_seconds_at_first_submit_;
    const double capacity = static_cast<double>(ledger_.total_slots()) * s.makespan;
    if (capacity > 0.0) s.avg_utilization = busy / capacity;
  }
  return s;
}

void JobService::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Join runner threads that have finished.
    while (!finished_unjoined_.empty()) {
      const JobId id = finished_unjoined_.back();
      finished_unjoined_.pop_back();
      std::thread t = std::move(jobs_.at(id)->runner);
      lk.unlock();
      if (t.joinable()) t.join();
      lk.lock();
    }

    expire_deadlines_locked();
    while (try_admit_head_locked()) {
    }

    if (stop_dispatcher_ && queue_.empty() && running_jobs_ == 0 &&
        finished_unjoined_.empty()) {
      break;
    }

    // Sleep until woken (submit / completion / cancel / stop), the
    // earliest pending deadline, or the earliest retry-backoff gate,
    // whichever comes first.
    double next_deadline = 0.0;
    for (const auto& [id, rec] : jobs_) {
      if (is_terminal(rec->state) || rec->deadline_at <= 0.0) continue;
      // Once the cancel token is set there is nothing left for the
      // dispatcher to do about this deadline — the runner observes the
      // token and notifies on completion. This covers kAdmitted too: a
      // deadline can expire in the window after admission but before
      // the runner thread takes mu_ and flips the state to kRunning.
      if (rec->cancel_token.load()) continue;
      if (next_deadline <= 0.0 || rec->deadline_at < next_deadline) {
        next_deadline = rec->deadline_at;
      }
    }
    const double t_gate = now();
    for (const JobId qid : queue_) {
      const double gate = jobs_.at(qid)->earliest_admit;
      if (gate > t_gate && (next_deadline <= 0.0 || gate < next_deadline)) {
        next_deadline = gate;
      }
    }
    if (next_deadline > 0.0) {
      // Clamp below by 1 ms: even if some non-terminal job's deadline
      // is already past (it will be expired or cancelled on the next
      // pass), the dispatcher must release mu_ before looping so runner
      // threads blocked on it can make progress — re-looping while
      // holding the lock live-locks the whole service.
      const double wait = std::max(1e-3, next_deadline - now());
      dispatch_cv_.wait_for(lk, std::chrono::duration<double>(wait));
    } else {
      dispatch_cv_.wait(lk);
    }
  }
}

void JobService::expire_deadlines_locked() {
  const double t = now();
  // Queued jobs past their deadline fail without ever running.
  for (auto it = queue_.begin(); it != queue_.end();) {
    JobRecord& rec = *jobs_.at(*it);
    if (rec.deadline_at > 0.0 && t >= rec.deadline_at) {
      it = queue_.erase(it);
      note_queue_locked();
      finish_job_locked(rec, JobState::kFailed,
                        Status::deadline_exceeded("deadline expired after " +
                                                  std::to_string(rec.sub.deadline) +
                                                  " s in queue"));
      state_cv_.notify_all();
    } else {
      ++it;
    }
  }
  // Running jobs past their deadline get a cooperative stop; the runner
  // maps the engine's CANCELLED into FAILED/DEADLINE_EXCEEDED.
  for (const auto& [id, rec] : jobs_) {
    if (rec->state != JobState::kRunning && rec->state != JobState::kAdmitted) continue;
    if (rec->deadline_at <= 0.0 || t < rec->deadline_at) continue;
    if (rec->cancel_token.load(std::memory_order_acquire)) continue;
    if (rec->pending_stop.is_ok()) {
      rec->pending_stop = Status::deadline_exceeded(
          "deadline expired after " + std::to_string(rec->sub.deadline) + " s");
    }
    rec->cancel_token.store(true, std::memory_order_release);
  }
}

bool JobService::try_admit_head_locked() {
  if (queue_.empty()) return false;
  // The effective head is the first job whose retry-backoff gate has
  // passed; jobs still backing off are overtaken, everything else
  // stays strict FIFO (no fit-based overtaking).
  const double t = now();
  const auto head_it = std::find_if(queue_.begin(), queue_.end(), [&](JobId qid) {
    return jobs_.at(qid)->earliest_admit <= t;
  });
  if (head_it == queue_.end()) return false;  // everyone is backing off
  JobRecord& rec = *jobs_.at(*head_it);

  const std::vector<int> free = ledger_.free_snapshot();
  const int leased = ledger_.outstanding_total();
  const std::vector<int> offer =
      admission_offer(options_.admission, free, ledger_.total_slots(), leased);
  if (offer.empty()) return false;  // policy says wait

  // The cluster is maximally available when nothing is leased — if the
  // head cannot be planned against THIS offer it never will be, so fail
  // it instead of head-blocking the queue forever.
  const bool maximal_offer = leased == 0;

  const cluster::Cluster view = cluster::Cluster::from_slots(offer);
  scheduler::DittoScheduler sched;
  auto plan = sched.schedule(rec.sub.model_dag, view, rec.sub.objective, options_.external);
  if (!plan.ok()) {
    if (maximal_offer) {
      queue_.erase(head_it);
      note_queue_locked();
      finish_job_locked(rec, JobState::kFailed,
                        Status::unavailable("job does not fit the cluster under policy " +
                                            std::string(admission_policy_name(
                                                options_.admission.policy)) +
                                            ": " + plan.status().message()));
      state_cv_.notify_all();
      return true;
    }
    return false;  // wait for completions to widen the offer
  }

  // Deadline infeasibility: the plan's own time model says this job
  // cannot make its deadline — fail fast instead of running doomed.
  if (options_.reject_infeasible && rec.deadline_at > 0.0 &&
      plan->predicted.jct > rec.deadline_at - now()) {
    if (maximal_offer) {
      queue_.erase(head_it);
      note_queue_locked();
      std::ostringstream why;
      why << "infeasible: predicted JCT " << plan->predicted.jct
          << " s exceeds remaining deadline " << std::max(0.0, rec.deadline_at - now()) << " s";
      finish_job_locked(rec, JobState::kFailed, Status::deadline_exceeded(why.str()));
      state_cv_.notify_all();
      return true;
    }
    return false;  // a wider offer after completions may still make it
  }

  const std::vector<int> demand =
      cluster::slot_demand(plan->placement, cluster_->num_servers());
  auto lease = ledger_.acquire(demand);
  if (!lease.ok()) return false;  // cannot happen under mu_; be safe

  // Charge the job's modeled shared-memory footprint per server.
  std::vector<Bytes> charge;
  if (options_.account_arena) {
    charge = arena_demand(rec.sub.model_dag, plan->placement, cluster_->num_servers());
    for (std::size_t v = 0; v < charge.size(); ++v) {
      if (charge[v] == 0) continue;
      const Status st = cluster_->server(v).arena().reserve(charge[v]);
      if (!st.is_ok()) {
        // Unwind and either wait for memory or fail permanently.
        for (std::size_t u = 0; u < v; ++u) {
          if (charge[u] > 0) cluster_->server(u).arena().release(charge[u]);
        }
        const Status released = lease->release();
        (void)released;
        if (maximal_offer) {
          queue_.erase(head_it);
          note_queue_locked();
          finish_job_locked(rec, JobState::kFailed, st);
          state_cv_.notify_all();
          return true;
        }
        return false;
      }
    }
  }

  rec.lease = std::move(*lease);
  rec.arena_charge = std::move(charge);
  rec.plan = std::move(plan->placement);
  rec.state = JobState::kAdmitted;
  rec.admitted = now();
  queue_.erase(head_it);
  note_queue_locked();
  if (options_.journal != nullptr && rec.jid != 0) {
    const Status journaled = options_.journal->append_admit(rec.jid);
    (void)journaled;  // best effort: a lost ADMIT only re-plans on recovery
  }
  ++running_jobs_;
  rec.runner = std::thread(&JobService::run_job, this, &rec);
  state_cv_.notify_all();
  return true;
}

void JobService::run_job(JobRecord* rec) {
  exec::EngineOptions opts;
  storage::ObjectStore* store = store_;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rec->state = JobState::kRunning;
    rec->started = now();
    opts.resilience = rec->sub.resilience;
    opts.pools = &pools_;
    // Exchange keys are namespaced by the job's durable identity (jid
    // when journaled, else the in-memory id) and, past epoch 0, by the
    // run epoch — so a crash re-run or job retry never reads the dead
    // attempt's partial publishes. Epoch 0 keeps the legacy prefix.
    const std::uint64_t eid = rec->jid != 0 ? rec->jid : rec->id;
    std::string prefix = "job-" + std::to_string(eid);
    if (rec->epoch > 0) prefix += "e" + std::to_string(rec->epoch);
    opts.exchange_prefix = prefix + "/" + rec->sub.dag.name();
    opts.cancel = &rec->cancel_token;
    if (options_.journal != nullptr && rec->jid != 0) {
      const Status journaled = options_.journal->append_start(rec->jid, rec->epoch);
      (void)journaled;  // best effort: a lost START degrades to resubmit
    }
    if (options_.profiling) {
      opts.profiles = &profiles_;
      opts.plan_fingerprint = structural_fingerprint(rec->sub.model_dag);
      const ExecTimePredictor predictor(rec->sub.model_dag);
      const ColocatedFn colocated = rec->plan.colocated_fn();
      opts.predicted_stage_seconds.resize(rec->sub.model_dag.num_stages(), 0.0);
      for (StageId s = 0; s < rec->sub.model_dag.num_stages(); ++s) {
        opts.predicted_stage_seconds[s] =
            predictor.stage_time(s, std::max(1, rec->plan.dop_of(s)), colocated);
      }
    }
    if (rec->sub.faults.any()) {
      rec->injector = std::make_unique<faults::FaultInjector>(rec->sub.faults);
      rec->flaky = std::make_unique<faults::FlakyStore>(*store_, *rec->injector);
      opts.injector = rec->injector.get();
      store = rec->flaky.get();
    }
  }
  state_cv_.notify_all();

  exec::MiniEngine engine(rec->sub.dag, rec->plan, *store, opts);
  auto result = engine.run(rec->sub.bindings);

  // Durable answers: persist sink bytes before the FINISH transition is
  // journaled, so "journal says DONE" implies the bytes survived. Done
  // outside mu_ — serialization and the put can be slow.
  Status persist_st = Status::ok();
  if (result.ok() && options_.persist_sinks) {
    for (const auto& [stage, table] : result->sink_outputs) {
      const shm::Buffer bytes = exec::serialize_table(table);
      persist_st = store_->put(
          options_.sink_prefix + "/" + rec->sub.label + "/stage-" + std::to_string(stage),
          bytes.view());
      if (!persist_st.is_ok()) break;
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (result.ok() && !persist_st.is_ok()) {
      // Completing with volatile results would break recovery's
      // contract; fail (retriably, if UNAVAILABLE) instead.
      result = persist_st;
    }
    if (result.ok()) {
      rec->sinks = std::move(result->sink_outputs);
      rec->stats = result->stats;
      finish_job_locked(*rec, JobState::kDone, Status::ok());
    } else if (result.status().code() == StatusCode::kCancelled) {
      const Status why =
          rec->pending_stop.is_ok() ? Status::cancelled("cancelled by caller") : rec->pending_stop;
      const JobState terminal = why.code() == StatusCode::kDeadlineExceeded
                                    ? JobState::kFailed
                                    : JobState::kCancelled;
      finish_job_locked(*rec, terminal, why);
    } else if (faults::RetryPolicy::retriable(result.status().code()) &&
               rec->attempt < rec->sub.job_attempts &&
               !rec->cancel_token.load(std::memory_order_acquire)) {
      // Whole-job retry: release everything, go back through admission
      // after a capped jittered backoff, re-run under a fresh epoch.
      release_resources_locked(*rec);
      --running_jobs_;
      const Seconds wait =
          rec->sub.job_backoff.backoff(rec->attempt, faults::site_salt(rec->sub.label.c_str()));
      rec->earliest_admit = now() + wait;
      ++rec->attempt;
      ++rec->epoch;
      rec->state = JobState::kQueued;
      rec->error = Status::ok();
      rec->sinks.clear();
      rec->stats = exec::EngineStats{};
      enqueue_locked(rec->id, rec->sub.tier);
      note_queue_locked();
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      if (mx.enabled()) {
        mx.counter("service.job_retries", {{"tier", rec->sub.tier}}).add();
      }
    } else {
      finish_job_locked(*rec, JobState::kFailed, result.status());
    }
    finished_unjoined_.push_back(rec->id);
  }
  if (options_.profiling && options_.persist_profiles) {
    // Outside mu_: the profile store has its own lock and the object
    // store is thread-safe. Persistence is best effort.
    const Status saved = profiles_.save(*store_, options_.profile_prefix);
    (void)saved;
  }
  state_cv_.notify_all();
  dispatch_cv_.notify_all();
}

void JobService::finish_job_locked(JobRecord& rec, JobState state, Status error) {
  const bool was_active =
      rec.state == JobState::kAdmitted || rec.state == JobState::kRunning;
  rec.state = state;
  rec.error = std::move(error);
  rec.finished = now();
  release_resources_locked(rec);
  if (was_active) --running_jobs_;
  last_finish_ = std::max(last_finish_, rec.finished);
  slot_seconds_at_last_finish_ = ledger_.slot_seconds();
  if (options_.journal != nullptr && rec.jid != 0) {
    const Status journaled = options_.journal->append_finish(
        rec.jid, job_state_name(rec.state), rec.error.message());
    (void)journaled;  // best effort: a lost FINISH costs one safe re-run
  }
  observe_terminal_locked(rec);
}

void JobService::observe_terminal_locked(const JobRecord& rec) {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  const char* policy = admission_policy_name(options_.admission.policy);
  if (mx.enabled()) {
    const obs::MetricLabels labels{{"policy", policy},
                                   {"state", job_state_name(rec.state)}};
    mx.counter("service.jobs", labels).add();
    mx.gauge("service.running_jobs", {{"policy", policy}})
        .set(static_cast<double>(running_jobs_));
    if (rec.state == JobState::kDone) {
      const obs::MetricLabels plabels{{"policy", policy}};
      mx.histogram("service.queueing_seconds", 0.0, 60.0, 60, plabels)
          .observe(rec.started - rec.submitted);
      mx.histogram("service.jct_seconds", 0.0, 600.0, 60, plabels)
          .observe(rec.finished - rec.submitted);
    }
  }
  obs::TraceCollector& tc = obs::TraceCollector::global();
  if (tc.enabled()) {
    // One span per job on the job-level track (pid -1), covering
    // submission to terminal state, labeled for the viewer.
    const auto us = [](Seconds s) { return static_cast<std::uint64_t>(s * 1e6); };
    tc.span("service.job", rec.sub.label.empty() ? ("job-" + std::to_string(rec.id))
                                                 : rec.sub.label,
            us(rec.submitted), us(rec.finished - rec.submitted), -1,
            static_cast<std::int64_t>(rec.id),
            {{"state", job_state_name(rec.state)},
             {"policy", policy},
             {"queueing_s", std::to_string(std::max(0.0, rec.started - rec.submitted))}});
  }
}

void JobService::release_resources_locked(JobRecord& rec) {
  if (rec.lease.active()) {
    const Status released = rec.lease.release();
    (void)released;  // ledger-validated; cannot fail for an active lease
  }
  for (std::size_t v = 0; v < rec.arena_charge.size(); ++v) {
    if (rec.arena_charge[v] > 0) cluster_->server(v).arena().release(rec.arena_charge[v]);
  }
  rec.arena_charge.clear();
}

std::vector<JobService::JobSnapshotRow> JobService::jobs_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobSnapshotRow> rows;
  rows.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) {
    JobSnapshotRow row;
    row.id = rec->id;
    row.label = rec->sub.label;
    row.state = rec->state;
    if (!rec->error.is_ok()) row.error = rec->error.message();
    row.submitted = rec->submitted;
    row.started = rec->started;
    row.finished = rec->finished;
    for (const auto& ts : rec->plan.task_server) {
      row.slots_granted += static_cast<int>(ts.size());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

JobOutcome JobService::outcome_of_locked(const JobRecord& rec) const {
  JobOutcome out;
  out.id = rec.id;
  out.label = rec.sub.label;
  out.state = rec.state;
  out.error = rec.error;
  out.submitted = rec.submitted;
  out.admitted = rec.admitted;
  out.started = rec.started;
  out.finished = rec.finished;
  out.slots_granted = 0;
  for (const auto& row : rec.plan.task_server) out.slots_granted += static_cast<int>(row.size());
  out.plan = rec.plan;
  out.sink_outputs = rec.sinks;
  out.stats = rec.stats;
  out.tier = rec.sub.tier;
  out.attempts = rec.attempt;
  out.epoch = rec.epoch;
  out.jid = rec.jid;
  return out;
}

}  // namespace ditto::service
