#include "service/job_service.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "dag/dag_algorithms.h"
#include "exec/serde.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scheduler/ditto_scheduler.h"
#include "timemodel/predictor.h"

namespace ditto::service {
namespace {

std::vector<int> slot_widths(const cluster::Cluster& cluster) {
  std::vector<int> widths(cluster.num_servers(), 1);
  for (std::size_t v = 0; v < cluster.num_servers(); ++v) {
    widths[v] = cluster.server(v).total_slots();
  }
  return widths;
}

/// Per-server shared-memory bytes a job's intermediates occupy: each
/// task materializes output_bytes / dop of its stage's output on its
/// server. A modeling charge (the engine's tables live on the heap),
/// but it makes arena accounting observable and reclaimable per job.
std::vector<Bytes> arena_demand(const JobDag& model_dag, const cluster::PlacementPlan& plan,
                                std::size_t servers) {
  std::vector<Bytes> demand(servers, 0);
  for (StageId s = 0; s < plan.task_server.size(); ++s) {
    if (s >= model_dag.num_stages()) break;
    const int dop = plan.dop_of(s);
    if (dop <= 0) continue;
    const Bytes per_task = model_dag.stage(s).output_bytes() / dop;
    for (ServerId v : plan.task_server[s]) {
      if (v != kNoServer && v < servers) demand[v] += per_task;
    }
  }
  return demand;
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kAdmitted: return "ADMITTED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed || s == JobState::kCancelled;
}

std::string ServiceSummary::to_text() const {
  std::ostringstream out;
  out << "jobs: " << submitted << " submitted, " << done << " done, " << failed << " failed, "
      << cancelled << " cancelled\n";
  out << "queueing: mean " << mean_queueing << " s, max " << max_queueing << " s\n";
  out << "makespan: " << makespan << " s, avg slot utilization "
      << static_cast<int>(avg_utilization * 100.0 + 0.5) << "%\n";
  return out.str();
}

JobService::JobService(cluster::Cluster& cluster, storage::ObjectStore& store,
                       ServiceOptions options)
    : cluster_(&cluster),
      store_(&store),
      options_(std::move(options)),
      ledger_(cluster),
      pools_(slot_widths(cluster)) {
  if (options_.persist_profiles) {
    // Best effort: a fresh store simply has no profiles yet, and a
    // corrupt object must not keep the service from starting.
    const Status loaded = profiles_.load(*store_, options_.profile_prefix);
    (void)loaded;
  }
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_bytes);
    if (options_.persist_cache) {
      // Same best-effort contract as profiles: a warm cache is an
      // optimization, never a startup requirement.
      const Status loaded = cache_->load(*store_, options_.cache_prefix);
      (void)loaded;
    }
  }
  dispatcher_ = std::thread(&JobService::dispatcher_loop, this);
}

JobService::~JobService() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_dispatcher_ = true;
  }
  dispatch_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher joins runners as they finish; anything still
  // unjoined after its exit is collected here.
  for (auto& [id, rec] : jobs_) {
    if (rec->runner.joinable()) rec->runner.join();
  }
}

Result<JobId> JobService::submit(JobSubmission sub) {
  if (sub.dag.num_stages() == 0) {
    return Status::invalid_argument("job DAG has no stages");
  }
  if (sub.model_dag.num_stages() != sub.dag.num_stages()) {
    return Status::invalid_argument("model DAG does not match executable DAG (" +
                                    std::to_string(sub.model_dag.num_stages()) + " vs " +
                                    std::to_string(sub.dag.num_stages()) + " stages)");
  }
  if (sub.tier != "latency" && sub.tier != "batch") {
    return Status::invalid_argument("bad tier '" + sub.tier + "' (latency|batch)");
  }
  if (sub.job_attempts < 1) {
    return Status::invalid_argument("job_attempts must be >= 1");
  }
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (intake_closed_) {
      return Status::failed_precondition("job service is draining; intake closed");
    }
    // Result-cache pre-probe. A whole-job hit is served without a queue
    // slot and an in-flight duplicate attaches to its leader, so
    // neither participates in overload shedding below.
    const bool cache_on = cache_ != nullptr && sub.cache_id.enabled();
    bool whole_hit = false;
    JobId leader_id = 0;
    if (cache_on) {
      whole_hit = true;
      bool any_sink = false;
      for (StageId s = 0; s < sub.dag.num_stages(); ++s) {
        if (!sub.dag.children(s).empty()) continue;
        any_sink = true;
        if (!cache_->contains(sub.cache_id, s)) {
          whole_hit = false;
          break;
        }
      }
      if (!any_sink) whole_hit = false;
      if (!whole_hit) {
        const auto in = inflight_.find(sub.cache_id);
        if (in != inflight_.end()) {
          const auto lit = jobs_.find(in->second);
          if (lit != jobs_.end() && !is_terminal(lit->second->state)) leader_id = in->second;
        }
      }
    }
    if (!whole_hit && leader_id == 0 && options_.max_queue_depth > 0 &&
        queue_.size() >= options_.max_queue_depth) {
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      // Overload: shed the newest queued batch-tier job to make room
      // for a latency-tier arrival; otherwise fast-reject the arrival.
      const auto victim =
          sub.tier == "latency"
              ? std::find_if(queue_.rbegin(), queue_.rend(),
                             [&](JobId qid) { return jobs_.at(qid)->sub.tier != "latency"; })
              : queue_.rend();
      if (victim == queue_.rend()) {
        if (mx.enabled()) mx.counter("service.rejected_jobs", {{"tier", sub.tier}}).add();
        return Status::resource_exhausted(
            "admission queue full (" + std::to_string(queue_.size()) + " jobs)");
      }
      JobRecord& shed = *jobs_.at(*victim);
      queue_.erase(std::next(victim).base());
      if (mx.enabled()) mx.counter("service.shed_jobs", {{"tier", shed.sub.tier}}).add();
      finish_job_locked(shed, JobState::kFailed,
                        Status::resource_exhausted("shed under overload (batch tier, queue "
                                                   "full at depth " +
                                                   std::to_string(options_.max_queue_depth) +
                                                   ")"));
    }
    id = next_id_++;
    auto rec = std::make_unique<JobRecord>();
    rec->id = id;
    rec->sub = std::move(sub);
    if (rec->sub.label.empty()) rec->sub.label = "job-" + std::to_string(id);
    rec->submitted = now();
    if (rec->sub.deadline > 0.0) rec->deadline_at = rec->submitted + rec->sub.deadline;
    rec->epoch = rec->sub.epoch;
    if (options_.journal != nullptr && !rec->sub.spec_line.empty()) {
      auto jid = options_.journal->append_submit(rec->sub.spec_line, rec->sub.tier,
                                                rec->sub.deadline, rec->sub.jid);
      if (!jid.ok()) {
        // A job the journal never saw would be lost by a crash — refuse
        // to accept it on the quiet.
        return Status::unavailable("journal SUBMIT append failed: " + jid.status().message());
      }
      rec->jid = *jid;
    }
    if (first_submit_ < 0.0) {
      first_submit_ = rec->submitted;
      slot_seconds_at_first_submit_ = ledger_.slot_seconds();
    }
    const std::string tier = rec->sub.tier;
    JobRecord* raw = rec.get();
    jobs_.emplace(id, std::move(rec));
    if (whole_hit && try_serve_from_cache_locked(*raw)) {
      // Served DONE straight from cached sink bytes; never queued, no
      // engine slots occupied.
    } else if (leader_id != 0) {
      // In-flight dedupe: attach as a follower; the leader's terminal
      // transition resolves us (result copy, failure, or promotion).
      raw->leader = leader_id;
      jobs_.at(leader_id)->followers.push_back(id);
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      if (mx.enabled()) mx.counter("service.dedup_followers", {{"tier", tier}}).add();
      obs::TraceCollector& tc = obs::TraceCollector::global();
      if (tc.enabled()) {
        tc.instant("service", "dedup.attach", static_cast<std::uint64_t>(now() * 1e6), -1,
                   static_cast<std::int64_t>(id),
                   {{"leader", std::to_string(leader_id)}});
      }
    } else {
      if (cache_on) {
        inflight_[raw->sub.cache_id] = id;
        raw->inflight_registered = true;
      }
      enqueue_locked(id, tier);
      note_queue_locked();
    }
  }
  dispatch_cv_.notify_all();
  state_cv_.notify_all();  // a shed job may have just turned terminal
  return id;
}

void JobService::enqueue_locked(JobId id, const std::string& tier) {
  if (tier == "latency") {
    const auto it = std::find_if(queue_.begin(), queue_.end(), [&](JobId qid) {
      return jobs_.at(qid)->sub.tier != "latency";
    });
    queue_.insert(it, id);
  } else {
    queue_.push_back(id);
  }
}

void JobService::note_queue_locked() {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (!mx.enabled()) return;
  mx.gauge("service.queue_depth",
           {{"policy", admission_policy_name(options_.admission.policy)}})
      .set(static_cast<double>(queue_.size()));
}

Status JobService::cancel(JobId id) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::not_found("no job " + std::to_string(id));
  }
  JobRecord& rec = *it->second;
  if (is_terminal(rec.state)) {
    if (rec.state == JobState::kCancelled) return Status::ok();
    return Status::failed_precondition("job " + std::to_string(id) + " already " +
                                       job_state_name(rec.state));
  }
  if (rec.state == JobState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
    note_queue_locked();
    finish_job_locked(rec, JobState::kCancelled, Status::cancelled("cancelled while queued"));
    lk.unlock();
    state_cv_.notify_all();
    dispatch_cv_.notify_all();
    return Status::ok();
  }
  // ADMITTED/RUNNING: ask the engine to stop at the next wave boundary.
  if (rec.pending_stop.is_ok()) rec.pending_stop = Status::cancelled("cancelled by caller");
  rec.cancel_token.store(true, std::memory_order_release);
  return Status::ok();
}

Result<JobState> JobService::state(JobId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::not_found("no job " + std::to_string(id));
  return it->second->state;
}

Result<JobOutcome> JobService::wait(JobId id) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::not_found("no job " + std::to_string(id));
  JobRecord& rec = *it->second;
  state_cv_.wait(lk, [&] { return is_terminal(rec.state); });
  return outcome_of_locked(rec);
}

std::vector<JobOutcome> JobService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  intake_closed_ = true;
  dispatch_cv_.notify_all();
  state_cv_.wait(lk, [&] {
    for (const auto& [id, rec] : jobs_) {
      if (!is_terminal(rec->state)) return false;
    }
    return queue_.empty();
  });
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) outcomes.push_back(outcome_of_locked(*rec));
  return outcomes;
}

ServiceSummary JobService::summary() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceSummary s;
  s.submitted = jobs_.size();
  double queue_sum = 0.0;
  std::size_t started = 0;
  for (const auto& [id, rec] : jobs_) {
    switch (rec->state) {
      case JobState::kDone: ++s.done; break;
      case JobState::kFailed: ++s.failed; break;
      case JobState::kCancelled: ++s.cancelled; break;
      default: break;
    }
    if (rec->started > 0.0) {
      const double q = rec->started - rec->submitted;
      queue_sum += q;
      s.max_queueing = std::max(s.max_queueing, q);
      ++started;
    }
  }
  if (started > 0) s.mean_queueing = queue_sum / static_cast<double>(started);
  if (first_submit_ >= 0.0 && last_finish_ > first_submit_) {
    s.makespan = last_finish_ - first_submit_;
    const double busy = slot_seconds_at_last_finish_ - slot_seconds_at_first_submit_;
    const double capacity = static_cast<double>(ledger_.total_slots()) * s.makespan;
    if (capacity > 0.0) s.avg_utilization = busy / capacity;
  }
  return s;
}

void JobService::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Join runner threads that have finished.
    while (!finished_unjoined_.empty()) {
      const JobId id = finished_unjoined_.back();
      finished_unjoined_.pop_back();
      std::thread t = std::move(jobs_.at(id)->runner);
      lk.unlock();
      if (t.joinable()) t.join();
      lk.lock();
    }

    expire_deadlines_locked();
    admit_batch_locked();

    if (stop_dispatcher_ && queue_.empty() && running_jobs_ == 0 &&
        finished_unjoined_.empty()) {
      break;
    }

    // Sleep until woken (submit / completion / cancel / stop), the
    // earliest pending deadline, or the earliest retry-backoff gate,
    // whichever comes first.
    double next_deadline = 0.0;
    for (const auto& [id, rec] : jobs_) {
      if (is_terminal(rec->state) || rec->deadline_at <= 0.0) continue;
      // Once the cancel token is set there is nothing left for the
      // dispatcher to do about this deadline — the runner observes the
      // token and notifies on completion. This covers kAdmitted too: a
      // deadline can expire in the window after admission but before
      // the runner thread takes mu_ and flips the state to kRunning.
      if (rec->cancel_token.load()) continue;
      if (next_deadline <= 0.0 || rec->deadline_at < next_deadline) {
        next_deadline = rec->deadline_at;
      }
    }
    const double t_gate = now();
    for (const JobId qid : queue_) {
      const double gate = jobs_.at(qid)->earliest_admit;
      if (gate > t_gate && (next_deadline <= 0.0 || gate < next_deadline)) {
        next_deadline = gate;
      }
    }
    if (next_deadline > 0.0) {
      // Clamp below by 1 ms: even if some non-terminal job's deadline
      // is already past (it will be expired or cancelled on the next
      // pass), the dispatcher must release mu_ before looping so runner
      // threads blocked on it can make progress — re-looping while
      // holding the lock live-locks the whole service.
      const double wait = std::max(1e-3, next_deadline - now());
      dispatch_cv_.wait_for(lk, std::chrono::duration<double>(wait));
    } else {
      dispatch_cv_.wait(lk);
    }
  }
}

void JobService::expire_deadlines_locked() {
  const double t = now();
  // Queued jobs past their deadline fail without ever running.
  for (auto it = queue_.begin(); it != queue_.end();) {
    JobRecord& rec = *jobs_.at(*it);
    if (rec.deadline_at > 0.0 && t >= rec.deadline_at) {
      it = queue_.erase(it);
      note_queue_locked();
      finish_job_locked(rec, JobState::kFailed,
                        Status::deadline_exceeded("deadline expired after " +
                                                  std::to_string(rec.sub.deadline) +
                                                  " s in queue"));
      state_cv_.notify_all();
    } else {
      ++it;
    }
  }
  // Dedupe followers live outside queue_ (state QUEUED, attached to a
  // leader): their deadlines expire here, detaching them on the way out.
  for (const auto& [id, rec] : jobs_) {
    if (rec->state != JobState::kQueued || rec->leader == 0) continue;
    if (rec->deadline_at <= 0.0 || t < rec->deadline_at) continue;
    finish_job_locked(*rec, JobState::kFailed,
                      Status::deadline_exceeded("deadline expired after " +
                                                std::to_string(rec->sub.deadline) +
                                                " s waiting on deduplicated leader"));
    state_cv_.notify_all();
  }
  // Running jobs past their deadline get a cooperative stop; the runner
  // maps the engine's CANCELLED into FAILED/DEADLINE_EXCEEDED.
  for (const auto& [id, rec] : jobs_) {
    if (rec->state != JobState::kRunning && rec->state != JobState::kAdmitted) continue;
    if (rec->deadline_at <= 0.0 || t < rec->deadline_at) continue;
    if (rec->cancel_token.load(std::memory_order_acquire)) continue;
    if (rec->pending_stop.is_ok()) {
      rec->pending_stop = Status::deadline_exceeded(
          "deadline expired after " + std::to_string(rec->sub.deadline) + " s");
    }
    rec->cancel_token.store(true, std::memory_order_release);
  }
}

std::size_t JobService::admit_batch_locked() {
  if (queue_.empty()) return 0;
  const double t = now();
  std::size_t eligible = 0;
  for (const JobId qid : queue_) {
    if (jobs_.at(qid)->earliest_admit <= t) ++eligible;
  }
  if (eligible == 0) return 0;  // everyone is backing off

  // Batched admission: ONE ledger snapshot for the whole drainable
  // prefix. Each admitted job's demand is deducted from the local view,
  // so the batch plans against consistent numbers without re-reading
  // the ledger per job — one elastic planning pass per wakeup instead
  // of one per arrival.
  std::vector<int> free = ledger_.free_snapshot();
  int leased = ledger_.outstanding_total();
  const int total = ledger_.total_slots();

  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    const obs::MetricLabels labels{
        {"policy", admission_policy_name(options_.admission.policy)}};
    mx.counter("service.admission_passes", labels).add();
    mx.histogram("service.admission_batch", 0.0, 64.0, 32, labels)
        .observe(static_cast<double>(eligible));
  }

  std::size_t progressed = 0;
  for (;;) {
    // The effective head is the first job whose retry-backoff gate has
    // passed; jobs still backing off are overtaken, everything else
    // stays strict FIFO (no fit-based overtaking).
    const auto head_it = std::find_if(queue_.begin(), queue_.end(), [&](JobId qid) {
      return jobs_.at(qid)->earliest_admit <= t;
    });
    if (head_it == queue_.end()) break;
    JobRecord& rec = *jobs_.at(*head_it);
    const bool cache_on = cache_ != nullptr && rec.sub.cache_id.enabled();

    // A whole-job hit may have materialized while this job queued (an
    // identical job finished ahead of it): serve it slot-free.
    if (cache_on && try_serve_from_cache_locked(rec)) {
      queue_.erase(head_it);
      note_queue_locked();
      state_cv_.notify_all();
      ++progressed;
      continue;
    }

    const std::vector<int> offer = admission_offer(options_.admission, free, total, leased);
    if (offer.empty()) break;  // policy says wait

    // The cluster is maximally available when nothing is leased — if
    // the head cannot be planned against THIS offer it never will be,
    // so fail it instead of head-blocking the queue forever.
    const bool maximal_offer = leased == 0;

    // Partial hit: prune cached upstream stages before planning so the
    // scheduler sizes only the work that actually runs.
    if (cache_on && rec.pruned == nullptr && rec.attempt <= 1) {
      build_pruned_run_locked(rec);
    }
    const JobDag& model = rec.pruned != nullptr ? rec.pruned->model : rec.sub.model_dag;

    const cluster::Cluster view = cluster::Cluster::from_slots(offer);
    scheduler::DittoScheduler sched;
    auto plan = sched.schedule(model, view, rec.sub.objective, options_.external);
    if (!plan.ok()) {
      if (maximal_offer) {
        queue_.erase(head_it);
        note_queue_locked();
        finish_job_locked(rec, JobState::kFailed,
                          Status::unavailable("job does not fit the cluster under policy " +
                                              std::string(admission_policy_name(
                                                  options_.admission.policy)) +
                                              ": " + plan.status().message()));
        state_cv_.notify_all();
        ++progressed;
        continue;
      }
      break;  // wait for completions to widen the offer
    }

    // Deadline infeasibility: the plan's own time model says this job
    // cannot make its deadline — fail fast instead of running doomed.
    if (options_.reject_infeasible && rec.deadline_at > 0.0 &&
        plan->predicted.jct > rec.deadline_at - now()) {
      if (maximal_offer) {
        queue_.erase(head_it);
        note_queue_locked();
        std::ostringstream why;
        why << "infeasible: predicted JCT " << plan->predicted.jct
            << " s exceeds remaining deadline " << std::max(0.0, rec.deadline_at - now())
            << " s";
        finish_job_locked(rec, JobState::kFailed, Status::deadline_exceeded(why.str()));
        state_cv_.notify_all();
        ++progressed;
        continue;
      }
      break;  // a wider offer after completions may still make it
    }

    const std::vector<int> demand =
        cluster::slot_demand(plan->placement, cluster_->num_servers());
    auto lease = ledger_.acquire(demand);
    if (!lease.ok()) break;  // cannot happen under mu_; be safe

    // Charge the job's modeled shared-memory footprint per server.
    std::vector<Bytes> charge;
    bool arena_ok = true;
    if (options_.account_arena) {
      charge = arena_demand(model, plan->placement, cluster_->num_servers());
      for (std::size_t v = 0; v < charge.size(); ++v) {
        if (charge[v] == 0) continue;
        const Status st = cluster_->server(v).arena().reserve(charge[v]);
        if (!st.is_ok()) {
          // Unwind and either wait for memory or fail permanently.
          for (std::size_t u = 0; u < v; ++u) {
            if (charge[u] > 0) cluster_->server(u).arena().release(charge[u]);
          }
          const Status released = lease->release();
          (void)released;
          if (maximal_offer) {
            queue_.erase(head_it);
            note_queue_locked();
            finish_job_locked(rec, JobState::kFailed, st);
            state_cv_.notify_all();
            ++progressed;
          }
          arena_ok = false;
          break;
        }
      }
    }
    if (!arena_ok) {
      if (maximal_offer) continue;  // progressed above; try the next head
      break;                        // wait for memory
    }

    rec.lease = std::move(*lease);
    rec.arena_charge = std::move(charge);
    rec.plan = std::move(plan->placement);
    rec.state = JobState::kAdmitted;
    rec.admitted = now();
    queue_.erase(head_it);
    note_queue_locked();
    if (options_.journal != nullptr && rec.jid != 0) {
      const Status journaled = options_.journal->append_admit(rec.jid);
      (void)journaled;  // best effort: a lost ADMIT only re-plans on recovery
    }
    ++running_jobs_;
    rec.runner = std::thread(&JobService::run_job, this, &rec);
    state_cv_.notify_all();
    // Deduct locally so the rest of the batch plans against what
    // remains of the snapshot.
    for (std::size_t v = 0; v < free.size() && v < demand.size(); ++v) {
      free[v] -= demand[v];
      leased += demand[v];
    }
    ++progressed;
  }
  return progressed;
}

bool JobService::try_serve_from_cache_locked(JobRecord& rec) {
  if (cache_ == nullptr || !rec.sub.cache_id.enabled()) return false;
  std::map<StageId, exec::Table> sinks;
  std::vector<std::pair<StageId, std::shared_ptr<const std::string>>> raw;
  double slot_seconds = 0.0;
  for (StageId s = 0; s < rec.sub.dag.num_stages(); ++s) {
    if (!rec.sub.dag.children(s).empty()) continue;
    auto hit = cache_->lookup(rec.sub.cache_id, s);
    if (!hit.has_value()) return false;
    auto table = exec::deserialize_table(std::string_view(*hit->bytes));
    if (!table.ok()) {
      // Corrupt entry: drop it so the job (and future ones) run cold.
      cache_->remove(rec.sub.cache_id, s);
      return false;
    }
    sinks.emplace(s, std::move(*table));
    raw.emplace_back(s, hit->bytes);
    slot_seconds = std::max(slot_seconds, hit->slot_seconds);
  }
  if (sinks.empty()) return false;
  if (options_.persist_sinks) {
    // Durability first: a hit must leave the same on-store sink bytes a
    // cold run would, or recovery's convergence contract breaks. On
    // failure the job runs normally instead.
    for (const auto& [stage, bytes] : raw) {
      const Status st = store_->put(options_.sink_prefix + "/" + rec.sub.label + "/stage-" +
                                        std::to_string(stage),
                                    *bytes);
      if (!st.is_ok()) return false;
    }
  }
  rec.admitted = now();
  rec.started = rec.admitted;
  rec.sinks = std::move(sinks);
  rec.from_cache = true;
  rec.cache_counted = true;
  rec.reused_stages = raw.size();
  cache_->note_hit(slot_seconds);
  obs::TraceCollector& tc = obs::TraceCollector::global();
  if (tc.enabled()) {
    tc.instant("service", "cache.hit", static_cast<std::uint64_t>(now() * 1e6), -1,
               static_cast<std::int64_t>(rec.id), {{"job", rec.sub.label}});
  }
  finish_job_locked(rec, JobState::kDone, Status::ok());
  return true;
}

void JobService::build_pruned_run_locked(JobRecord& rec) {
  const JobDag& dag = rec.sub.dag;
  const auto miss = [&] {
    if (!rec.cache_counted) {
      cache_->note_miss();
      rec.cache_counted = true;
    }
  };

  // Stages feeding a gather edge are never reused: gather routes
  // producer task i to consumer task i, and a replayed producer
  // collapses to a single task.
  std::vector<bool> gather_out(dag.num_stages(), false);
  for (const Edge& e : dag.edges()) {
    if (e.exchange == ExchangeKind::kGather) gather_out[e.src] = true;
  }
  std::vector<bool> completed(dag.num_stages(), false);
  std::size_t ncomp = 0;
  for (StageId s = 0; s < dag.num_stages(); ++s) {
    if (gather_out[s]) continue;
    if (cache_->contains(rec.sub.cache_id, s)) {
      completed[s] = true;
      ++ncomp;
    }
  }
  if (ncomp == 0) {
    miss();
    return;
  }

  auto pruning = prune_completed_stages(dag, completed);
  auto model_pruning = pruning.ok() ? prune_completed_stages(rec.sub.model_dag, completed)
                                    : Result<DagPruning>(pruning.status());
  if (!pruning.ok() || !model_pruning.ok()) {
    // e.g. "every sink completed" after a failed whole-hit serve, or a
    // gather edge the mask missed — run the full DAG.
    miss();
    return;
  }

  auto pr = std::make_unique<PrunedRun>();
  pr->dag = std::move(pruning->dag);
  pr->model = std::move(model_pruning->dag);
  pr->to_old = std::move(pruning->to_old);
  pr->is_replay = std::move(pruning->is_replay);
  double hit_slot_seconds = 0.0;

  // Remap a binding's per-consumer partition keys into pruned ids.
  const auto remap_edge_keys = [&](const exec::StageBinding& old_b, exec::StageBinding& b) {
    b.output_key = old_b.output_key;
    for (const auto& [consumer, key] : old_b.edge_keys) {
      if (consumer < pruning->to_new.size() && pruning->to_new[consumer] != kNoStage) {
        b.edge_keys[pruning->to_new[consumer]] = key;
      }
    }
  };

  for (StageId ns = 0; ns < pr->dag.num_stages(); ++ns) {
    const StageId old = pr->to_old[ns];
    const auto ob = rec.sub.bindings.find(old);
    exec::StageBinding b;
    if (pr->is_replay[ns]) {
      auto hit = cache_->lookup(rec.sub.cache_id, old);
      if (!hit.has_value()) {  // raced an eviction: give up pruning
        miss();
        return;
      }
      auto table = exec::deserialize_table(std::string_view(*hit->bytes));
      if (!table.ok()) {
        cache_->remove(rec.sub.cache_id, old);
        miss();
        return;
      }
      hit_slot_seconds = std::max(hit_slot_seconds, hit->slot_seconds);
      // Replay source: task 0 emits the cached table, the rest emit a
      // schema-preserving empty slice. The stable scatter then
      // reproduces the cold run's partitions byte-for-byte.
      auto shared = std::make_shared<exec::Table>(std::move(*table));
      b.fn = [shared](int task, int, const std::vector<exec::Table>&) -> Result<exec::Table> {
        if (task == 0) return *shared;
        return shared->slice(0, 0);
      };
      if (ob != rec.sub.bindings.end()) remap_edge_keys(ob->second, b);
    } else {
      if (ob == rec.sub.bindings.end()) {
        miss();
        return;
      }
      b.fn = ob->second.fn;
      remap_edge_keys(ob->second, b);
    }
    pr->bindings.emplace(ns, std::move(b));
  }

  // Completed sinks were dropped from the pruned DAG entirely; decode
  // them now and merge into the outcome after the run.
  for (StageId s = 0; s < dag.num_stages(); ++s) {
    if (!completed[s] || !dag.children(s).empty()) continue;
    auto hit = cache_->lookup(rec.sub.cache_id, s);
    if (!hit.has_value()) {
      miss();
      return;
    }
    auto table = exec::deserialize_table(std::string_view(*hit->bytes));
    if (!table.ok()) {
      cache_->remove(rec.sub.cache_id, s);
      miss();
      return;
    }
    hit_slot_seconds = std::max(hit_slot_seconds, hit->slot_seconds);
    pr->cached_sinks.emplace(s, std::move(*table));
  }

  // Surviving non-sink stages are re-captured so a later identical
  // submission upgrades to a whole-job hit.
  for (StageId ns = 0; ns < pr->dag.num_stages(); ++ns) {
    if (pr->is_replay[ns]) continue;
    if (pr->dag.children(ns).empty()) continue;  // sinks return anyway
    if (!gather_out[pr->to_old[ns]]) pr->capture_stages.push_back(ns);
  }

  pr->reused_stages = ncomp;
  pr->slot_seconds_estimate = hit_slot_seconds * static_cast<double>(ncomp) /
                              static_cast<double>(dag.num_stages());
  cache_->note_partial_hit(pr->slot_seconds_estimate);
  rec.cache_counted = true;
  rec.reused_stages = pr->reused_stages;
  obs::TraceCollector& tc = obs::TraceCollector::global();
  if (tc.enabled()) {
    tc.instant("service", "cache.partial_hit", static_cast<std::uint64_t>(now() * 1e6), -1,
               static_cast<std::int64_t>(rec.id),
               {{"job", rec.sub.label}, {"reused_stages", std::to_string(ncomp)}});
  }
  rec.pruned = std::move(pr);
}

void JobService::run_job(JobRecord* rec) {
  exec::EngineOptions opts;
  storage::ObjectStore* store = store_;
  // A partial cache hit swaps in the pruned DAG/model/bindings built at
  // admission; rec->pruned is stable for the whole run (only the
  // dispatcher writes it, and only while the job is queued).
  const PrunedRun* pruned = rec->pruned.get();
  const JobDag& run_dag = pruned != nullptr ? pruned->dag : rec->sub.dag;
  const JobDag& run_model = pruned != nullptr ? pruned->model : rec->sub.model_dag;
  const std::map<StageId, exec::StageBinding>& run_bindings =
      pruned != nullptr ? pruned->bindings : rec->sub.bindings;
  bool cache_on = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rec->state = JobState::kRunning;
    rec->started = now();
    cache_on = cache_ != nullptr && rec->sub.cache_id.enabled();
    opts.resilience = rec->sub.resilience;
    opts.pools = &pools_;
    // Exchange keys are namespaced by the job's durable identity (jid
    // when journaled, else the in-memory id) and, past epoch 0, by the
    // run epoch — so a crash re-run or job retry never reads the dead
    // attempt's partial publishes. Epoch 0 keeps the legacy prefix.
    const std::uint64_t eid = rec->jid != 0 ? rec->jid : rec->id;
    std::string prefix = "job-" + std::to_string(eid);
    if (rec->epoch > 0) prefix += "e" + std::to_string(rec->epoch);
    opts.exchange_prefix = prefix + "/" + run_dag.name();
    opts.cancel = &rec->cancel_token;
    if (options_.journal != nullptr && rec->jid != 0) {
      const Status journaled = options_.journal->append_start(rec->jid, rec->epoch);
      (void)journaled;  // best effort: a lost START degrades to resubmit
    }
    if (options_.profiling) {
      opts.profiles = &profiles_;
      opts.plan_fingerprint = structural_fingerprint(run_model);
      ExecTimePredictor predictor(run_model);
      // The service engine materializes every exchange (shared pools
      // force wave mode), so predictions must ignore any pipelining
      // annotations on the model — otherwise the model credits an
      // overlap the runtime never delivers and timemodel.rel_error is
      // inflated on every annotated shuffle stage.
      predictor.set_honor_pipelining(false);
      const ColocatedFn colocated = rec->plan.colocated_fn();
      opts.predicted_stage_seconds.resize(run_model.num_stages(), 0.0);
      for (StageId s = 0; s < run_model.num_stages(); ++s) {
        opts.predicted_stage_seconds[s] =
            predictor.stage_time(s, std::max(1, rec->plan.dop_of(s)), colocated);
      }
    }
    if (cache_on) {
      // Capture intermediate outputs for the cache. Stages feeding a
      // gather edge are excluded (their outputs cannot be replayed).
      if (pruned != nullptr) {
        opts.capture_stages = pruned->capture_stages;
      } else {
        std::vector<bool> gather_out(run_dag.num_stages(), false);
        for (const Edge& e : run_dag.edges()) {
          if (e.exchange == ExchangeKind::kGather) gather_out[e.src] = true;
        }
        for (StageId s = 0; s < run_dag.num_stages(); ++s) {
          if (run_dag.children(s).empty() || gather_out[s]) continue;
          opts.capture_stages.push_back(s);
        }
      }
    }
    if (rec->sub.faults.any()) {
      rec->injector = std::make_unique<faults::FaultInjector>(rec->sub.faults);
      rec->flaky = std::make_unique<faults::FlakyStore>(*store_, *rec->injector);
      opts.injector = rec->injector.get();
      store = rec->flaky.get();
    }
  }
  state_cv_.notify_all();

  exec::MiniEngine engine(run_dag, rec->plan, *store, opts);
  auto result = engine.run(run_bindings);

  // Pruned run: translate outputs back into the submission's stage ids
  // and merge the cached sinks the pruning dropped, so callers (and the
  // persisted sink layout) never see pruned ids.
  if (result.ok() && pruned != nullptr) {
    std::map<StageId, exec::Table> sinks;
    for (auto& [ns, table] : result->sink_outputs) {
      sinks.emplace(pruned->to_old.at(ns), std::move(table));
    }
    for (const auto& [olds, table] : pruned->cached_sinks) sinks.emplace(olds, table);
    result->sink_outputs = std::move(sinks);
    std::map<StageId, exec::Table> captured;
    for (auto& [ns, table] : result->captured_outputs) {
      captured.emplace(pruned->to_old.at(ns), std::move(table));
    }
    result->captured_outputs = std::move(captured);
  }

  // Durable answers: persist sink bytes before the FINISH transition is
  // journaled, so "journal says DONE" implies the bytes survived. Done
  // outside mu_ — serialization and the put can be slow.
  Status persist_st = Status::ok();
  if (result.ok() && options_.persist_sinks) {
    for (const auto& [stage, table] : result->sink_outputs) {
      const shm::Buffer bytes = exec::serialize_table(table);
      persist_st = store_->put(
          options_.sink_prefix + "/" + rec->sub.label + "/stage-" + std::to_string(stage),
          bytes.view());
      if (!persist_st.is_ok()) break;
    }
  }

  // Feed the cache (outside mu_ — serialization can be slow; the cache
  // has its own lock). Sinks and captured intermediates are stored in
  // submission ids; the whole run's slot-seconds ride along so a later
  // hit can report what it saved.
  if (result.ok() && persist_st.is_ok() && cache_on) {
    int slots = 0;
    for (const auto& row : rec->plan.task_server) slots += static_cast<int>(row.size());
    const double slot_secs = static_cast<double>(slots) * result->stats.wall_seconds;
    for (const auto& [stage, table] : result->sink_outputs) {
      const shm::Buffer bytes = exec::serialize_table(table);
      cache_->insert(rec->sub.cache_id, stage, std::string(bytes.view()), slot_secs);
    }
    for (const auto& [stage, table] : result->captured_outputs) {
      const shm::Buffer bytes = exec::serialize_table(table);
      cache_->insert(rec->sub.cache_id, stage, std::string(bytes.view()), slot_secs);
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (result.ok() && !persist_st.is_ok()) {
      // Completing with volatile results would break recovery's
      // contract; fail (retriably, if UNAVAILABLE) instead.
      result = persist_st;
    }
    if (result.ok()) {
      rec->sinks = std::move(result->sink_outputs);
      rec->stats = result->stats;
      finish_job_locked(*rec, JobState::kDone, Status::ok());
    } else if (result.status().code() == StatusCode::kCancelled) {
      const Status why =
          rec->pending_stop.is_ok() ? Status::cancelled("cancelled by caller") : rec->pending_stop;
      const JobState terminal = why.code() == StatusCode::kDeadlineExceeded
                                    ? JobState::kFailed
                                    : JobState::kCancelled;
      finish_job_locked(*rec, terminal, why);
    } else if (faults::RetryPolicy::retriable(result.status().code()) &&
               rec->attempt < rec->sub.job_attempts &&
               !rec->cancel_token.load(std::memory_order_acquire)) {
      // Whole-job retry: release everything, go back through admission
      // after a capped jittered backoff, re-run under a fresh epoch.
      release_resources_locked(*rec);
      --running_jobs_;
      const Seconds wait =
          rec->sub.job_backoff.backoff(rec->attempt, faults::site_salt(rec->sub.label.c_str()));
      rec->earliest_admit = now() + wait;
      ++rec->attempt;
      ++rec->epoch;
      rec->state = JobState::kQueued;
      rec->error = Status::ok();
      rec->sinks.clear();
      rec->stats = exec::EngineStats{};
      enqueue_locked(rec->id, rec->sub.tier);
      note_queue_locked();
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      if (mx.enabled()) {
        mx.counter("service.job_retries", {{"tier", rec->sub.tier}}).add();
      }
    } else {
      finish_job_locked(*rec, JobState::kFailed, result.status());
    }
    finished_unjoined_.push_back(rec->id);
  }
  if (options_.profiling && options_.persist_profiles) {
    // Outside mu_: the profile store has its own lock and the object
    // store is thread-safe. Persistence is best effort.
    const Status saved = profiles_.save(*store_, options_.profile_prefix);
    (void)saved;
  }
  if (cache_ != nullptr && options_.persist_cache) {
    // Best effort, same as profiles: a torn save degrades to skipped
    // entries at the next load, never to wrong answers.
    const Status saved = cache_->save(*store_, options_.cache_prefix);
    (void)saved;
  }
  state_cv_.notify_all();
  dispatch_cv_.notify_all();
}

void JobService::finish_job_locked(JobRecord& rec, JobState state, Status error) {
  const bool was_active =
      rec.state == JobState::kAdmitted || rec.state == JobState::kRunning;
  if (rec.leader != 0) detach_follower_locked(rec);
  rec.state = state;
  rec.error = std::move(error);
  rec.finished = now();
  release_resources_locked(rec);
  if (was_active) --running_jobs_;
  last_finish_ = std::max(last_finish_, rec.finished);
  slot_seconds_at_last_finish_ = ledger_.slot_seconds();
  if (options_.journal != nullptr && rec.jid != 0) {
    const Status journaled = options_.journal->append_finish(
        rec.jid, job_state_name(rec.state), rec.error.message());
    (void)journaled;  // best effort: a lost FINISH costs one safe re-run
  }
  observe_terminal_locked(rec);
  resolve_followers_locked(rec);
}

void JobService::resolve_followers_locked(JobRecord& rec) {
  if (rec.inflight_registered) {
    const auto it = inflight_.find(rec.sub.cache_id);
    if (it != inflight_.end() && it->second == rec.id) inflight_.erase(it);
    rec.inflight_registered = false;
  }
  if (rec.followers.empty()) return;
  const std::vector<JobId> followers = std::move(rec.followers);
  rec.followers.clear();
  // Recursion is depth-1: followers have no followers of their own.
  if (rec.state == JobState::kDone) {
    obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
    for (const JobId fid : followers) {
      const auto fit = jobs_.find(fid);
      if (fit == jobs_.end()) continue;
      JobRecord& f = *fit->second;
      if (is_terminal(f.state)) continue;
      f.leader = 0;
      f.admitted = now();
      f.started = f.admitted;
      f.sinks = rec.sinks;
      f.from_cache = true;
      f.dedup_leader = rec.id;
      f.reused_stages = f.sinks.size();
      // The follower owes the store the same sink bytes a solo run
      // would have written (tables are miniature; the puts are cheap
      // enough to hold mu_ across).
      Status persist_st = Status::ok();
      if (options_.persist_sinks) {
        for (const auto& [stage, table] : f.sinks) {
          const shm::Buffer bytes = exec::serialize_table(table);
          persist_st = store_->put(options_.sink_prefix + "/" + f.sub.label + "/stage-" +
                                       std::to_string(stage),
                                   bytes.view());
          if (!persist_st.is_ok()) break;
        }
      }
      if (mx.enabled()) mx.counter("service.dedup_served", {{"tier", f.sub.tier}}).add();
      if (persist_st.is_ok()) {
        finish_job_locked(f, JobState::kDone, Status::ok());
      } else {
        f.sinks.clear();
        f.from_cache = false;
        finish_job_locked(f, JobState::kFailed, persist_st);
      }
    }
  } else if (rec.state == JobState::kFailed) {
    // Followers inherit the leader's exact failure Status.
    for (const JobId fid : followers) {
      const auto fit = jobs_.find(fid);
      if (fit == jobs_.end()) continue;
      JobRecord& f = *fit->second;
      if (is_terminal(f.state)) continue;
      f.leader = 0;
      f.dedup_leader = rec.id;
      finish_job_locked(f, JobState::kFailed, rec.error);
    }
  } else {
    // Cancelled leader: its cancellation is not the followers' — the
    // first live follower is promoted to a fresh leader and queued.
    JobId promoted = 0;
    for (const JobId fid : followers) {
      const auto fit = jobs_.find(fid);
      if (fit == jobs_.end()) continue;
      JobRecord& f = *fit->second;
      if (is_terminal(f.state)) continue;
      if (promoted == 0) {
        promoted = fid;
        f.leader = 0;
        if (cache_ != nullptr && f.sub.cache_id.enabled()) {
          inflight_[f.sub.cache_id] = fid;
          f.inflight_registered = true;
        }
        enqueue_locked(fid, f.sub.tier);
        note_queue_locked();
      } else {
        f.leader = promoted;
        jobs_.at(promoted)->followers.push_back(fid);
      }
    }
  }
}

void JobService::detach_follower_locked(JobRecord& rec) {
  const auto it = jobs_.find(rec.leader);
  if (it != jobs_.end()) {
    auto& fs = it->second->followers;
    fs.erase(std::remove(fs.begin(), fs.end(), rec.id), fs.end());
  }
  rec.leader = 0;
}

void JobService::observe_terminal_locked(const JobRecord& rec) {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  const char* policy = admission_policy_name(options_.admission.policy);
  if (mx.enabled()) {
    const obs::MetricLabels labels{{"policy", policy},
                                   {"state", job_state_name(rec.state)}};
    mx.counter("service.jobs", labels).add();
    mx.gauge("service.running_jobs", {{"policy", policy}})
        .set(static_cast<double>(running_jobs_));
    if (rec.state == JobState::kDone) {
      const obs::MetricLabels plabels{{"policy", policy}};
      mx.histogram("service.queueing_seconds", 0.0, 60.0, 60, plabels)
          .observe(rec.started - rec.submitted);
      mx.histogram("service.jct_seconds", 0.0, 600.0, 60, plabels)
          .observe(rec.finished - rec.submitted);
    }
  }
  obs::TraceCollector& tc = obs::TraceCollector::global();
  if (tc.enabled()) {
    // One span per job on the job-level track (pid -1), covering
    // submission to terminal state, labeled for the viewer.
    const auto us = [](Seconds s) { return static_cast<std::uint64_t>(s * 1e6); };
    tc.span("service.job", rec.sub.label.empty() ? ("job-" + std::to_string(rec.id))
                                                 : rec.sub.label,
            us(rec.submitted), us(rec.finished - rec.submitted), -1,
            static_cast<std::int64_t>(rec.id),
            {{"state", job_state_name(rec.state)},
             {"policy", policy},
             {"queueing_s", std::to_string(std::max(0.0, rec.started - rec.submitted))}});
  }
}

void JobService::release_resources_locked(JobRecord& rec) {
  if (rec.lease.active()) {
    const Status released = rec.lease.release();
    (void)released;  // ledger-validated; cannot fail for an active lease
  }
  for (std::size_t v = 0; v < rec.arena_charge.size(); ++v) {
    if (rec.arena_charge[v] > 0) cluster_->server(v).arena().release(rec.arena_charge[v]);
  }
  rec.arena_charge.clear();
}

std::vector<JobService::JobSnapshotRow> JobService::jobs_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobSnapshotRow> rows;
  rows.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) {
    JobSnapshotRow row;
    row.id = rec->id;
    row.label = rec->sub.label;
    row.state = rec->state;
    if (!rec->error.is_ok()) row.error = rec->error.message();
    row.submitted = rec->submitted;
    row.started = rec->started;
    row.finished = rec->finished;
    for (const auto& ts : rec->plan.task_server) {
      row.slots_granted += static_cast<int>(ts.size());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

JobOutcome JobService::outcome_of_locked(const JobRecord& rec) const {
  JobOutcome out;
  out.id = rec.id;
  out.label = rec.sub.label;
  out.state = rec.state;
  out.error = rec.error;
  out.submitted = rec.submitted;
  out.admitted = rec.admitted;
  out.started = rec.started;
  out.finished = rec.finished;
  out.slots_granted = 0;
  for (const auto& row : rec.plan.task_server) out.slots_granted += static_cast<int>(row.size());
  out.plan = rec.plan;
  out.sink_outputs = rec.sinks;
  out.stats = rec.stats;
  out.tier = rec.sub.tier;
  out.attempts = rec.attempt;
  out.epoch = rec.epoch;
  out.jid = rec.jid;
  out.from_cache = rec.from_cache;
  out.dedup_leader = rec.dedup_leader;
  out.reused_stages = rec.reused_stages;
  return out;
}

}  // namespace ditto::service
