// ResultCache: the recurring-job result cache (ROADMAP item 4).
//
// Ditto's premise is recurring analytics jobs (§6.5: the same query
// shapes return again and again), so a production service sees the
// identical submission many times over. The cache stores the
// *serialized output bytes* of completed stages keyed by
//
//     (plan fingerprint, input signature, input version) x stage
//
// where the fingerprint is structural_fingerprint() of the model DAG
// (plan shape only) and the input signature canonicalizes every knob
// of the data the job reads — two submissions share an identity iff
// they would compute byte-identical outputs. `input_version` is the
// explicit invalidation handle: bumping it in the serve spec makes
// prior entries unreachable without touching them.
//
// What the service does with it (job_service.cpp):
//   * whole-job hit  — every sink stage cached: the job completes DONE
//     from the cached bytes without occupying a single engine slot;
//   * partial hit    — some upstream stages cached: they are pruned
//     from the sub-DAG handed to the scheduler (dag/dag_algorithms.h
//     prune_completed_stages) and replayed as zero-compute sources
//     that re-seed the job's exchange prefix;
//   * in-flight dedupe — identical submissions attach to the running
//     leader instead of probing/executing twice.
//
// Capacity is byte-bounded with LRU eviction (lookup refreshes
// recency). Entries persist through any ObjectStore — one raw-bytes
// object per entry plus a strict text index, following the
// StageProfileStore idiom: a corrupt index fails INVALID_ARGUMENT and
// leaves the in-memory cache untouched; an index entry whose bytes
// object is missing (crash between entry and index writes) is skipped.
//
// Thread-safe; all methods may be called concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "dag/types.h"
#include "storage/object_store.h"

namespace ditto::service {

/// Identity of a job's cached results. Default-constructed (empty
/// signature) means "caching off for this job": every probe misses and
/// the job never deduplicates.
struct CacheIdentity {
  std::uint64_t plan_fingerprint = 0;
  /// Canonical description of the input data (engine_jobs.h
  /// engine_query_signature). MUST contain no whitespace — it is
  /// embedded in the persisted index's space-separated lines.
  std::string input_signature;
  /// Explicit invalidation handle (serve spec `input_version=N`).
  std::uint64_t input_version = 0;

  bool enabled() const { return plan_fingerprint != 0 && !input_signature.empty(); }

  /// Stable whitespace-free key: fingerprint + signature hash + version.
  std::string key() const;

  friend bool operator==(const CacheIdentity& a, const CacheIdentity& b) {
    return a.plan_fingerprint == b.plan_fingerprint && a.input_version == b.input_version &&
           a.input_signature == b.input_signature;
  }
  friend bool operator<(const CacheIdentity& a, const CacheIdentity& b) {
    return std::tie(a.plan_fingerprint, a.input_version, a.input_signature) <
           std::tie(b.plan_fingerprint, b.input_version, b.input_signature);
  }
};

/// Running totals; slot_seconds_saved counts the cold run's
/// slots x wall-seconds re-served from cache (whole-job hits) plus a
/// pruned-fraction estimate for partial hits.
struct CacheStats {
  std::size_t hits = 0;           ///< whole-job hits served
  std::size_t partial_hits = 0;   ///< jobs that pruned >= 1 cached stage
  std::size_t misses = 0;         ///< jobs that ran their full DAG
  std::size_t stage_hits = 0;     ///< stage entries served (whole + partial)
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  Bytes bytes = 0;
  double slot_seconds_saved = 0.0;
};

class ResultCache {
 public:
  /// `capacity_bytes` bounds the summed entry payloads; 0 = unbounded.
  explicit ResultCache(Bytes capacity_bytes);

  struct Hit {
    std::shared_ptr<const std::string> bytes;  ///< serialized table
    double slot_seconds = 0.0;  ///< cold run's slot-seconds (whole job)
  };

  /// Probes one stage entry and refreshes its LRU recency on hit.
  /// Job-level hit/miss accounting is the caller's (note_* below);
  /// stage_hits increments here.
  std::optional<Hit> lookup(const CacheIdentity& id, StageId stage);

  /// Probe without touching recency or stats.
  bool contains(const CacheIdentity& id, StageId stage) const;

  /// Stores serialized output bytes for (id, stage), evicting LRU
  /// entries as needed. An entry larger than the whole capacity is
  /// dropped on the floor. Re-inserting an existing key replaces the
  /// bytes (idempotent under submission races).
  void insert(const CacheIdentity& id, StageId stage, std::string bytes,
              double slot_seconds = 0.0);

  /// Drops one entry (tests; explicit invalidation). No-op when absent.
  void remove(const CacheIdentity& id, StageId stage);

  // Job-level accounting, called once per submission by the service.
  void note_hit(double slot_seconds_saved);
  void note_partial_hit(double slot_seconds_saved);
  void note_miss();

  CacheStats stats() const;
  Bytes used_bytes() const;
  Bytes capacity_bytes() const { return capacity_; }

  /// Persists the cache: one `<prefix>/<key>/stage-<N>` object per
  /// entry (raw serialized table bytes) plus a `<prefix>/index` text
  /// object written last, so a torn save degrades to skipped entries
  /// at load. Already-persisted entries are not rewritten; evicted
  /// persisted entries are removed.
  Status save(storage::ObjectStore& store, const std::string& prefix = "cache");

  /// Loads entries under `prefix`, merging into the cache (respecting
  /// capacity). A missing index is OK (fresh store; no-op). A corrupt
  /// index or entry fails INVALID_ARGUMENT and leaves the cache
  /// exactly as it was.
  Status load(storage::ObjectStore& store, const std::string& prefix = "cache");

 private:
  using Key = std::pair<CacheIdentity, StageId>;

  struct Entry {
    std::shared_ptr<const std::string> bytes;
    double slot_seconds = 0.0;
    bool persisted = false;
    std::list<Key>::iterator lru_it;
  };

  static std::string object_key(const std::string& prefix, const CacheIdentity& id,
                                StageId stage);
  void insert_locked(const CacheIdentity& id, StageId stage,
                     std::shared_ptr<const std::string> bytes, double slot_seconds,
                     bool persisted);
  void evict_to_capacity_locked();
  void publish_metrics_locked() const;

  const Bytes capacity_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  ///< front = oldest, back = most recent
  /// Object keys of evicted entries that were persisted (removed on
  /// the next save so the on-store index never dangles forever).
  std::vector<Key> evicted_persisted_;
  CacheStats stats_;
};

}  // namespace ditto::service
