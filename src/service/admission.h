// Inter-job admission policies (the paper's §4.5 future work, served
// live): given the cluster's current free-slot view, decide what slot
// offer — if any — the job at the head of the FIFO queue is planned
// against. All policies are strict-FIFO (a blocked head blocks the
// queue) so no job starves; they differ in how eagerly they carve the
// cluster:
//
//   * kFifoExclusive — the head waits until the cluster is completely
//     idle and is planned against every slot. The batch baseline: jobs
//     serialize, each gets the paper's single-job assumption.
//   * kFairShare — the head is planned against the free view capped at
//     `fair_share_slots` total (proportionally per server), bounding
//     how much one job can grab and letting jobs overlap.
//   * kElastic — the head is planned against whatever is free right
//     now: the intra-job scheduler's DoP elasticity (§4.2) turns a
//     small offer into a small-but-admitted plan instead of a wait.
//     This is the co-design the paper calls for — elastic parallelism
//     absorbs inter-job contention.
//
// admission_offer() is a pure function so the live JobService and the
// discrete-event job_queue simulator can be cross-validated against
// the same decisions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ditto::service {

enum class AdmissionPolicy { kFifoExclusive, kFairShare, kElastic };

const char* admission_policy_name(AdmissionPolicy p);
Result<AdmissionPolicy> parse_admission_policy(std::string_view text);

struct AdmissionOptions {
  AdmissionPolicy policy = AdmissionPolicy::kElastic;
  /// Per-job slot cap under kFairShare (<= 0 = total_slots / 2).
  int fair_share_slots = 0;
  /// kElastic/kFairShare: minimum free slots before the head is even
  /// planned, so a job is not squeezed to DoP 1 by a momentarily full
  /// cluster when waiting a beat would do better.
  int min_free_slots = 1;
};

/// The slot view to plan the head job against, or an empty vector for
/// "do not admit now". `free` is the per-server free-slot snapshot,
/// `total_slots` the cluster total, `leased_slots` the slots currently
/// out on leases to running jobs.
std::vector<int> admission_offer(const AdmissionOptions& options, const std::vector<int>& free,
                                 int total_slots, int leased_slots);

}  // namespace ditto::service
