// HttpEndpoint: a minimal dependency-free HTTP/1.1 listener exposing
// the service's live state —
//
//   GET /metrics   Prometheus text exposition of the MetricsRegistry
//   GET /jobs      JobService lifecycle snapshot as JSON
//   GET /healthz   liveness probe ("ok")
//
// Scope is deliberately tiny: GET only, one request per connection
// (Connection: close), loopback by default, requests served serially
// by one background thread. That is exactly what a scrape target and
// a smoke test need, and nothing a production proxy provides. The
// endpoint never blocks job traffic: handlers only read thread-safe
// snapshots (MetricsRegistry::snapshot, JobService::jobs_snapshot).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"
#include "service/job_service.h"

namespace ditto::service {

class HttpEndpoint {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read
    /// it back with port()).
    int port = 0;
    /// Metrics source for /metrics (null = the process-global registry).
    const obs::MetricsRegistry* metrics = nullptr;
    /// Jobs source for /jobs (null = an empty job list). Not owned;
    /// must outlive the endpoint or be cleared via stop() first.
    JobService* service = nullptr;
  };

  explicit HttpEndpoint(Options options);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Binds, listens, and spawns the serving thread. Fails (UNAVAILABLE)
  /// if the port cannot be bound; FAILED_PRECONDITION if already started.
  Status start();

  /// Stops the serving thread and closes the socket. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Bound port (valid after a successful start()).
  int port() const { return port_; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Pure request routing: full HTTP response bytes for a request
  /// target. Exposed so tests can exercise handlers without sockets.
  std::string respond(const std::string& method, const std::string& target) const;

 private:
  void serve_loop();

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace ditto::service
