#include "service/serve_spec.h"

#include <algorithm>
#include <sstream>

#include "service/engine_jobs.h"

namespace ditto::service {
namespace {

Result<double> parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double d = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return d;
  } catch (const std::exception&) {
    return Status::invalid_argument("bad numeric value for " + key + ": '" + value + "'");
  }
}

Result<std::int64_t> parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const long long n = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return static_cast<std::int64_t>(n);
  } catch (const std::exception&) {
    return Status::invalid_argument("bad integer value for " + key + ": '" + value + "'");
  }
}

Status apply_job_token(ServeJobSpec& job, const std::string& key, const std::string& value) {
  if (key == "arrival" || key == "deadline") {
    DITTO_ASSIGN_OR_RETURN(const double d, parse_double(key, value));
    if (d < 0.0) return Status::invalid_argument(key + " must be >= 0");
    (key == "arrival" ? job.arrival : job.deadline) = d;
    return Status::ok();
  }
  if (key == "objective") {
    if (value == "jct") {
      job.objective = Objective::kJct;
    } else if (value == "cost") {
      job.objective = Objective::kCost;
    } else {
      return Status::invalid_argument("bad objective '" + value + "' (want jct|cost)");
    }
    return Status::ok();
  }
  if (key == "label") {
    job.label = value;
    return Status::ok();
  }
  if (key == "rows") {
    DITTO_ASSIGN_OR_RETURN(const std::int64_t n, parse_int(key, value));
    if (n <= 0) return Status::invalid_argument("rows must be > 0");
    job.data.fact_rows = static_cast<std::size_t>(n);
    return Status::ok();
  }
  if (key == "orders") {
    DITTO_ASSIGN_OR_RETURN(const std::int64_t n, parse_int(key, value));
    if (n <= 0) return Status::invalid_argument("orders must be > 0");
    job.data.num_orders = n;
    return Status::ok();
  }
  if (key == "seed") {
    DITTO_ASSIGN_OR_RETURN(const std::int64_t n, parse_int(key, value));
    job.data.seed = static_cast<std::uint64_t>(n);
    return Status::ok();
  }
  if (key == "faults") {
    DITTO_ASSIGN_OR_RETURN(job.faults, faults::parse_fault_spec(value));
    return Status::ok();
  }
  if (key == "tier") {
    if (value != "latency" && value != "batch") {
      return Status::invalid_argument("bad tier '" + value + "' (want latency|batch)");
    }
    job.tier = value;
    return Status::ok();
  }
  if (key == "retries") {
    DITTO_ASSIGN_OR_RETURN(const std::int64_t n, parse_int(key, value));
    if (n < 0) return Status::invalid_argument("retries must be >= 0");
    job.retries = static_cast<int>(n);
    return Status::ok();
  }
  if (key == "cache") {
    if (value != "on" && value != "off") {
      return Status::invalid_argument("cache must be on or off");
    }
    job.cache = value == "on";
    return Status::ok();
  }
  if (key == "input_version") {
    DITTO_ASSIGN_OR_RETURN(const std::int64_t n, parse_int(key, value));
    if (n < 0) return Status::invalid_argument("input_version must be >= 0");
    job.input_version = static_cast<std::uint64_t>(n);
    return Status::ok();
  }
  return Status::invalid_argument("unknown job option '" + key + "'");
}

Status apply_policy_token(ServeSpec& spec, const std::string& key, const std::string& value) {
  if (key == "fair_share_slots" || key == "min_free_slots") {
    DITTO_ASSIGN_OR_RETURN(const std::int64_t n, parse_int(key, value));
    if (n <= 0) return Status::invalid_argument(key + " must be > 0");
    (key == "fair_share_slots" ? spec.admission.fair_share_slots
                               : spec.admission.min_free_slots) = static_cast<int>(n);
    return Status::ok();
  }
  if (key == "queue_depth") {
    DITTO_ASSIGN_OR_RETURN(const std::int64_t n, parse_int(key, value));
    if (n < 0) return Status::invalid_argument("queue_depth must be >= 0");
    spec.max_queue_depth = static_cast<std::size_t>(n);
    return Status::ok();
  }
  if (key == "reject_infeasible") {
    if (value != "0" && value != "1") {
      return Status::invalid_argument("reject_infeasible must be 0 or 1");
    }
    spec.reject_infeasible = value == "1";
    return Status::ok();
  }
  if (key == "cache_bytes") {
    DITTO_ASSIGN_OR_RETURN(const std::int64_t n, parse_int(key, value));
    if (n < 0) return Status::invalid_argument("cache_bytes must be >= 0");
    spec.cache_bytes = static_cast<Bytes>(n);
    return Status::ok();
  }
  return Status::invalid_argument("unknown policy option '" + key + "'");
}

}  // namespace

Result<ServeSpec> parse_serve_spec(const std::string& text) {
  ServeSpec spec;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) continue;  // blank / comment-only line

    const auto fail = [&](const Status& st) {
      return Status::invalid_argument("serve spec line " + std::to_string(line_no) + ": " +
                                      st.message());
    };

    if (head == "policy") {
      std::string name;
      if (!(tokens >> name)) {
        return fail(Status::invalid_argument("policy needs a name (fifo|fair|elastic)"));
      }
      const auto policy = parse_admission_policy(name);
      if (!policy.ok()) return fail(policy.status());
      spec.admission.policy = *policy;
      std::string token;
      while (tokens >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos) {
          return fail(Status::invalid_argument("expected key=value, got '" + token + "'"));
        }
        const Status st = apply_policy_token(spec, token.substr(0, eq), token.substr(eq + 1));
        if (!st.is_ok()) return fail(st);
      }
      continue;
    }

    if (head == "job") {
      ServeJobSpec job;
      if (!(tokens >> job.query)) {
        return fail(Status::invalid_argument("job needs a query name (q1|q16|q94|q95)"));
      }
      const auto& names = engine_query_names();
      if (std::find(names.begin(), names.end(), job.query) == names.end()) {
        return fail(
            Status::invalid_argument("unknown query '" + job.query + "' (want q1|q16|q94|q95)"));
      }
      std::string token;
      while (tokens >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos) {
          return fail(Status::invalid_argument("expected key=value, got '" + token + "'"));
        }
        const Status st = apply_job_token(job, token.substr(0, eq), token.substr(eq + 1));
        if (!st.is_ok()) return fail(st);
      }
      // Keep the raw line: it becomes the journaled SUBMIT payload.
      const auto first = line.find_first_not_of(" \t");
      const auto last = line.find_last_not_of(" \t\r");
      job.line = line.substr(first, last - first + 1);
      spec.jobs.push_back(std::move(job));
      continue;
    }

    return fail(Status::invalid_argument("unknown directive '" + head + "' (want policy|job)"));
  }
  if (spec.jobs.empty()) return Status::invalid_argument("serve spec has no job lines");
  return spec;
}

}  // namespace ditto::service
