// Bridges the workload library's executable TPC-DS miniatures (Q1,
// Q16, Q94, Q95) into service::JobSubmissions: builds the engine job,
// annotates volumes, applies physics for the scheduling model, and
// packages the source tables as the submission's keepalive — one call
// turns a query name into something JobService::submit() accepts.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "exec/table.h"
#include "service/job_service.h"
#include "storage/object_store.h"
#include "workload/engine_queries.h"

namespace ditto::service {

struct EngineQueryJob {
  JobSubmission submission;  ///< cache_id pre-filled (version 0); clear
                             ///< it to opt the job out of caching

  /// Ground truth from the query's single-node reference.
  std::int64_t ref_rows = 0;
  double ref_value = 0.0;

  /// The stage whose output carries the answer.
  StageId sink = kNoStage;

  /// Reads (rows, value) from the sink stage's output table.
  Result<workload::EngineAnswer> (*extract)(const exec::Table&) = nullptr;
};

/// Supported query names for make_engine_query_job().
const std::vector<std::string_view>& engine_query_names();

/// Canonical, whitespace-free signature of the input data a query
/// reads: every EngineQuerySpec field, so two submissions share a
/// result-cache identity only when they would generate byte-identical
/// source tables (structural_fingerprint alone deliberately ignores
/// data volumes and seeds).
std::string engine_query_signature(std::string_view query,
                                   const workload::EngineQuerySpec& spec);

/// Builds a submission-ready engine job for `query` in {q1, q16, q94,
/// q95}. `external` is the storage model physics instantiates step
/// models against (it should match the store the service runs on).
Result<EngineQueryJob> make_engine_query_job(std::string_view query,
                                             const workload::EngineQuerySpec& spec,
                                             const storage::StorageModel& external);

}  // namespace ditto::service
