#include "service/arrival_trace.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ditto::service {
namespace {

constexpr const char* kQueries[] = {"q1", "q16", "q94", "q95"};
constexpr std::size_t kNumQueries = 4;

/// Instantaneous rate multiplier at time t for the chosen shape; the
/// mean over the trace stays ~1 so rate_hz keeps its meaning.
double shape_factor(const TraceOptions& o, double t) {
  switch (o.shape) {
    case TraceShape::kUniform:
      return 1.0;
    case TraceShape::kBursty: {
      // Duty-cycled over 1-second periods: inside the duty window the
      // rate is burst_factor x base; outside it is scaled down so the
      // period mean is 1.
      const double phase = t - std::floor(t);
      const double duty = std::min(1.0, std::max(1e-3, o.burst_duty));
      const double idle = std::max(0.0, (1.0 - o.burst_factor * duty) / (1.0 - duty));
      return phase < duty ? o.burst_factor : idle;
    }
    case TraceShape::kDiurnal: {
      // One sinusoidal "day" across the trace: trough at the ends,
      // peak mid-trace, mean 1.
      const double phase = t / o.duration_s;
      return 1.0 - std::cos(2.0 * 3.14159265358979323846 * phase) * 0.9;
    }
  }
  return 1.0;
}

}  // namespace

const char* trace_shape_name(TraceShape s) {
  switch (s) {
    case TraceShape::kUniform: return "uniform";
    case TraceShape::kBursty: return "bursty";
    case TraceShape::kDiurnal: return "diurnal";
  }
  return "unknown";
}

Result<std::vector<TraceArrival>> generate_trace(const TraceOptions& options) {
  if (options.duration_s <= 0.0) {
    return Status::invalid_argument("trace duration must be > 0");
  }
  if (options.rate_hz <= 0.0) {
    return Status::invalid_argument("trace rate must be > 0");
  }
  if (options.repeat_ratio < 0.0 || options.repeat_ratio > 1.0) {
    return Status::invalid_argument("repeat_ratio must be in [0, 1]");
  }
  if (options.repeat_ratio > 0.0 && options.distinct_jobs == 0) {
    return Status::invalid_argument("repeat_ratio > 0 needs a non-empty template pool");
  }
  if (options.shape == TraceShape::kBursty && options.burst_factor < 1.0) {
    return Status::invalid_argument("burst_factor must be >= 1");
  }

  Rng rng(options.seed);

  // The recurring pool: each template is one (query, spec) pair with a
  // pool-stable seed, so every repeat of template k is byte-identical.
  std::vector<TraceArrival> pool(options.distinct_jobs);
  for (std::size_t k = 0; k < options.distinct_jobs; ++k) {
    pool[k].query = kQueries[k % kNumQueries];
    pool[k].spec.fact_rows = static_cast<std::size_t>(options.fact_rows);
    pool[k].spec.num_orders = options.num_orders;
    pool[k].spec.seed = options.seed * 1000003ULL + k;
    pool[k].repeat = true;
    pool[k].template_id = k;
  }

  // Thinned Poisson process: draw candidate gaps at the peak rate and
  // accept each candidate with probability factor/peak — an exact
  // sampler for an inhomogeneous Poisson process.
  double peak = 1.0;
  for (double t = 0.0; t < options.duration_s; t += options.duration_s / 256.0) {
    peak = std::max(peak, shape_factor(options, t));
  }
  const double peak_rate = options.rate_hz * peak;

  std::vector<TraceArrival> out;
  std::size_t next_unique = options.distinct_jobs;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(peak_rate);
    if (t >= options.duration_s) break;
    if (!rng.coin(shape_factor(options, t) / peak)) continue;
    TraceArrival a;
    if (rng.coin(options.repeat_ratio)) {
      a = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(options.distinct_jobs) - 1))];
    } else {
      // Fresh job: unique seed, guaranteed cold for the cache.
      a.query = kQueries[static_cast<std::size_t>(rng.uniform_int(0, kNumQueries - 1))];
      a.spec.fact_rows = static_cast<std::size_t>(options.fact_rows);
      a.spec.num_orders = options.num_orders;
      a.spec.seed = options.seed * 2000003ULL + next_unique;
      a.repeat = false;
      a.template_id = next_unique++;
    }
    a.at_s = t;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace ditto::service
