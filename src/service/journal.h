// JobJournal: durable write-ahead journal of job lifecycle transitions,
// with crash-tolerant replay — the event-sourcing half of the service
// tier's resilience story (Netherite's durable-journal pattern from
// PAPERS.md, sized for this service).
//
// Every job the service accepts appends records through any
// ObjectStore (a FileStore in production so the log survives SIGKILL):
//
//   SUBMIT  jid payload tier deadline    the re-runnable job description
//                                        (a serve-spec `job` line)
//   ADMIT   jid                          planned + slots leased
//   START   jid epoch                    engine run began under `epoch`
//   FINISH  jid state error              exactly-one terminal transition
//
// Wire format: an 8-byte magic ("DITTOJL1") then length-prefixed
// records `[u32 len][u32 crc32][payload]` (little-endian). The log is
// rewritten whole on each append (journals hold tens of jobs, not
// millions), so a crash mid-put leaves a PREFIX of the intended bytes.
// Replay's contract mirrors that failure model:
//
//   * a truncated tail (incomplete header or short payload) is the
//     mid-append crash signature — tolerated: replay returns every
//     complete record before it;
//   * a mangled mid-record (bad magic, CRC mismatch, unparsable
//     payload) is real corruption — INVALID_ARGUMENT, corpus-tested
//     like the serde and profile-store parsers.
//
// Recovery: build_recovery() folds replayed records into one
// disposition per jid — completed jobs are skipped, jobs that never
// started are re-enqueued, and jobs caught RUNNING are re-run under a
// FRESH exchange epoch (epoch = last started + 1; PR 2's idempotent,
// epoch-namespaced exchange publishes make that re-execution
// byte-safe). `dittoctl serve --recover` turns the plan back into
// submissions.
//
// Appends are retried under a RetryPolicy; an exhausted SUBMIT append
// is returned to the caller (losing a SUBMIT would lose the job),
// while later transitions degrade to at-least-once semantics (a lost
// FINISH merely causes one safe re-execution). Thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "faults/fault_injector.h"
#include "faults/retry_policy.h"
#include "storage/object_store.h"

namespace ditto::service {

enum class JournalKind { kSubmit, kAdmit, kStart, kFinish };
const char* journal_kind_name(JournalKind k);

struct JournalRecord {
  JournalKind kind = JournalKind::kSubmit;
  std::uint64_t jid = 0;  ///< journal job id, stable across restarts

  // SUBMIT only.
  std::string payload;  ///< serve-spec `job` line that re-creates the job
  std::string tier;     ///< "latency" | "batch"
  Seconds deadline = 0.0;

  // START only.
  int epoch = 0;

  // FINISH only.
  std::string state;  ///< terminal state name (DONE/FAILED/CANCELLED)
  std::string error;  ///< status message, "" when DONE
};

/// What a replayed journal says should happen to one job.
struct RecoveredJob {
  enum class Disposition {
    kResubmit,  ///< SUBMIT/ADMIT seen, never started: re-enqueue as-is
    kRerun,     ///< START without FINISH: re-run under a fresh epoch
    kSkip,      ///< FINISH seen: already terminal, do not run again
  };
  std::uint64_t jid = 0;
  Disposition disposition = Disposition::kResubmit;
  std::string payload;
  std::string tier;
  Seconds deadline = 0.0;
  int next_epoch = 0;        ///< epoch a re-run must use
  std::string final_state;   ///< kSkip: the recorded terminal state
};

struct RecoveryPlan {
  std::vector<RecoveredJob> jobs;  ///< ordered by jid

  std::size_t to_resubmit = 0;
  std::size_t to_rerun = 0;
  std::size_t completed = 0;
};

/// Folds records (replay order) into per-jid dispositions. Pure.
RecoveryPlan build_recovery(const std::vector<JournalRecord>& records);

class JobJournal {
 public:
  /// Appends go to `store` under `key`; the store must outlive the
  /// journal. `injector` (optional, not owned) arms the journal-write
  /// fault site.
  JobJournal(storage::ObjectStore& store, std::string key,
             faults::FaultInjector* injector = nullptr);

  /// Opens an existing log: replays `key` from `store`, keeps the valid
  /// byte prefix as the append base, and continues jid numbering past
  /// the highest replayed id. A missing object is an empty journal; a
  /// mangled one is INVALID_ARGUMENT.
  static Result<std::vector<JournalRecord>> replay(const storage::ObjectStore& store,
                                                   const std::string& key);

  /// Parses raw log bytes (what replay does after the get). Truncated
  /// tails are tolerated; mid-record corruption is INVALID_ARGUMENT.
  static Result<std::vector<JournalRecord>> parse(std::string_view bytes);

  /// Serializes one record as it would appear in the log (header +
  /// CRC + payload) — corpus tests build logs from these.
  static std::string encode(const JournalRecord& rec);

  /// Loads the existing log (if any) so appends extend it instead of
  /// clobbering it, and advances jid numbering. Call once before the
  /// first append when recovering; a fresh key is a no-op.
  Status open();

  /// Appends SUBMIT and returns the assigned jid. When `jid` is
  /// non-zero (a recovered job) it is reused and no numbering advances.
  Result<std::uint64_t> append_submit(const std::string& payload, const std::string& tier,
                                      Seconds deadline, std::uint64_t jid = 0);
  Status append_admit(std::uint64_t jid);
  Status append_start(std::uint64_t jid, int epoch);
  Status append_finish(std::uint64_t jid, const std::string& state, const std::string& error);

  /// Records appended (not replayed) through this instance.
  std::size_t appended() const;

  const std::string& key() const { return key_; }

  /// Retry policy for the underlying put (default: 3 quick attempts).
  void set_retry_policy(faults::RetryPolicy policy);

 private:
  Status append_locked(const JournalRecord& rec);

  storage::ObjectStore* store_;
  const std::string key_;
  faults::FaultInjector* injector_;
  faults::RetryPolicy retry_;

  mutable std::mutex mu_;
  std::string log_;  ///< serialized log, mirrors the stored object
  std::uint64_t next_jid_ = 1;
  std::size_t appended_ = 0;
};

}  // namespace ditto::service
