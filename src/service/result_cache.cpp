#include "service/result_cache.h"

#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile_store.h"

namespace ditto::service {
namespace {

/// FNV-1a: stable across platforms, good enough to keep persisted
/// object keys short (full identity equality still uses the exact
/// signature string).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr char kIndexMagic[] = "DITTOCACHE1";

}  // namespace

std::string CacheIdentity::key() const {
  return obs::fingerprint_hex(plan_fingerprint) + "-" + obs::fingerprint_hex(fnv1a(input_signature)) +
         "-v" + std::to_string(input_version);
}

ResultCache::ResultCache(Bytes capacity_bytes) : capacity_(capacity_bytes) {}

std::string ResultCache::object_key(const std::string& prefix, const CacheIdentity& id,
                                    StageId stage) {
  return prefix + "/" + id.key() + "/stage-" + std::to_string(stage);
}

std::optional<ResultCache::Hit> ResultCache::lookup(const CacheIdentity& id, StageId stage) {
  if (!id.enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find({id, stage});
  if (it == entries_.end()) return std::nullopt;
  lru_.splice(lru_.end(), lru_, it->second.lru_it);  // refresh recency
  ++stats_.stage_hits;
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("service.cache_stage_hits").add();
  return Hit{it->second.bytes, it->second.slot_seconds};
}

bool ResultCache::contains(const CacheIdentity& id, StageId stage) const {
  if (!id.enabled()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count({id, stage}) != 0;
}

void ResultCache::insert(const CacheIdentity& id, StageId stage, std::string bytes,
                         double slot_seconds) {
  if (!id.enabled()) return;
  if (capacity_ > 0 && bytes.size() > capacity_) return;  // could never fit
  std::lock_guard<std::mutex> lk(mu_);
  insert_locked(id, stage, std::make_shared<const std::string>(std::move(bytes)), slot_seconds,
                /*persisted=*/false);
}

void ResultCache::insert_locked(const CacheIdentity& id, StageId stage,
                                std::shared_ptr<const std::string> bytes, double slot_seconds,
                                bool persisted) {
  const Key key{id, stage};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replace (idempotent under submission races); recency refreshes.
    stats_.bytes -= it->second.bytes->size();
    stats_.bytes += bytes->size();
    it->second.bytes = std::move(bytes);
    it->second.slot_seconds = slot_seconds;
    it->second.persisted = persisted;
    lru_.splice(lru_.end(), lru_, it->second.lru_it);
  } else {
    const auto lru_it = lru_.insert(lru_.end(), key);
    Entry e;
    e.bytes = std::move(bytes);
    e.slot_seconds = slot_seconds;
    e.persisted = persisted;
    e.lru_it = lru_it;
    stats_.bytes += e.bytes->size();
    ++stats_.entries;
    entries_.emplace(key, std::move(e));
  }
  ++stats_.insertions;
  evict_to_capacity_locked();
  publish_metrics_locked();
}

void ResultCache::evict_to_capacity_locked() {
  if (capacity_ == 0) return;
  while (stats_.bytes > capacity_ && !lru_.empty()) {
    const Key victim = lru_.front();
    lru_.pop_front();
    const auto it = entries_.find(victim);
    stats_.bytes -= it->second.bytes->size();
    --stats_.entries;
    ++stats_.evictions;
    if (it->second.persisted) evicted_persisted_.push_back(victim);
    entries_.erase(it);
  }
}

void ResultCache::remove(const CacheIdentity& id, StageId stage) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find({id, stage});
  if (it == entries_.end()) return;
  stats_.bytes -= it->second.bytes->size();
  --stats_.entries;
  if (it->second.persisted) evicted_persisted_.push_back(it->first);
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  publish_metrics_locked();
}

void ResultCache::note_hit(double slot_seconds_saved) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.hits;
  stats_.slot_seconds_saved += slot_seconds_saved;
  publish_metrics_locked();
}

void ResultCache::note_partial_hit(double slot_seconds_saved) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.partial_hits;
  stats_.slot_seconds_saved += slot_seconds_saved;
  publish_metrics_locked();
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("service.cache_partial_hits").add();
}

void ResultCache::note_miss() {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.misses;
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("service.cache_misses").add();
}

void ResultCache::publish_metrics_locked() const {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (!mx.enabled()) return;
  // Hits and evictions export as gauges holding running totals — the
  // CI promcheck greps `service_cache_hits` / `service_cache_evictions`.
  mx.gauge("service.cache_hits").set(static_cast<double>(stats_.hits));
  mx.gauge("service.cache_evictions").set(static_cast<double>(stats_.evictions));
  mx.gauge("service.cache_entries").set(static_cast<double>(stats_.entries));
  mx.gauge("service.cache_bytes").set(static_cast<double>(stats_.bytes));
  mx.gauge("service.cache_slot_seconds_saved").set(stats_.slot_seconds_saved);
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

Bytes ResultCache::used_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_.bytes;
}

Status ResultCache::save(storage::ObjectStore& store, const std::string& prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  // Remove evicted-but-persisted entry objects first, then write new
  // entry objects, then rewrite the index last: a crash anywhere in
  // between leaves an index whose dangling entries load() skips.
  for (const Key& key : evicted_persisted_) {
    if (entries_.count(key) != 0) continue;  // re-inserted since eviction
    const Status removed = store.remove(object_key(prefix, key.first, key.second));
    (void)removed;  // best effort; a leaked object is unreachable anyway
  }
  evicted_persisted_.clear();
  for (auto& [key, entry] : entries_) {
    if (entry.persisted) continue;
    DITTO_RETURN_IF_ERROR(
        store.put(object_key(prefix, key.first, key.second), *entry.bytes));
    entry.persisted = true;
  }
  std::ostringstream index;
  index << kIndexMagic << "\n";
  for (const Key& key : lru_) {  // oldest first: load preserves recency
    const Entry& e = entries_.at(key);
    index << "entry " << key.second << " " << e.bytes->size() << " " << e.slot_seconds << " "
          << obs::fingerprint_hex(key.first.plan_fingerprint) << " "
          << key.first.input_version << " " << key.first.input_signature << "\n";
  }
  return store.put(prefix + "/index", index.str());
}

Status ResultCache::load(storage::ObjectStore& store, const std::string& prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!store.contains(prefix + "/index")) return Status::ok();  // fresh store
  auto payload = store.get(prefix + "/index");
  if (!payload.ok()) return payload.status();

  // Stage everything before touching the cache: a corrupt index or
  // entry leaves the in-memory state exactly as it was.
  struct Loaded {
    CacheIdentity id;
    StageId stage = kNoStage;
    double slot_seconds = 0.0;
    std::shared_ptr<const std::string> bytes;
  };
  std::vector<Loaded> loaded;

  std::istringstream lines(*payload);
  std::string line;
  if (!std::getline(lines, line) || line != kIndexMagic) {
    return Status::invalid_argument("corrupt cache index '" + prefix + "/index': bad magic");
  }
  int line_no = 1;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string head, fp_hex;
    Loaded l;
    std::uint64_t size = 0;
    std::string extra;
    if (!(tokens >> head >> l.stage >> size >> l.slot_seconds >> fp_hex >>
          l.id.input_version >> l.id.input_signature) ||
        head != "entry" || (tokens >> extra)) {
      return Status::invalid_argument("corrupt cache index '" + prefix + "/index' line " +
                                      std::to_string(line_no));
    }
    auto fp = obs::parse_fingerprint_hex(fp_hex);
    if (!fp.ok()) {
      return Status::invalid_argument("corrupt cache index '" + prefix + "/index' line " +
                                      std::to_string(line_no) + ": " + fp.status().message());
    }
    l.id.plan_fingerprint = *fp;
    if (!l.id.enabled()) {
      return Status::invalid_argument("corrupt cache index '" + prefix + "/index' line " +
                                      std::to_string(line_no) + ": disabled identity");
    }
    const std::string okey = object_key(prefix, l.id, l.stage);
    if (!store.contains(okey)) continue;  // torn save: entry never landed
    auto bytes = store.get(okey);
    if (!bytes.ok()) return bytes.status();
    if (bytes->size() != size) {
      return Status::invalid_argument("corrupt cache entry '" + okey + "': size " +
                                      std::to_string(bytes->size()) + " != indexed " +
                                      std::to_string(size));
    }
    l.bytes = std::make_shared<const std::string>(std::move(*bytes));
    loaded.push_back(std::move(l));
  }

  for (Loaded& l : loaded) {
    if (capacity_ > 0 && l.bytes->size() > capacity_) continue;
    insert_locked(l.id, l.stage, std::move(l.bytes), l.slot_seconds, /*persisted=*/true);
    --stats_.insertions;  // loading history is not a fresh insertion
  }
  publish_metrics_locked();
  return Status::ok();
}

}  // namespace ditto::service
