#include "service/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/json.h"
#include "obs/prometheus.h"

namespace ditto::service {

namespace {

std::string http_response(int code, const char* reason, const std::string& content_type,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << code << " " << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

std::string jobs_json(JobService* service) {
  std::ostringstream os;
  os << "{\"jobs\":[";
  if (service != nullptr) {
    bool first = true;
    for (const JobService::JobSnapshotRow& row : service->jobs_snapshot()) {
      if (!first) os << ",";
      first = false;
      os << "{\"id\":" << row.id << ",\"label\":\"" << obs::json_escape(row.label) << "\""
         << ",\"state\":\"" << job_state_name(row.state) << "\"";
      if (!row.error.empty()) {
        os << ",\"error\":\"" << obs::json_escape(row.error) << "\"";
      }
      os << ",\"submitted\":" << obs::json_number(row.submitted)
         << ",\"started\":" << obs::json_number(row.started)
         << ",\"finished\":" << obs::json_number(row.finished)
         << ",\"slots_granted\":" << row.slots_granted << "}";
    }
  }
  os << "]";
  if (service != nullptr) {
    os << ",\"total_slots\":" << service->total_slots()
       << ",\"free_slots\":" << service->free_slots();
  }
  os << "}\n";
  return os.str();
}

}  // namespace

HttpEndpoint::HttpEndpoint(Options options) : options_(options) {}

HttpEndpoint::~HttpEndpoint() { stop(); }

std::string HttpEndpoint::respond(const std::string& method, const std::string& target) const {
  if (method != "GET") {
    return http_response(405, "Method Not Allowed", "text/plain", "method not allowed\n");
  }
  // Ignore any query string: scrapers commonly append one.
  const std::string path = target.substr(0, target.find('?'));
  if (path == "/healthz") {
    return http_response(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    const obs::MetricsRegistry& registry =
        options_.metrics != nullptr ? *options_.metrics : obs::MetricsRegistry::global();
    return http_response(200, "OK", "text/plain; version=0.0.4",
                         obs::to_prometheus_text(registry));
  }
  if (path == "/jobs") {
    return http_response(200, "OK", "application/json", jobs_json(options_.service));
  }
  return http_response(404, "Not Found", "text/plain", "not found\n");
}

Status HttpEndpoint::start() {
  if (running_.load()) return Status::failed_precondition("endpoint already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::unavailable("cannot bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::unavailable("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::unavailable("getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = fd;
  running_.store(true);
  thread_ = std::thread(&HttpEndpoint::serve_loop, this);
  return Status::ok();
}

void HttpEndpoint::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpEndpoint::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout ms=*/100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // One small request per connection; cap the header read defensively.
    std::string request;
    char buf[2048];
    while (request.size() < 16 * 1024 && request.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }

    std::string method, target;
    {
      std::istringstream line(request.substr(0, request.find("\r\n")));
      line >> method >> target;
    }
    const std::string response = method.empty() || target.empty()
                                     ? http_response(400, "Bad Request", "text/plain",
                                                     "bad request\n")
                                     : respond(method, target);
    // Large bodies (/metrics grows with every chunk counter) need the
    // full partial-write loop: send() can return short or -1/EINTR on
    // a signal, and MSG_NOSIGNAL turns a peer reset into EPIPE instead
    // of a process-killing SIGPIPE.
    std::size_t off = 0;
    while (off < response.size()) {
      const ssize_t n =
          ::send(conn, response.data() + off, response.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(conn);
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ditto::service
