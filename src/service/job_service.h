// JobService: a concurrent, multi-tenant job service over the real
// MiniEngine — the serving-system layer the paper leaves as future
// work (§4.5: inter-job resource allocation co-designed with intra-job
// elastic scheduling).
//
// Shape (Netherite-style service over Wukong-style decentralized
// execution): callers submit executable jobs (DAG + stage bindings +
// a physics-annotated model DAG) at any time; a dispatcher thread
// admits them strictly FIFO through a pluggable inter-job policy
// (admission.h), plans each admitted job with the Ditto scheduler
// against the slots currently free, leases those slots from the shared
// Cluster via RAII SlotLease handles, and runs the job on the shared
// per-server thread pools. Job lifecycle:
//
//     QUEUED -> ADMITTED -> RUNNING -> { DONE, FAILED, CANCELLED }
//
// Isolation guarantees for co-resident jobs:
//   * exchange keys are namespaced per job id, so two instances of the
//     same query never cross-feed shuffles through the shared store;
//   * slots are leased all-or-nothing and released exactly once (the
//     ledger rejects double releases), so one job's completion cannot
//     free another job's slots;
//   * per-server arena bytes are charged per job from its model-DAG
//     volumes and reclaimed at job end, so back-to-back jobs do not
//     grow shared-memory accounting without bound;
//   * chaos is per job: each submission carries its own FaultSpec and
//     the injector/FlakyStore it arms wrap only that job's engine run.
//
// Deadlines and cancellation are cooperative: a queued job past its
// deadline fails without running; a running job's engine is cancelled
// at the next wave boundary. drain() closes intake and waits for every
// job to reach a terminal state; the destructor drains implicitly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/slot_lease.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "dag/job_dag.h"
#include "exec/engine.h"
#include "faults/fault_injector.h"
#include "faults/flaky_store.h"
#include "faults/retry_policy.h"
#include "obs/profile_store.h"
#include "service/admission.h"
#include "service/journal.h"
#include "service/result_cache.h"
#include "storage/object_store.h"

namespace ditto::service {

using JobId = std::uint64_t;

enum class JobState { kQueued, kAdmitted, kRunning, kDone, kFailed, kCancelled };
const char* job_state_name(JobState s);
bool is_terminal(JobState s);

struct JobSubmission {
  std::string label;

  /// Executable side: the DAG the engine runs and its stage bindings.
  JobDag dag;
  std::map<StageId, exec::StageBinding> bindings;

  /// Scheduling side: the same DAG annotated with data volumes and
  /// physics-instantiated step models (see workload::apply_physics) —
  /// what the Ditto scheduler plans against.
  JobDag model_dag;

  Objective objective = Objective::kJct;

  /// Seconds from submission to forced termination (0 = none). Expiry
  /// in the queue fails the job without running it; expiry while
  /// running cancels the engine at the next wave boundary. Either way
  /// the job ends FAILED with DEADLINE_EXCEEDED.
  Seconds deadline = 0.0;

  /// Per-job chaos: when armed (faults.any()), this job's engine run is
  /// wrapped in its own FaultInjector + FlakyStore. Co-resident jobs
  /// are untouched.
  faults::FaultSpec faults;
  faults::ResiliencePolicy resilience;

  /// SLO tier: "latency" jobs are enqueued ahead of "batch" jobs and
  /// survive load shedding; "batch" (the default) is shed first when
  /// the bounded admission queue overflows.
  std::string tier = "batch";

  /// Whole-job attempts on retriable (UNAVAILABLE) engine failure.
  /// 1 = no job-level retry. A retried job goes back through the
  /// admission queue after job_backoff's capped, jittered delay and
  /// re-runs under a fresh exchange epoch.
  int job_attempts = 1;
  faults::RetryPolicy job_backoff;

  /// Journal identity. `spec_line` is the serve-spec `job` line that
  /// re-creates this submission — it becomes the journaled SUBMIT
  /// payload (empty = this job is not journaled). `jid` pre-assigns the
  /// journal id (recovery resubmits; 0 = the journal assigns). `epoch`
  /// is the starting exchange epoch (recovered reruns pass next_epoch).
  std::string spec_line;
  std::uint64_t jid = 0;
  int epoch = 0;

  /// Result-cache identity (result_cache.h). When valid (enabled())
  /// and the service runs with a cache, this job can complete from
  /// cached sink bytes, reuse cached upstream stages, and deduplicate
  /// against an identical in-flight submission. Default-constructed =
  /// caching off for this job.
  CacheIdentity cache_id;

  /// Keeps source tables (captured by the bindings) alive for the
  /// job's lifetime.
  std::shared_ptr<const void> keepalive;
};

struct JobOutcome {
  JobId id = 0;
  std::string label;
  JobState state = JobState::kQueued;
  Status error;  ///< why FAILED/CANCELLED; OK for DONE

  // Service-clock timestamps (seconds since service start).
  Seconds submitted = 0.0;
  Seconds admitted = 0.0;
  Seconds started = 0.0;
  Seconds finished = 0.0;

  int slots_granted = 0;
  cluster::PlacementPlan plan;  ///< what the job actually ran with
  std::map<StageId, exec::Table> sink_outputs;
  exec::EngineStats stats;

  std::string tier;   ///< "latency" | "batch"
  int attempts = 1;   ///< engine runs this job took (>1 = job retried)
  int epoch = 0;      ///< exchange epoch of the final run
  std::uint64_t jid = 0;  ///< journal id (0 = unjournaled)

  /// True when the job completed without an engine run of its own: a
  /// whole-job cache hit, or a dedupe follower inheriting its leader's
  /// result (dedup_leader names the leader then).
  bool from_cache = false;
  JobId dedup_leader = 0;
  /// Cached stages this job reused (sinks served + stages pruned).
  std::size_t reused_stages = 0;

  Seconds queueing() const { return started - submitted; }
  Seconds jct() const { return finished - submitted; }
};

struct ServiceSummary {
  std::size_t submitted = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  Seconds mean_queueing = 0.0;
  Seconds max_queueing = 0.0;
  /// First submission to last completion.
  Seconds makespan = 0.0;
  /// Time-averaged fraction of cluster slots under lease during the
  /// makespan window.
  double avg_utilization = 0.0;

  std::string to_text() const;
};

struct ServiceOptions {
  AdmissionOptions admission;
  /// Storage model the scheduler prices non-co-located shuffles with.
  storage::StorageModel external;
  /// Charge per-job arena bytes from model-DAG volumes (on by default;
  /// off lets tests isolate slot accounting).
  bool account_arena = true;
  /// Record every winning task attempt into the service's
  /// StageProfileStore keyed by the model DAG's structural fingerprint,
  /// and emit timemodel drift metrics per wave (paper §6.5 loop).
  bool profiling = true;
  /// Preload profiles from the shared ObjectStore at construction and
  /// persist them after each completed job, so recurring submissions
  /// accumulate history across service lifetimes.
  bool persist_profiles = false;
  std::string profile_prefix = "profiles";
  /// Bounded admission queue: submissions beyond this depth are
  /// fast-rejected RESOURCE_EXHAUSTED — except that a latency-tier
  /// arrival sheds the newest queued batch-tier job instead of being
  /// turned away. 0 = unbounded (the default).
  std::size_t max_queue_depth = 0;
  /// Reject a job at admission when the schedule plan's predicted JCT
  /// already exceeds its remaining deadline (fail fast instead of
  /// running doomed). Opt-in: model predictions are paper-scale
  /// seconds, real engine runs are milliseconds.
  bool reject_infeasible = false;
  /// Write-ahead journal for job lifecycle transitions (not owned; may
  /// be null). A failed SUBMIT append rejects the submission — losing
  /// SUBMIT would lose the job; later transitions are best-effort.
  JobJournal* journal = nullptr;
  /// Persist each completed job's serialized sink tables to the shared
  /// store under `<sink_prefix>/<label>/stage-<id>` BEFORE the FINISH
  /// transition is journaled — so a journal that says DONE implies the
  /// answer bytes are durable. A failed persist fails (or retries) the
  /// job rather than completing it with volatile results.
  bool persist_sinks = false;
  std::string sink_prefix = "sinks";
  /// Result cache byte budget (ROADMAP item 4). 0 disables caching,
  /// stage reuse, and in-flight dedupe — the default, so existing
  /// embedders opt in explicitly (dittoctl serve turns it on via the
  /// spec's `cache_bytes=`). Jobs additionally opt in per submission
  /// through JobSubmission::cache_id.
  Bytes cache_bytes = 0;
  /// Preload the cache from the shared store at construction and
  /// persist it after each completed job (the profile-store pattern),
  /// so `--state`/`--recover` restarts keep the cache warm.
  bool persist_cache = false;
  std::string cache_prefix = "cache";
};

class JobService {
 public:
  /// `cluster` supplies slots and per-server arenas; `store` backs all
  /// cross-server exchanges (namespaced per job). Neither is owned;
  /// both must outlive the service. All slot mutations on the cluster
  /// must go through this service once it exists.
  JobService(cluster::Cluster& cluster, storage::ObjectStore& store,
             ServiceOptions options = {});
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Queue a job. FAILED_PRECONDITION after drain()/destruction began.
  Result<JobId> submit(JobSubmission sub);

  /// Cancel a queued or running job. Terminal jobs (and unknown ids)
  /// are errors; cancelling an already-cancelled job is OK (idempotent).
  Status cancel(JobId id);

  Result<JobState> state(JobId id) const;

  /// Block until the job is terminal; returns a copy of its outcome.
  Result<JobOutcome> wait(JobId id);

  /// Close intake, wait for every job to reach a terminal state, and
  /// return all outcomes ordered by id. Idempotent.
  std::vector<JobOutcome> drain();

  ServiceSummary summary() const;

  int total_slots() const { return ledger_.total_slots(); }
  int free_slots() const { return ledger_.free_total(); }

  /// Point-in-time lifecycle view of every job the service has seen
  /// (the /jobs endpoint's data source).
  struct JobSnapshotRow {
    JobId id = 0;
    std::string label;
    JobState state = JobState::kQueued;
    std::string error;  ///< message for FAILED/CANCELLED, "" otherwise
    Seconds submitted = 0.0;
    Seconds started = 0.0;
    Seconds finished = 0.0;
    int slots_granted = 0;
  };
  std::vector<JobSnapshotRow> jobs_snapshot() const;

  /// The per-(fingerprint, stage, DoP) execution history recorded by
  /// completed runs (empty while ServiceOptions::profiling is off).
  const obs::StageProfileStore& profiles() const { return profiles_; }
  obs::StageProfileStore& profiles() { return profiles_; }

  /// The recurring-job result cache; null while cache_bytes == 0.
  const ResultCache* result_cache() const { return cache_.get(); }
  ResultCache* result_cache() { return cache_.get(); }

 private:
  /// Partial-hit execution override, built at admission: the pruned
  /// DAG (cached upstream stages replaced by replay sources) the
  /// engine runs instead of the submission's.
  struct PrunedRun {
    JobDag dag;
    JobDag model;
    std::map<StageId, exec::StageBinding> bindings;
    std::vector<StageId> to_old;   ///< pruned id -> original id
    std::vector<bool> is_replay;   ///< by pruned id
    std::vector<StageId> capture_stages;  ///< pruned ids worth re-caching
    std::map<StageId, exec::Table> cached_sinks;  ///< original ids, decoded
    std::size_t reused_stages = 0;
    double slot_seconds_estimate = 0.0;  ///< saved-work estimate
  };

  struct JobRecord {
    JobId id = 0;
    JobSubmission sub;
    JobState state = JobState::kQueued;
    Status error;
    Seconds submitted = 0.0, admitted = 0.0, started = 0.0, finished = 0.0;
    double deadline_at = 0.0;  ///< absolute service clock; 0 = none

    std::uint64_t jid = 0;        ///< journal id (0 = unjournaled)
    int epoch = 0;                ///< exchange epoch of the current run
    int attempt = 1;              ///< 1-based engine-run attempt
    double earliest_admit = 0.0;  ///< retry backoff gate (service clock)

    cluster::SlotLease lease;
    std::vector<Bytes> arena_charge;  ///< per-server bytes reserved
    cluster::PlacementPlan plan;
    std::map<StageId, exec::Table> sinks;
    exec::EngineStats stats;

    // Result cache + in-flight dedupe (all guarded by mu_).
    bool from_cache = false;          ///< served without an engine run
    std::size_t reused_stages = 0;    ///< cached stages this job reused
    bool cache_counted = false;       ///< job-level hit/miss accounted
    JobId leader = 0;                 ///< follower: leader job id (0 = none)
    JobId dedup_leader = 0;           ///< terminal: who served this follower
    std::vector<JobId> followers;     ///< leader: attached identical jobs
    bool inflight_registered = false; ///< this job owns inflight_[cache_id]
    std::unique_ptr<PrunedRun> pruned;

    std::unique_ptr<faults::FaultInjector> injector;
    std::unique_ptr<faults::FlakyStore> flaky;
    std::atomic<bool> cancel_token{false};
    /// Set (with mu_ held) before cancel_token, so the runner knows
    /// whether the token meant "user cancel" or "deadline".
    Status pending_stop;

    std::thread runner;
  };

  void dispatcher_loop();
  /// Batched admission (Netherite-style work-queue drain): takes ONE
  /// free-slot snapshot, then admits the drainable FIFO prefix of the
  /// queue in a single planning pass — serving queued whole-job cache
  /// hits, pruning partial hits, and stopping at the first job the
  /// remaining offer cannot fit (strict FIFO preserved). Returns how
  /// many jobs made progress (admitted, served, or failed). Caller
  /// holds mu_.
  std::size_t admit_batch_locked();
  /// Serves a whole-job cache hit: every sink decoded from cache, sink
  /// bytes persisted (when configured), job finished DONE without
  /// touching the slot ledger. False = some sink missing/corrupt; run
  /// it normally. Caller holds mu_; rec must not be in queue_.
  bool try_serve_from_cache_locked(JobRecord& rec);
  /// Builds rec.pruned when cached upstream stages let the scheduler
  /// plan a smaller DAG; counts the job's hit/miss class. Caller holds
  /// mu_.
  void build_pruned_run_locked(JobRecord& rec);
  /// Terminal-state fan-out for in-flight dedupe: DONE copies sinks to
  /// followers, FAILED propagates the same Status, CANCELLED promotes
  /// the first live follower to a fresh leader. Also releases this
  /// job's inflight_ registration. Caller holds mu_.
  void resolve_followers_locked(JobRecord& rec);
  /// Removes rec from its leader's follower list. Caller holds mu_.
  void detach_follower_locked(JobRecord& rec);
  /// Inserts into queue_ honoring tier priority: latency jobs go ahead
  /// of every queued batch job, FIFO within a tier. Caller holds mu_.
  void enqueue_locked(JobId id, const std::string& tier);
  /// Publishes the queue-depth gauge. Caller holds mu_.
  void note_queue_locked();
  void expire_deadlines_locked();
  void run_job(JobRecord* rec);
  void finish_job_locked(JobRecord& rec, JobState state, Status error);
  /// Emits per-job labeled metrics + a job-track trace span (no-ops
  /// while observability is disabled).
  void observe_terminal_locked(const JobRecord& rec);
  void release_resources_locked(JobRecord& rec);
  JobOutcome outcome_of_locked(const JobRecord& rec) const;
  double now() const { return clock_.elapsed_seconds(); }

  cluster::Cluster* cluster_;
  storage::ObjectStore* store_;
  ServiceOptions options_;
  cluster::SlotLedger ledger_;
  exec::ServerPools pools_;
  Stopwatch clock_;
  obs::StageProfileStore profiles_;
  std::unique_ptr<ResultCache> cache_;  ///< null while cache_bytes == 0

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;  ///< wakes the dispatcher
  std::condition_variable state_cv_;     ///< wakes wait()/drain()
  std::map<JobId, std::unique_ptr<JobRecord>> jobs_;
  std::deque<JobId> queue_;  ///< FIFO of QUEUED job ids
  /// In-flight dedupe: identity -> the job (leader) currently queued or
  /// running it. Identical arrivals attach as followers instead of
  /// executing twice.
  std::map<CacheIdentity, JobId> inflight_;
  JobId next_id_ = 1;
  int running_jobs_ = 0;
  bool intake_closed_ = false;
  bool stop_dispatcher_ = false;
  std::vector<JobId> finished_unjoined_;  ///< runners awaiting join

  // Summary accounting (guarded by mu_).
  Seconds first_submit_ = -1.0;
  Seconds last_finish_ = 0.0;
  double slot_seconds_at_first_submit_ = 0.0;
  double slot_seconds_at_last_finish_ = 0.0;

  std::thread dispatcher_;
};

}  // namespace ditto::service
