// ArrivalTrace: deterministic open-loop workload generator for the
// service throughput benchmark (bench/bench_service_throughput.cpp).
//
// A trace is a list of (arrival time, query, spec) tuples drawn from a
// pool of `distinct_jobs` recurring job templates — the paper's §6.5
// premise that production analytics is dominated by recurring
// submissions. `repeat_ratio` controls how many arrivals re-draw an
// existing template (cacheable/dedupable) versus materialize a fresh
// one (unique seed, guaranteed cold). Three arrival shapes:
//
//   kUniform — Poisson arrivals at a constant rate (exponential gaps);
//   kBursty  — duty-cycled Poisson: `burst_factor` x the base rate for
//              a fraction of each period, idle otherwise (same mean);
//   kDiurnal — sinusoidally modulated rate over the trace duration
//              (one "day": trough at the start/end, peak mid-trace).
//
// Everything is seeded: the same TraceOptions always yields the same
// trace, so cache-on and cache-off benchmark runs replay identical
// workloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/engine_queries.h"

namespace ditto::service {

enum class TraceShape : std::uint8_t { kUniform, kBursty, kDiurnal };

const char* trace_shape_name(TraceShape s);

struct TraceOptions {
  TraceShape shape = TraceShape::kUniform;
  double duration_s = 10.0;   ///< open-loop window arrivals fall in
  double rate_hz = 4.0;       ///< mean arrival rate over the window
  double repeat_ratio = 0.5;  ///< fraction of arrivals drawn from the pool
  std::size_t distinct_jobs = 4;  ///< recurring template pool size
  /// Burst shaping (kBursty only): rate multiplier inside a burst and
  /// the fraction of each 1-second period spent bursting.
  double burst_factor = 4.0;
  double burst_duty = 0.25;
  /// Data scale for the generated TPC-DS miniatures.
  std::int64_t fact_rows = 2000;
  std::int64_t num_orders = 300;
  std::uint64_t seed = 42;
};

struct TraceArrival {
  double at_s = 0.0;          ///< offset from trace start
  std::string query;          ///< q1 | q16 | q94 | q95
  workload::EngineQuerySpec spec;
  bool repeat = false;        ///< drawn from the recurring pool
  std::size_t template_id = 0;  ///< pool index (repeats) or unique id
};

/// Generates the trace, sorted by arrival time. Fails INVALID_ARGUMENT
/// on nonsensical options (non-positive duration/rate, repeat_ratio
/// outside [0,1], empty pool with repeat_ratio > 0).
Result<std::vector<TraceArrival>> generate_trace(const TraceOptions& options);

}  // namespace ditto::service
