// Text spec for a multi-job serve run (`dittoctl serve`): one `policy`
// line plus one `job` line per submission. Grammar (whitespace-
// separated tokens, `#` starts a comment):
//
//   policy fifo|fair|elastic [fair_share_slots=N] [min_free_slots=N]
//   job <q1|q16|q94|q95> [arrival=SECS] [objective=jct|cost]
//       [deadline=SECS] [label=NAME] [rows=N] [orders=N] [seed=N]
//       [faults=SPEC]
//
// `arrival` is the submission offset from serve start; `faults` is a
// faults::parse_fault_spec() string (comma-separated, no spaces).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "faults/fault_injector.h"
#include "service/admission.h"
#include "workload/engine_queries.h"

namespace ditto::service {

struct ServeJobSpec {
  std::string query;
  Seconds arrival = 0.0;
  Objective objective = Objective::kJct;
  Seconds deadline = 0.0;
  std::string label;
  workload::EngineQuerySpec data;
  faults::FaultSpec faults;
};

struct ServeSpec {
  AdmissionOptions admission;
  std::vector<ServeJobSpec> jobs;
};

Result<ServeSpec> parse_serve_spec(const std::string& text);

}  // namespace ditto::service
