// Text spec for a multi-job serve run (`dittoctl serve`): one `policy`
// line plus one `job` line per submission. Grammar (whitespace-
// separated tokens, `#` starts a comment):
//
//   policy fifo|fair|elastic [fair_share_slots=N] [min_free_slots=N]
//          [queue_depth=N] [reject_infeasible=0|1] [cache_bytes=N]
//   job <q1|q16|q94|q95> [arrival=SECS] [objective=jct|cost]
//       [deadline=SECS] [label=NAME] [rows=N] [orders=N] [seed=N]
//       [faults=SPEC] [tier=latency|batch] [retries=N]
//       [input_version=N] [cache=on|off]
//
// `arrival` is the submission offset from serve start; `faults` is a
// faults::parse_fault_spec() string (comma-separated, no spaces).
//
// Resilience options:
//   * `tier` is the job's SLO class. latency-tier jobs are enqueued
//     ahead of batch-tier jobs; batch is the default.
//   * `queue_depth` bounds the admission queue. A submission beyond
//     the bound is fast-rejected RESOURCE_EXHAUSTED — except that a
//     latency-tier arrival shifts the overload onto the batch tier by
//     shedding the newest queued batch job instead. 0 = unbounded.
//   * `retries` is the number of whole-job re-admissions allowed after
//     a retriable (UNAVAILABLE) engine failure; each re-run uses a
//     fresh exchange epoch.
//   * `reject_infeasible=1` fails a job at admission when the plan's
//     predicted JCT exceeds its remaining deadline (opt-in: the time
//     model predicts paper-scale seconds).
//
// Result-cache options:
//   * `cache_bytes` (policy) sizes the service's recurring-job result
//     cache; 0 disables caching and in-flight dedupe entirely. Default
//     64 MiB.
//   * `cache=off` (job) opts one job out of caching/dedupe; `cache=on`
//     is the default.
//   * `input_version=N` (job) is the explicit invalidation handle: a
//     bumped version never matches entries cached under the old one.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "faults/fault_injector.h"
#include "service/admission.h"
#include "workload/engine_queries.h"

namespace ditto::service {

struct ServeJobSpec {
  std::string query;
  Seconds arrival = 0.0;
  Objective objective = Objective::kJct;
  Seconds deadline = 0.0;
  std::string label;
  workload::EngineQuerySpec data;
  faults::FaultSpec faults;
  std::string tier = "batch";  ///< "latency" | "batch"
  int retries = 0;             ///< extra whole-job attempts on UNAVAILABLE
  bool cache = true;           ///< false = opt out of caching + dedupe
  std::uint64_t input_version = 0;  ///< cache invalidation handle
  /// The raw `job ...` line this spec was parsed from — what the
  /// service journals as the SUBMIT payload, so recovery can re-create
  /// the submission by re-parsing it.
  std::string line;
};

struct ServeSpec {
  AdmissionOptions admission;
  std::size_t max_queue_depth = 0;  ///< bounded admission queue; 0 = unbounded
  bool reject_infeasible = false;
  Bytes cache_bytes = 64ULL << 20;  ///< result-cache capacity; 0 = off
  std::vector<ServeJobSpec> jobs;
};

Result<ServeSpec> parse_serve_spec(const std::string& text);

}  // namespace ditto::service
