#include "service/engine_jobs.h"

#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "dag/dag_algorithms.h"
#include "workload/physics.h"
#include "workload/q95_engine.h"

namespace ditto::service {
namespace {

JobDag model_of(const JobDag& dag, const storage::StorageModel& external) {
  JobDag model = dag;
  workload::PhysicsParams physics;
  physics.store = external;
  workload::apply_physics(model, physics);
  return model;
}

CacheIdentity cache_identity(std::string_view query, const workload::EngineQuerySpec& spec,
                             const JobDag& model) {
  CacheIdentity id;
  id.plan_fingerprint = structural_fingerprint(model);
  id.input_signature = engine_query_signature(query, spec);
  return id;
}

EngineQueryJob from_engine_job(workload::EngineJob job, const workload::EngineAnswer& ref,
                               const storage::StorageModel& external) {
  workload::annotate_engine_volumes(job);
  EngineQueryJob out;
  out.ref_rows = ref.rows;
  out.ref_value = ref.value;
  out.sink = job.sink;
  out.extract = &workload::engine_answer_from_sink;
  out.submission.model_dag = model_of(job.dag, external);
  auto keep = std::make_shared<workload::EngineJob>(std::move(job));
  out.submission.dag = keep->dag;
  out.submission.bindings = keep->bindings;
  out.submission.keepalive = std::move(keep);
  return out;
}

workload::Q95EngineSpec q95_spec_of(const workload::EngineQuerySpec& spec) {
  workload::Q95EngineSpec q95;
  q95.sales_rows = spec.fact_rows;
  q95.num_orders = spec.num_orders;
  q95.num_warehouses = spec.num_warehouses;
  q95.num_dates = spec.num_dates;
  q95.num_sites = spec.num_sites;
  q95.return_fraction = spec.return_fraction;
  q95.price_threshold = spec.price_threshold;
  q95.date_attr_allowed = spec.dim_attr_allowed;
  q95.seed = spec.seed;
  return q95;
}

}  // namespace

const std::vector<std::string_view>& engine_query_names() {
  static const std::vector<std::string_view> names = {"q1", "q16", "q94", "q95"};
  return names;
}

std::string engine_query_signature(std::string_view query,
                                   const workload::EngineQuerySpec& spec) {
  std::ostringstream os;
  os << query << "|rows=" << spec.fact_rows << "|orders=" << spec.num_orders
     << "|wh=" << spec.num_warehouses << "|dates=" << spec.num_dates
     << "|sites=" << spec.num_sites << "|rf=" << spec.return_fraction
     << "|pt=" << spec.price_threshold << "|avg=" << spec.q1_avg_factor
     << "|attr=" << spec.dim_attr_allowed << "|seed=" << spec.seed;
  return os.str();
}

Result<EngineQueryJob> make_engine_query_job(std::string_view query,
                                             const workload::EngineQuerySpec& spec,
                                             const storage::StorageModel& external) {
  if (query == "q1") {
    workload::EngineJob job = workload::build_q1_engine_job(spec);
    const workload::EngineAnswer ref = workload::q1_engine_reference(job, spec);
    EngineQueryJob out = from_engine_job(std::move(job), ref, external);
    out.submission.cache_id = cache_identity(query, spec, out.submission.model_dag);
    return out;
  }
  if (query == "q16") {
    workload::EngineJob job = workload::build_q16_engine_job(spec);
    const workload::EngineAnswer ref = workload::q16_engine_reference(job, spec);
    EngineQueryJob out = from_engine_job(std::move(job), ref, external);
    out.submission.cache_id = cache_identity(query, spec, out.submission.model_dag);
    return out;
  }
  if (query == "q94") {
    workload::EngineJob job = workload::build_q94_engine_job(spec);
    const workload::EngineAnswer ref = workload::q94_engine_reference(job, spec);
    EngineQueryJob out = from_engine_job(std::move(job), ref, external);
    out.submission.cache_id = cache_identity(query, spec, out.submission.model_dag);
    return out;
  }
  if (query == "q95") {
    const workload::Q95EngineSpec q95_spec = q95_spec_of(spec);
    workload::Q95EngineJob job = workload::build_q95_engine_job(q95_spec);
    const workload::Q95Answer ref = workload::q95_reference(job, q95_spec);
    workload::annotate_q95_volumes(job);

    EngineQueryJob out;
    out.ref_rows = ref.order_count;
    out.ref_value = ref.total_revenue;
    out.sink = static_cast<StageId>(job.dag.num_stages() - 1);  // reduce2
    out.extract = +[](const exec::Table& sink) -> Result<workload::EngineAnswer> {
      auto answer = workload::q95_answer_from_sink(sink);
      if (!answer.ok()) return answer.status();
      return workload::EngineAnswer{answer->order_count, answer->total_revenue};
    };
    out.submission.model_dag = model_of(job.dag, external);
    out.submission.cache_id = cache_identity(query, spec, out.submission.model_dag);
    auto keep = std::make_shared<workload::Q95EngineJob>(std::move(job));
    out.submission.dag = keep->dag;
    out.submission.bindings = keep->bindings;
    out.submission.keepalive = std::move(keep);
    return out;
  }
  return Status::invalid_argument("unknown engine query '" + std::string(query) +
                                  "' (want q1|q16|q94|q95)");
}

}  // namespace ditto::service
