#include "service/journal.h"

#include <array>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace ditto::service {
namespace {

constexpr char kMagic[8] = {'D', 'I', 'T', 'T', 'O', 'J', 'L', '1'};
constexpr std::size_t kHeaderBytes = 8;  ///< u32 len + u32 crc per record

/// CRC-32 (IEEE, reflected), table-driven — the integrity check that
/// tells a mangled mid-record from a merely truncated tail.
std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

std::uint32_t read_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + i])) << (8 * i);
  }
  return v;
}

std::string format_seconds(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<std::uint64_t> parse_u64(const std::string& what, const std::string& text) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    return Status::invalid_argument("journal: bad " + what + " '" + text + "'");
  }
}

/// One record as text. `payload=` (SUBMIT) and `error=` (FINISH) come
/// last and consume the remainder, so they may contain spaces.
std::string record_text(const JournalRecord& rec) {
  std::ostringstream os;
  os << journal_kind_name(rec.kind) << " jid=" << rec.jid;
  switch (rec.kind) {
    case JournalKind::kSubmit:
      os << " tier=" << (rec.tier.empty() ? "batch" : rec.tier)
         << " deadline=" << format_seconds(rec.deadline) << " payload=" << rec.payload;
      break;
    case JournalKind::kAdmit:
      break;
    case JournalKind::kStart:
      os << " epoch=" << rec.epoch;
      break;
    case JournalKind::kFinish:
      os << " state=" << rec.state << " error=" << rec.error;
      break;
  }
  return os.str();
}

Result<JournalRecord> parse_record_text(const std::string& text) {
  JournalRecord rec;
  std::istringstream in(text);
  std::string kind;
  if (!(in >> kind)) return Status::invalid_argument("journal: empty record");
  if (kind == "submit") {
    rec.kind = JournalKind::kSubmit;
  } else if (kind == "admit") {
    rec.kind = JournalKind::kAdmit;
  } else if (kind == "start") {
    rec.kind = JournalKind::kStart;
  } else if (kind == "finish") {
    rec.kind = JournalKind::kFinish;
  } else {
    return Status::invalid_argument("journal: unknown record kind '" + kind + "'");
  }

  std::string token;
  bool saw_jid = false;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::invalid_argument("journal: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "payload" || key == "error") {
      // Consumes the remainder of the record verbatim.
      std::string rest;
      std::getline(in, rest);
      value += rest;
      (key == "payload" ? rec.payload : rec.error) = value;
      continue;
    }
    if (key == "jid") {
      DITTO_ASSIGN_OR_RETURN(rec.jid, parse_u64("jid", value));
      saw_jid = true;
    } else if (key == "tier") {
      if (value != "latency" && value != "batch") {
        return Status::invalid_argument("journal: bad tier '" + value + "'");
      }
      rec.tier = value;
    } else if (key == "deadline") {
      try {
        std::size_t used = 0;
        rec.deadline = std::stod(value, &used);
        if (used != value.size() || !(rec.deadline >= 0.0)) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        return Status::invalid_argument("journal: bad deadline '" + value + "'");
      }
    } else if (key == "epoch") {
      DITTO_ASSIGN_OR_RETURN(const std::uint64_t e, parse_u64("epoch", value));
      rec.epoch = static_cast<int>(e);
    } else if (key == "state") {
      rec.state = value;
    } else {
      return Status::invalid_argument("journal: unknown field '" + key + "'");
    }
  }
  if (!saw_jid || rec.jid == 0) return Status::invalid_argument("journal: record without jid");
  if (rec.kind == JournalKind::kSubmit && rec.payload.empty()) {
    return Status::invalid_argument("journal: submit record without payload");
  }
  if (rec.kind == JournalKind::kFinish && rec.state.empty()) {
    return Status::invalid_argument("journal: finish record without state");
  }
  return rec;
}

void note_append(bool ok) {
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (!mx.enabled()) return;
  mx.counter(ok ? "service.journal_appends" : "service.journal_append_failures").add();
}

}  // namespace

const char* journal_kind_name(JournalKind k) {
  switch (k) {
    case JournalKind::kSubmit: return "submit";
    case JournalKind::kAdmit: return "admit";
    case JournalKind::kStart: return "start";
    case JournalKind::kFinish: return "finish";
  }
  return "unknown";
}

std::string JobJournal::encode(const JournalRecord& rec) {
  const std::string text = record_text(rec);
  std::string out;
  out.reserve(kHeaderBytes + text.size());
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  put_u32(out, crc32(text));
  out += text;
  return out;
}

Result<std::vector<JournalRecord>> JobJournal::parse(std::string_view bytes) {
  std::vector<JournalRecord> records;
  if (bytes.empty()) return records;
  if (bytes.size() < sizeof(kMagic)) {
    // Crash during the very first append, mid-magic: an empty journal.
    return records;
  }
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return Status::invalid_argument("journal: bad magic");
  }
  std::size_t at = sizeof(kMagic);
  while (at < bytes.size()) {
    if (bytes.size() - at < kHeaderBytes) break;  // torn header: truncated tail
    const std::uint32_t len = read_u32(bytes, at);
    const std::uint32_t crc = read_u32(bytes, at + 4);
    if (bytes.size() - at - kHeaderBytes < len) break;  // torn payload: truncated tail
    const std::string_view payload = bytes.substr(at + kHeaderBytes, len);
    if (crc32(payload) != crc) {
      return Status::invalid_argument("journal: CRC mismatch in record " +
                                      std::to_string(records.size()));
    }
    auto rec = parse_record_text(std::string(payload));
    if (!rec.ok()) {
      return Status::invalid_argument("journal: record " + std::to_string(records.size()) +
                                      ": " + rec.status().message());
    }
    records.push_back(std::move(*rec));
    at += kHeaderBytes + len;
  }
  return records;
}

Result<std::vector<JournalRecord>> JobJournal::replay(const storage::ObjectStore& store,
                                                      const std::string& key) {
  auto bytes = store.get(key);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return std::vector<JournalRecord>{};
    return bytes.status();
  }
  auto parsed = parse(*bytes);
  if (!parsed.ok()) {
    return Status::invalid_argument("journal '" + key + "': " + parsed.status().message());
  }
  return parsed;
}

RecoveryPlan build_recovery(const std::vector<JournalRecord>& records) {
  struct Fold {
    RecoveredJob job;
    bool started = false;
    bool finished = false;
    int last_epoch = 0;
  };
  std::map<std::uint64_t, Fold> by_jid;
  for (const JournalRecord& rec : records) {
    Fold& f = by_jid[rec.jid];
    f.job.jid = rec.jid;
    switch (rec.kind) {
      case JournalKind::kSubmit:
        f.job.payload = rec.payload;
        f.job.tier = rec.tier;
        f.job.deadline = rec.deadline;
        break;
      case JournalKind::kAdmit:
        break;
      case JournalKind::kStart:
        f.started = true;
        f.last_epoch = std::max(f.last_epoch, rec.epoch);
        break;
      case JournalKind::kFinish:
        f.finished = true;
        f.job.final_state = rec.state;
        break;
    }
  }
  RecoveryPlan plan;
  for (auto& [jid, f] : by_jid) {
    if (f.finished) {
      f.job.disposition = RecoveredJob::Disposition::kSkip;
      f.job.next_epoch = f.last_epoch;
      ++plan.completed;
    } else if (f.started) {
      // Interrupted mid-run: the fresh epoch namespaces its exchange
      // keys away from the dead attempt's partial publishes.
      f.job.disposition = RecoveredJob::Disposition::kRerun;
      f.job.next_epoch = f.last_epoch + 1;
      ++plan.to_rerun;
    } else {
      f.job.disposition = RecoveredJob::Disposition::kResubmit;
      f.job.next_epoch = f.last_epoch;
      ++plan.to_resubmit;
    }
    plan.jobs.push_back(std::move(f.job));
  }
  return plan;
}

JobJournal::JobJournal(storage::ObjectStore& store, std::string key,
                       faults::FaultInjector* injector)
    : store_(&store), key_(std::move(key)), injector_(injector) {
  retry_.max_attempts = 3;
  retry_.initial_backoff = 1e-3;
  retry_.max_backoff = 0.02;
  retry_.budget = 0.5;
}

void JobJournal::set_retry_policy(faults::RetryPolicy policy) {
  std::lock_guard<std::mutex> lk(mu_);
  retry_ = policy;
}

Status JobJournal::open() {
  DITTO_ASSIGN_OR_RETURN(const std::vector<JournalRecord> records, replay(*store_, key_));
  std::lock_guard<std::mutex> lk(mu_);
  // Rebuild the valid byte prefix from the replayed records (encode is
  // canonical), dropping any torn tail the crash left behind.
  log_.assign(kMagic, sizeof(kMagic));
  for (const JournalRecord& rec : records) {
    log_ += encode(rec);
    next_jid_ = std::max(next_jid_, rec.jid + 1);
  }
  if (records.empty()) log_.clear();  // fresh journal: write magic on first append
  return Status::ok();
}

Status JobJournal::append_locked(const JournalRecord& rec) {
  std::string next = log_.empty() ? std::string(kMagic, sizeof(kMagic)) : log_;
  next += encode(rec);
  const Status st = faults::retry_status(retry_, "journal.append", [&] {
    if (injector_ != nullptr && injector_->should_fail_journal(key_)) {
      return Status::unavailable("injected journal-append failure (" + key_ + ")");
    }
    return store_->put(key_, next);
  });
  note_append(st.is_ok());
  if (!st.is_ok()) return st;
  log_ = std::move(next);
  ++appended_;
  return Status::ok();
}

Result<std::uint64_t> JobJournal::append_submit(const std::string& payload,
                                                const std::string& tier, Seconds deadline,
                                                std::uint64_t jid) {
  std::lock_guard<std::mutex> lk(mu_);
  JournalRecord rec;
  rec.kind = JournalKind::kSubmit;
  rec.jid = jid != 0 ? jid : next_jid_;
  rec.payload = payload;
  rec.tier = tier;
  rec.deadline = deadline;
  DITTO_RETURN_IF_ERROR(append_locked(rec));
  if (jid == 0) ++next_jid_;
  next_jid_ = std::max(next_jid_, rec.jid + 1);
  return rec.jid;
}

Status JobJournal::append_admit(std::uint64_t jid) {
  std::lock_guard<std::mutex> lk(mu_);
  JournalRecord rec;
  rec.kind = JournalKind::kAdmit;
  rec.jid = jid;
  return append_locked(rec);
}

Status JobJournal::append_start(std::uint64_t jid, int epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  JournalRecord rec;
  rec.kind = JournalKind::kStart;
  rec.jid = jid;
  rec.epoch = epoch;
  return append_locked(rec);
}

Status JobJournal::append_finish(std::uint64_t jid, const std::string& state,
                                 const std::string& error) {
  std::lock_guard<std::mutex> lk(mu_);
  JournalRecord rec;
  rec.kind = JournalKind::kFinish;
  rec.jid = jid;
  rec.state = state;
  rec.error = error;
  return append_locked(rec);
}

std::size_t JobJournal::appended() const {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

}  // namespace ditto::service
