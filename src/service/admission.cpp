#include "service/admission.h"

#include <numeric>

#include "cluster/cluster.h"

namespace ditto::service {

const char* admission_policy_name(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kFifoExclusive: return "fifo-exclusive";
    case AdmissionPolicy::kFairShare: return "fair-share";
    case AdmissionPolicy::kElastic: return "elastic";
  }
  return "unknown";
}

Result<AdmissionPolicy> parse_admission_policy(std::string_view text) {
  if (text == "fifo" || text == "fifo-exclusive" || text == "exclusive") {
    return AdmissionPolicy::kFifoExclusive;
  }
  if (text == "fair" || text == "fair-share") return AdmissionPolicy::kFairShare;
  if (text == "elastic") return AdmissionPolicy::kElastic;
  return Status::invalid_argument("unknown admission policy '" + std::string(text) +
                                  "' (want fifo|fair|elastic)");
}

std::vector<int> admission_offer(const AdmissionOptions& options, const std::vector<int>& free,
                                 int total_slots, int leased_slots) {
  const int free_total = std::accumulate(free.begin(), free.end(), 0);
  switch (options.policy) {
    case AdmissionPolicy::kFifoExclusive:
      // Head runs alone on the idle cluster or not at all.
      if (leased_slots > 0 || free_total < total_slots) return {};
      return free;
    case AdmissionPolicy::kFairShare: {
      if (free_total < std::max(1, options.min_free_slots)) return {};
      const int cap =
          options.fair_share_slots > 0 ? options.fair_share_slots : std::max(1, total_slots / 2);
      return cluster::cap_offer(free, cap);
    }
    case AdmissionPolicy::kElastic:
      if (free_total < std::max(1, options.min_free_slots)) return {};
      return free;
  }
  return {};
}

}  // namespace ditto::service
