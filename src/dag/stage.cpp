#include "dag/stage.h"

namespace ditto {

double Stage::alpha_total() const {
  double a = 0.0;
  for (const Step& s : steps_) {
    if (!s.pipelined) a += s.alpha;
  }
  return a;
}

double Stage::beta_total() const {
  double b = 0.0;
  for (const Step& s : steps_) {
    if (!s.pipelined) b += s.beta;
  }
  return b;
}

double Stage::compute_alpha() const {
  double a = 0.0;
  for (const Step& s : steps_) {
    if (s.kind == StepKind::kCompute && !s.pipelined) a += s.alpha;
  }
  return a;
}

double Stage::compute_beta() const {
  double b = 0.0;
  for (const Step& s : steps_) {
    if (s.kind == StepKind::kCompute && !s.pipelined) b += s.beta;
  }
  return b;
}

}  // namespace ditto
