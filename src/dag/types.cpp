#include "dag/types.h"

namespace ditto {

const char* step_kind_name(StepKind k) {
  switch (k) {
    case StepKind::kRead: return "read";
    case StepKind::kCompute: return "compute";
    case StepKind::kWrite: return "write";
  }
  return "?";
}

const char* exchange_kind_name(ExchangeKind k) {
  switch (k) {
    case ExchangeKind::kShuffle: return "shuffle";
    case ExchangeKind::kGather: return "gather";
    case ExchangeKind::kBroadcast: return "broadcast";
    case ExchangeKind::kAllGather: return "all-gather";
  }
  return "?";
}

const char* objective_name(Objective o) {
  return o == Objective::kJct ? "JCT" : "cost";
}

}  // namespace ditto
