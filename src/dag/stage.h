// Stage: one node of the job DAG.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "dag/types.h"

namespace ditto {

/// A stage of an analytics job: a set of identical parallel tasks.
///
/// The fitted time-model parameters live on the steps; the resource
/// model (paper Eq. 5, M(s, d) = rho + sigma * d) lives here. `op`
/// is a human-readable operator label ("map", "join", "groupby", ...).
class Stage {
 public:
  Stage() = default;
  Stage(StageId id, std::string name) : id_(id), name_(std::move(name)) {}

  StageId id() const { return id_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  const std::string& op() const { return op_; }
  void set_op(std::string op) { op_ = std::move(op); }

  Bytes input_bytes() const { return input_bytes_; }
  void set_input_bytes(Bytes b) { input_bytes_ = b; }
  Bytes output_bytes() const { return output_bytes_; }
  void set_output_bytes(Bytes b) { output_bytes_ = b; }

  const std::vector<Step>& steps() const { return steps_; }
  std::vector<Step>& steps() { return steps_; }
  void add_step(Step s) { steps_.push_back(s); }

  /// Resource-usage model M(s, d) = rho + sigma * d  (paper Eq. 5).
  /// rho: resource tied to the data processed; sigma: per-function overhead.
  double rho() const { return rho_; }
  void set_rho(double r) { rho_ = r; }
  double sigma() const { return sigma_; }
  void set_sigma(double s) { sigma_ = s; }

  /// Per-task memory demand in bytes for a given DoP; used for cost
  /// accounting (memory GB·s). Data splits across tasks, plus a fixed
  /// function footprint.
  Bytes task_memory_bytes(int dop) const {
    if (dop <= 0) dop = 1;
    return input_bytes_ / static_cast<Bytes>(dop) + base_memory_bytes_;
  }
  Bytes base_memory_bytes() const { return base_memory_bytes_; }
  void set_base_memory_bytes(Bytes b) { base_memory_bytes_ = b; }

  /// Straggler scaling factor observed by the profiler: max task time /
  /// mean task time (paper §4.1 "Modeling stragglers"). The predictor
  /// inflates the parallelized term by this factor so predictions track
  /// the slowest task, which determines the stage's completion.
  double straggler_scale() const { return straggler_scale_; }
  void set_straggler_scale(double s) { straggler_scale_ = s; }

  /// Sum of alpha over all (non-pipelined) steps; the stage-level
  /// "parallelized time" parameter used by DoP ratio computing when no
  /// placement information is available.
  double alpha_total() const;
  /// Sum of beta over all (non-pipelined) steps.
  double beta_total() const;

  /// Alpha/beta of compute steps only (placement-independent).
  double compute_alpha() const;
  double compute_beta() const;

 private:
  StageId id_ = kNoStage;
  std::string name_;
  std::string op_;
  Bytes input_bytes_ = 0;
  Bytes output_bytes_ = 0;
  Bytes base_memory_bytes_ = 128_MiB;  // default serverless function footprint
  std::vector<Step> steps_;
  double rho_ = 1.0;
  double sigma_ = 0.0;
  double straggler_scale_ = 1.0;
};

}  // namespace ditto
