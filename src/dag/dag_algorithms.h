// Graph algorithms over JobDag used by the scheduler:
// topological order, stage depth (paper Algorithm 1 merges bottom-up,
// from max depth to the root), weighted critical path (paper §4.3), and
// bounded path enumeration for tests and diagnostics.
#pragma once

#include <functional>
#include <vector>

#include "dag/job_dag.h"

namespace ditto {

/// Topological order (sources first). The DAG must be valid.
std::vector<StageId> topological_order(const JobDag& dag);

/// Depth of each stage: the number of edges on the longest path from the
/// stage down to any sink. Sinks (final stages) have depth 0; the paper's
/// "root" is the final stage. Algorithm 1 processes depths max..1.
std::vector<int> stage_depths(const JobDag& dag);

/// Maximum stage depth in the DAG.
int max_depth(const JobDag& dag);

/// Weight callbacks: the grouping objective decides these (paper §4.3).
/// For JCT:   node = C(s),            edge = W(src) + R(dst)
/// For cost:  node = M(s)C(s),        edge = M(src)W(src) + M(dst)R(dst)
using NodeWeightFn = std::function<double(StageId)>;
using EdgeWeightFn = std::function<double(const Edge&)>;

struct CriticalPath {
  std::vector<StageId> stages;  ///< source..sink order
  double length = 0.0;          ///< sum of node + edge weights along it
};

/// Maximum-weight source-to-sink path.
CriticalPath critical_path(const JobDag& dag, const NodeWeightFn& node_weight,
                           const EdgeWeightFn& edge_weight);

/// Length of the critical path only (no path reconstruction).
double critical_path_length(const JobDag& dag, const NodeWeightFn& node_weight,
                            const EdgeWeightFn& edge_weight);

/// All source-to-sink paths, up to `max_paths` (guards exponential DAGs).
std::vector<std::vector<StageId>> enumerate_paths(const JobDag& dag,
                                                  std::size_t max_paths = 1024);

/// True iff `a` is an ancestor of `b` (a strictly upstream of b).
bool is_ancestor(const JobDag& dag, StageId a, StageId b);

/// Result of pruning already-completed stages from a DAG (the service
/// result cache's stage-granular reuse): `dag` holds the stages that
/// still execute plus zero-compute *replay* sources standing in for
/// completed stages whose outputs downstream stages still read. A
/// replay stage keeps the original's name (suffixed "~cached"), output
/// volume, and write steps — its binding re-publishes the cached table
/// through the job's exchange prefix — but reads and computes nothing.
struct DagPruning {
  JobDag dag;
  std::vector<StageId> to_old;   ///< new id -> original id
  std::vector<StageId> to_new;   ///< original id -> new id (kNoStage = dropped)
  std::vector<bool> is_replay;   ///< by new id
  std::size_t num_replay = 0;    ///< replay sources in `dag`
  std::size_t num_dropped = 0;   ///< original stages neither executed nor replayed
};

/// Rebuilds `dag` without the `completed` stages (completed[s] = stage
/// s's output is cached): stages whose results no uncached sink still
/// needs are dropped; completed stages feeding a remaining stage become
/// replay sources. Fails INVALID_ARGUMENT when every sink is completed
/// (a whole-job hit: nothing left to run) or when reuse would cross a
/// kGather edge — gather routes producer task t to consumer task t, so
/// a replay source with a different DoP would silently misroute rows;
/// callers must not mark gather producers completed.
Result<DagPruning> prune_completed_stages(const JobDag& dag,
                                          const std::vector<bool>& completed);

/// Stable 64-bit fingerprint of the DAG's *plan shape*: stage names,
/// operators, and the edge list with exchange kinds. Two submissions of
/// the same query shape hash identically regardless of data volumes or
/// fitted model parameters, so recurring jobs share profile history
/// keyed by this value (paper §6.5: recurring analytics jobs).
std::uint64_t structural_fingerprint(const JobDag& dag);

}  // namespace ditto
