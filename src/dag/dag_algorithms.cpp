#include "dag/dag_algorithms.h"

#include <algorithm>
#include <cassert>

namespace ditto {

std::vector<StageId> topological_order(const JobDag& dag) {
  const std::size_t n = dag.num_stages();
  std::vector<std::size_t> indeg(n, 0);
  for (const Edge& e : dag.edges()) ++indeg[e.dst];
  std::vector<StageId> ready;
  for (StageId i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::vector<StageId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const StageId cur = ready.back();
    ready.pop_back();
    order.push_back(cur);
    for (StageId c : dag.children(cur)) {
      if (--indeg[c] == 0) ready.push_back(c);
    }
  }
  assert(order.size() == n && "topological_order on cyclic graph");
  return order;
}

std::vector<int> stage_depths(const JobDag& dag) {
  const auto order = topological_order(dag);
  std::vector<int> depth(dag.num_stages(), 0);
  // Process in reverse topological order so children are final first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const StageId s = *it;
    int d = 0;
    for (StageId c : dag.children(s)) d = std::max(d, depth[c] + 1);
    depth[s] = d;
  }
  return depth;
}

int max_depth(const JobDag& dag) {
  int m = 0;
  for (int d : stage_depths(dag)) m = std::max(m, d);
  return m;
}

CriticalPath critical_path(const JobDag& dag, const NodeWeightFn& node_weight,
                           const EdgeWeightFn& edge_weight) {
  const auto order = topological_order(dag);
  const std::size_t n = dag.num_stages();
  std::vector<double> best(n, 0.0);
  std::vector<StageId> pred(n, kNoStage);

  for (StageId s : order) {
    double incoming = 0.0;
    StageId from = kNoStage;
    for (StageId p : dag.parents(s)) {
      const Edge* e = dag.find_edge(p, s);
      assert(e != nullptr);
      const double cand = best[p] + edge_weight(*e);
      if (cand > incoming || from == kNoStage) {
        incoming = cand;
        from = p;
      }
    }
    best[s] = incoming + node_weight(s);
    pred[s] = from;
  }

  CriticalPath cp;
  if (n == 0) return cp;
  const auto sinks = dag.sinks();
  assert(!sinks.empty());
  StageId tail = sinks.front();
  for (StageId s : sinks) {
    if (best[s] > best[tail]) tail = s;
  }
  cp.length = best[tail];
  for (StageId s = tail; s != kNoStage; s = pred[s]) cp.stages.push_back(s);
  std::reverse(cp.stages.begin(), cp.stages.end());
  return cp;
}

double critical_path_length(const JobDag& dag, const NodeWeightFn& node_weight,
                            const EdgeWeightFn& edge_weight) {
  return critical_path(dag, node_weight, edge_weight).length;
}

namespace {
void dfs_paths(const JobDag& dag, StageId cur, std::vector<StageId>& path,
               std::vector<std::vector<StageId>>& out, std::size_t max_paths) {
  if (out.size() >= max_paths) return;
  path.push_back(cur);
  if (dag.children(cur).empty()) {
    out.push_back(path);
  } else {
    for (StageId c : dag.children(cur)) dfs_paths(dag, c, path, out, max_paths);
  }
  path.pop_back();
}
}  // namespace

std::vector<std::vector<StageId>> enumerate_paths(const JobDag& dag, std::size_t max_paths) {
  std::vector<std::vector<StageId>> out;
  std::vector<StageId> path;
  for (StageId s : dag.sources()) dfs_paths(dag, s, path, out, max_paths);
  return out;
}

bool is_ancestor(const JobDag& dag, StageId a, StageId b) {
  if (a == b) return false;
  std::vector<StageId> stack{a};
  std::vector<bool> seen(dag.num_stages(), false);
  while (!stack.empty()) {
    const StageId cur = stack.back();
    stack.pop_back();
    for (StageId c : dag.children(cur)) {
      if (c == b) return true;
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  return false;
}

namespace {

/// FNV-1a over a byte sequence, seeded with the running hash.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  h = fnv1a(h, s.data(), s.size());
  // Length delimiter so ("ab","c") != ("a","bc").
  const std::uint64_t len = s.size();
  return fnv1a(h, &len, sizeof(len));
}

}  // namespace

Result<DagPruning> prune_completed_stages(const JobDag& dag,
                                          const std::vector<bool>& completed) {
  const std::size_t n = dag.num_stages();
  if (completed.size() != n) {
    return Status::invalid_argument("completed mask has " + std::to_string(completed.size()) +
                                    " entries for a " + std::to_string(n) + "-stage DAG");
  }

  // A stage still executes iff it is uncached and some uncached sink
  // depends on it through uncached stages only (a cached consumer cuts
  // the dependency: its output is served, not recomputed). Walk in
  // reverse topological order so children resolve first.
  std::vector<bool> needed(n, false);
  const std::vector<StageId> topo = topological_order(dag);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const StageId s = *it;
    if (completed[s]) continue;
    if (dag.children(s).empty()) {
      needed[s] = true;
      continue;
    }
    for (const StageId c : dag.children(s)) {
      if (needed[c]) {
        needed[s] = true;
        break;
      }
    }
  }
  if (std::find(needed.begin(), needed.end(), true) == needed.end()) {
    return Status::invalid_argument(
        "every sink is completed: whole-job hit, nothing to prune");
  }

  // Completed stages a remaining stage still reads become replay
  // sources. Replaying across a gather edge would misroute rows (1:1
  // task mapping under a different DoP) — refuse rather than corrupt.
  std::vector<bool> replay(n, false);
  for (const Edge& e : dag.edges()) {
    if (!completed[e.src] || !needed[e.dst]) continue;
    if (e.exchange == ExchangeKind::kGather) {
      return Status::invalid_argument("stage '" + dag.stage(e.src).name() +
                                      "' feeds a gather edge and cannot be replayed from "
                                      "cache");
    }
    replay[e.src] = true;
  }

  DagPruning out;
  out.dag = JobDag(dag.name());
  out.to_new.assign(n, kNoStage);
  for (StageId s = 0; s < n; ++s) {
    if (!needed[s] && !replay[s]) {
      ++out.num_dropped;
      continue;
    }
    const Stage& old = dag.stage(s);
    const StageId ns = out.dag.add_stage(replay[s] ? old.name() + "~cached" : old.name());
    out.to_old.push_back(s);
    out.to_new[s] = ns;
    out.is_replay.push_back(replay[s]);
    if (replay[s]) ++out.num_replay;
    Stage& fresh = out.dag.stage(ns);
    fresh.set_op(replay[s] ? "cached" : old.op());
    fresh.set_input_bytes(replay[s] ? 0 : old.input_bytes());
    fresh.set_output_bytes(old.output_bytes());
    fresh.set_rho(old.rho());
    fresh.set_sigma(old.sigma());
    fresh.set_base_memory_bytes(old.base_memory_bytes());
    fresh.set_straggler_scale(old.straggler_scale());
  }

  // Steps: keep what the pruned run actually performs, deps remapped.
  // A replay source only writes; reads from dropped/replayed producers
  // and writes toward completed consumers vanish with their edges.
  for (StageId ns = 0; ns < out.dag.num_stages(); ++ns) {
    const Stage& old = dag.stage(out.to_old[ns]);
    Stage& fresh = out.dag.stage(ns);
    for (const Step& step : old.steps()) {
      Step copy = step;
      if (step.dep != kNoStage) {
        const StageId dep = out.to_new[step.dep];
        const bool dep_runs = dep != kNoStage && !out.is_replay[dep];
        if (step.kind == StepKind::kRead) {
          if (out.is_replay[ns] || dep == kNoStage) continue;
        } else if (step.kind == StepKind::kWrite) {
          if (!dep_runs) continue;  // consumer is served from cache
        }
        copy.dep = dep;
      } else if (out.is_replay[ns] && step.kind != StepKind::kWrite) {
        continue;  // replay reads nothing and computes nothing
      }
      fresh.add_step(copy);
    }
  }

  for (const Edge& e : dag.edges()) {
    if (out.to_new[e.src] == kNoStage || !needed[e.dst]) continue;
    DITTO_RETURN_IF_ERROR(
        out.dag.add_edge(out.to_new[e.src], out.to_new[e.dst], e.exchange, e.bytes));
  }
  DITTO_RETURN_IF_ERROR(out.dag.validate());
  return out;
}

std::uint64_t structural_fingerprint(const JobDag& dag) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  const std::uint64_t stages = dag.num_stages();
  h = fnv1a(h, &stages, sizeof(stages));
  for (const Stage& s : dag.stages()) {
    h = fnv1a_str(h, s.name());
    h = fnv1a_str(h, s.op());
  }
  for (const Edge& e : dag.edges()) {
    const std::uint64_t packed = (static_cast<std::uint64_t>(e.src) << 40) |
                                 (static_cast<std::uint64_t>(e.dst) << 8) |
                                 static_cast<std::uint64_t>(e.exchange);
    h = fnv1a(h, &packed, sizeof(packed));
  }
  return h;
}

}  // namespace ditto
