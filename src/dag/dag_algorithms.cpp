#include "dag/dag_algorithms.h"

#include <algorithm>
#include <cassert>

namespace ditto {

std::vector<StageId> topological_order(const JobDag& dag) {
  const std::size_t n = dag.num_stages();
  std::vector<std::size_t> indeg(n, 0);
  for (const Edge& e : dag.edges()) ++indeg[e.dst];
  std::vector<StageId> ready;
  for (StageId i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::vector<StageId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const StageId cur = ready.back();
    ready.pop_back();
    order.push_back(cur);
    for (StageId c : dag.children(cur)) {
      if (--indeg[c] == 0) ready.push_back(c);
    }
  }
  assert(order.size() == n && "topological_order on cyclic graph");
  return order;
}

std::vector<int> stage_depths(const JobDag& dag) {
  const auto order = topological_order(dag);
  std::vector<int> depth(dag.num_stages(), 0);
  // Process in reverse topological order so children are final first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const StageId s = *it;
    int d = 0;
    for (StageId c : dag.children(s)) d = std::max(d, depth[c] + 1);
    depth[s] = d;
  }
  return depth;
}

int max_depth(const JobDag& dag) {
  int m = 0;
  for (int d : stage_depths(dag)) m = std::max(m, d);
  return m;
}

CriticalPath critical_path(const JobDag& dag, const NodeWeightFn& node_weight,
                           const EdgeWeightFn& edge_weight) {
  const auto order = topological_order(dag);
  const std::size_t n = dag.num_stages();
  std::vector<double> best(n, 0.0);
  std::vector<StageId> pred(n, kNoStage);

  for (StageId s : order) {
    double incoming = 0.0;
    StageId from = kNoStage;
    for (StageId p : dag.parents(s)) {
      const Edge* e = dag.find_edge(p, s);
      assert(e != nullptr);
      const double cand = best[p] + edge_weight(*e);
      if (cand > incoming || from == kNoStage) {
        incoming = cand;
        from = p;
      }
    }
    best[s] = incoming + node_weight(s);
    pred[s] = from;
  }

  CriticalPath cp;
  if (n == 0) return cp;
  const auto sinks = dag.sinks();
  assert(!sinks.empty());
  StageId tail = sinks.front();
  for (StageId s : sinks) {
    if (best[s] > best[tail]) tail = s;
  }
  cp.length = best[tail];
  for (StageId s = tail; s != kNoStage; s = pred[s]) cp.stages.push_back(s);
  std::reverse(cp.stages.begin(), cp.stages.end());
  return cp;
}

double critical_path_length(const JobDag& dag, const NodeWeightFn& node_weight,
                            const EdgeWeightFn& edge_weight) {
  return critical_path(dag, node_weight, edge_weight).length;
}

namespace {
void dfs_paths(const JobDag& dag, StageId cur, std::vector<StageId>& path,
               std::vector<std::vector<StageId>>& out, std::size_t max_paths) {
  if (out.size() >= max_paths) return;
  path.push_back(cur);
  if (dag.children(cur).empty()) {
    out.push_back(path);
  } else {
    for (StageId c : dag.children(cur)) dfs_paths(dag, c, path, out, max_paths);
  }
  path.pop_back();
}
}  // namespace

std::vector<std::vector<StageId>> enumerate_paths(const JobDag& dag, std::size_t max_paths) {
  std::vector<std::vector<StageId>> out;
  std::vector<StageId> path;
  for (StageId s : dag.sources()) dfs_paths(dag, s, path, out, max_paths);
  return out;
}

bool is_ancestor(const JobDag& dag, StageId a, StageId b) {
  if (a == b) return false;
  std::vector<StageId> stack{a};
  std::vector<bool> seen(dag.num_stages(), false);
  while (!stack.empty()) {
    const StageId cur = stack.back();
    stack.pop_back();
    for (StageId c : dag.children(cur)) {
      if (c == b) return true;
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  return false;
}

namespace {

/// FNV-1a over a byte sequence, seeded with the running hash.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  h = fnv1a(h, s.data(), s.size());
  // Length delimiter so ("ab","c") != ("a","bc").
  const std::uint64_t len = s.size();
  return fnv1a(h, &len, sizeof(len));
}

}  // namespace

std::uint64_t structural_fingerprint(const JobDag& dag) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  const std::uint64_t stages = dag.num_stages();
  h = fnv1a(h, &stages, sizeof(stages));
  for (const Stage& s : dag.stages()) {
    h = fnv1a_str(h, s.name());
    h = fnv1a_str(h, s.op());
  }
  for (const Edge& e : dag.edges()) {
    const std::uint64_t packed = (static_cast<std::uint64_t>(e.src) << 40) |
                                 (static_cast<std::uint64_t>(e.dst) << 8) |
                                 static_cast<std::uint64_t>(e.exchange);
    h = fnv1a(h, &packed, sizeof(packed));
  }
  return h;
}

}  // namespace ditto
