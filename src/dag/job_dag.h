// JobDag: the DAG of stages describing one analytics job.
//
// Invariants (checked by validate()):
//   * stage ids are dense [0, num_stages)
//   * edges reference existing stages and form no cycle
//   * at most one edge per (src, dst) pair
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dag/stage.h"
#include "dag/types.h"

namespace ditto {

class JobDag {
 public:
  JobDag() = default;
  explicit JobDag(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Adds a stage and returns its id (dense, sequential).
  StageId add_stage(std::string stage_name);

  /// Adds a data dependency src -> dst. Fails on unknown ids, self
  /// loops, duplicates, or if the edge would create a cycle.
  Status add_edge(StageId src, StageId dst,
                  ExchangeKind exchange = ExchangeKind::kShuffle, Bytes bytes = 0);

  std::size_t num_stages() const { return stages_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Stage& stage(StageId id) const { return stages_.at(id); }
  Stage& stage(StageId id) { return stages_.at(id); }
  const std::vector<Stage>& stages() const { return stages_; }

  const std::vector<Edge>& edges() const { return edges_; }
  Edge& edge_between(StageId src, StageId dst);
  const Edge* find_edge(StageId src, StageId dst) const;

  /// Upstream stages of `id` (stages `id` reads from).
  const std::vector<StageId>& parents(StageId id) const { return parents_.at(id); }
  /// Downstream stages of `id` (stages reading `id`'s output).
  const std::vector<StageId>& children(StageId id) const { return children_.at(id); }

  /// Stages with no parents (initial stages reading external input).
  std::vector<StageId> sources() const;
  /// Stages with no children (final stages writing external output).
  std::vector<StageId> sinks() const;

  /// Full structural validation; OK iff the invariants hold.
  Status validate() const;

  /// True iff adding src -> dst would keep the graph acyclic.
  bool edge_keeps_acyclic(StageId src, StageId dst) const;

  /// Graphviz DOT rendering of stages and edges (names, exchange kinds,
  /// data volumes); handy for docs and debugging.
  std::string to_dot() const;

 private:
  bool reachable(StageId from, StageId to) const;

  std::string name_;
  std::vector<Stage> stages_;
  std::vector<Edge> edges_;
  std::vector<std::vector<StageId>> parents_;
  std::vector<std::vector<StageId>> children_;
};

}  // namespace ditto
