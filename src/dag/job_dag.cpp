#include "dag/job_dag.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/units.h"

namespace ditto {

StageId JobDag::add_stage(std::string stage_name) {
  const StageId id = static_cast<StageId>(stages_.size());
  stages_.emplace_back(id, std::move(stage_name));
  parents_.emplace_back();
  children_.emplace_back();
  return id;
}

Status JobDag::add_edge(StageId src, StageId dst, ExchangeKind exchange, Bytes bytes) {
  if (src >= stages_.size() || dst >= stages_.size()) {
    return Status::invalid_argument("edge references unknown stage");
  }
  if (src == dst) return Status::invalid_argument("self edge");
  if (find_edge(src, dst) != nullptr) return Status::already_exists("duplicate edge");
  if (!edge_keeps_acyclic(src, dst)) return Status::invalid_argument("edge creates a cycle");
  edges_.push_back(Edge{src, dst, exchange, bytes});
  children_[src].push_back(dst);
  parents_[dst].push_back(src);
  return Status::ok();
}

Edge& JobDag::edge_between(StageId src, StageId dst) {
  for (Edge& e : edges_) {
    if (e.src == src && e.dst == dst) return e;
  }
  assert(false && "edge_between: no such edge");
  return edges_.front();
}

const Edge* JobDag::find_edge(StageId src, StageId dst) const {
  for (const Edge& e : edges_) {
    if (e.src == src && e.dst == dst) return &e;
  }
  return nullptr;
}

std::vector<StageId> JobDag::sources() const {
  std::vector<StageId> out;
  for (StageId i = 0; i < stages_.size(); ++i) {
    if (parents_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<StageId> JobDag::sinks() const {
  std::vector<StageId> out;
  for (StageId i = 0; i < stages_.size(); ++i) {
    if (children_[i].empty()) out.push_back(i);
  }
  return out;
}

bool JobDag::reachable(StageId from, StageId to) const {
  if (from == to) return true;
  std::vector<StageId> stack{from};
  std::vector<bool> seen(stages_.size(), false);
  seen[from] = true;
  while (!stack.empty()) {
    const StageId cur = stack.back();
    stack.pop_back();
    for (StageId c : children_[cur]) {
      if (c == to) return true;
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  return false;
}

bool JobDag::edge_keeps_acyclic(StageId src, StageId dst) const {
  return !reachable(dst, src);
}

Status JobDag::validate() const {
  for (StageId i = 0; i < stages_.size(); ++i) {
    if (stages_[i].id() != i) return Status::internal("non-dense stage ids");
  }
  for (const Edge& e : edges_) {
    if (e.src >= stages_.size() || e.dst >= stages_.size()) {
      return Status::internal("edge references unknown stage");
    }
  }
  // Cycle check via Kahn's algorithm.
  std::vector<std::size_t> indeg(stages_.size(), 0);
  for (const Edge& e : edges_) ++indeg[e.dst];
  std::vector<StageId> ready;
  for (StageId i = 0; i < stages_.size(); ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const StageId cur = ready.back();
    ready.pop_back();
    ++visited;
    for (StageId c : children_[cur]) {
      if (--indeg[c] == 0) ready.push_back(c);
    }
  }
  if (visited != stages_.size()) return Status::internal("DAG contains a cycle");
  return Status::ok();
}

std::string JobDag::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  rankdir=BT;\n";
  for (const Stage& s : stages_) {
    os << "  s" << s.id() << " [label=\"" << s.name();
    if (!s.op().empty()) os << "\\n(" << s.op() << ")";
    os << "\"];\n";
  }
  for (const Edge& e : edges_) {
    os << "  s" << e.src << " -> s" << e.dst << " [label=\"" << exchange_kind_name(e.exchange);
    if (e.bytes > 0) os << "\\n" << bytes_to_string(e.bytes);
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ditto
