// Fluent builder for job DAGs, used by examples, tests, and the
// workload library. Wraps JobDag's checked mutation API; `build()`
// validates and returns the finished DAG.
//
//   auto dag = DagBuilder("join-query")
//       .stage("scan_a", {.op = "map", .input = 4_GiB, .output = 1_GiB})
//       .stage("scan_b", {.op = "map", .input = 2_GiB, .output = 512_MiB})
//       .stage("join",   {.op = "join", .output = 256_MiB})
//       .edge("scan_a", "join", ExchangeKind::kShuffle)
//       .edge("scan_b", "join", ExchangeKind::kShuffle)
//       .build();
#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "dag/job_dag.h"

namespace ditto {

struct StageSpec {
  std::string op;
  Bytes input = 0;
  Bytes output = 0;
  double rho = 1.0;
  double sigma = 0.0;
};

class DagBuilder {
 public:
  using StageSpec = ditto::StageSpec;

  explicit DagBuilder(std::string name) : dag_(std::move(name)) {}

  /// Adds a stage; `name` must be unique within the builder.
  DagBuilder& stage(const std::string& name, const StageSpec& spec = StageSpec{});

  /// Adds an edge between two previously declared stages. If `bytes`
  /// is 0 the edge volume defaults to the source stage's output size.
  DagBuilder& edge(const std::string& src, const std::string& dst,
                   ExchangeKind exchange = ExchangeKind::kShuffle, Bytes bytes = 0);

  /// Finishes the DAG. Returns an error if any recorded operation
  /// failed (unknown stage name, duplicate edge, cycle, ...).
  Result<JobDag> build();

  /// Id of a declared stage (must exist).
  StageId id_of(const std::string& name) const;

 private:
  JobDag dag_;
  std::map<std::string, StageId> names_;
  Status first_error_;
};

}  // namespace ditto
