#include "dag/dag_builder.h"

#include <cassert>

namespace ditto {

DagBuilder& DagBuilder::stage(const std::string& name, const StageSpec& spec) {
  if (!first_error_.is_ok()) return *this;
  if (names_.count(name) != 0) {
    first_error_ = Status::already_exists("duplicate stage name: " + name);
    return *this;
  }
  const StageId id = dag_.add_stage(name);
  names_[name] = id;
  Stage& s = dag_.stage(id);
  s.set_op(spec.op);
  s.set_input_bytes(spec.input);
  s.set_output_bytes(spec.output);
  s.set_rho(spec.rho);
  s.set_sigma(spec.sigma);
  return *this;
}

DagBuilder& DagBuilder::edge(const std::string& src, const std::string& dst,
                             ExchangeKind exchange, Bytes bytes) {
  if (!first_error_.is_ok()) return *this;
  const auto si = names_.find(src);
  const auto di = names_.find(dst);
  if (si == names_.end() || di == names_.end()) {
    first_error_ = Status::not_found("edge references undeclared stage: " + src + " -> " + dst);
    return *this;
  }
  if (bytes == 0) bytes = dag_.stage(si->second).output_bytes();
  const Status st = dag_.add_edge(si->second, di->second, exchange, bytes);
  if (!st.is_ok()) first_error_ = st;
  return *this;
}

Result<JobDag> DagBuilder::build() {
  if (!first_error_.is_ok()) return first_error_;
  DITTO_RETURN_IF_ERROR(dag_.validate());
  return std::move(dag_);
}

StageId DagBuilder::id_of(const std::string& name) const {
  const auto it = names_.find(name);
  assert(it != names_.end() && "id_of: undeclared stage");
  return it->second;
}

}  // namespace ditto
