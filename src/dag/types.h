// Core vocabulary types for analytics job DAGs.
//
// A job is a DAG of *stages*; each stage executes as `d` parallel tasks
// (its degree of parallelism, DoP). A stage's work decomposes into
// *steps* — read, compute, write — and the read/write steps are further
// split per data dependency (paper §4.1). Each step's duration follows
// the step-based time model  t(d) = alpha / d + beta.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/units.h"

namespace ditto {

using StageId = std::uint32_t;
inline constexpr StageId kNoStage = std::numeric_limits<StageId>::max();

using TaskId = std::uint32_t;
using ServerId = std::uint32_t;
inline constexpr ServerId kNoServer = std::numeric_limits<ServerId>::max();

/// The three step kinds of the NIMBLE/Ditto step model.
enum class StepKind : std::uint8_t { kRead, kCompute, kWrite };

const char* step_kind_name(StepKind k);

/// How an edge moves data from producer tasks to consumer tasks.
///  - kShuffle:   all-to-all repartition (every producer feeds every consumer)
///  - kGather:    each producer feeds exactly one consumer (paper §4.5,
///                enables decomposing stage groups into task groups)
///  - kBroadcast: every consumer receives the full producer output
///  - kAllGather: like broadcast, used for small build-side join inputs
enum class ExchangeKind : std::uint8_t { kShuffle, kGather, kBroadcast, kAllGather };

const char* exchange_kind_name(ExchangeKind k);

/// One step of a stage. `dep` names the upstream stage a read step pulls
/// from or the downstream stage a write step feeds; kNoStage means the
/// step touches external storage (job input / final output) only.
struct Step {
  StepKind kind = StepKind::kCompute;
  StageId dep = kNoStage;
  double alpha = 0.0;      ///< parallelized time: contributes alpha/d
  double beta = 0.0;       ///< inherent (serial) overhead per task
  bool pipelined = false;  ///< overlapped with the producer (NIMBLE pipelining)
};

/// A data dependency between two stages.
struct Edge {
  StageId src = kNoStage;
  StageId dst = kNoStage;
  ExchangeKind exchange = ExchangeKind::kShuffle;
  Bytes bytes = 0;  ///< intermediate data volume carried by this edge

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
};

/// Optimization objective selected by the user (paper §3).
enum class Objective : std::uint8_t { kJct, kCost };

const char* objective_name(Objective o);

}  // namespace ditto
