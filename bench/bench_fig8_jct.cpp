// Figure 8: overall JCT, Ditto vs NIMBLE (paper §6.1).
//   (a) the four TPC-DS queries under the Zipf-0.9 slot distribution
//   (b) Q95 across function-slot usage 100% -> 25%
//   (c) Q95 across slot distributions Norm-1.0 / Norm-0.8 / Zipf-0.9 /
//       Zipf-0.99
// Paper result: Ditto wins 1.26-1.69x on (a), 1.5-2.5x on (b),
// 1.51-1.83x on (c). We reproduce the shape: Ditto wins everywhere and
// the gap widens as slots get scarcer.
//
// Pass --trace-out FILE to additionally export the Ditto Q95 run
// (Zipf-0.9) as a Chrome trace-event timeline for Perfetto.
//
// Pass --faults SPEC (grammar in faults/fault_injector.h) to replay the
// whole figure under injected chaos: both schedulers absorb the same
// seeded fault sequence, so the comparison stays apples-to-apples while
// showing how the JCT gap behaves when tasks crash, hang, or lose
// storage ops.
#include <cstring>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/trace_export.h"

using namespace ditto;
using namespace ditto::bench;

int main(int argc, char** argv) {
  std::string trace_out;
  faults::FaultSpec fault_cfg;
  bool faults_armed = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      auto parsed = faults::parse_fault_spec(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "fault spec error: %s\n", parsed.status().to_string().c_str());
        return 2;
      }
      fault_cfg = std::move(parsed).value();
      faults_armed = true;
    } else {
      std::fprintf(stderr, "usage: bench_fig8_jct [--trace-out FILE] [--faults SPEC]\n");
      return 2;
    }
  }
  if (!trace_out.empty()) obs::set_observability_enabled(true);
  const faults::FaultSpec* faults = faults_armed ? &fault_cfg : nullptr;
  if (faults_armed) {
    std::printf("faults armed: %s (seed %llu)\n", fault_cfg.to_string().c_str(),
                static_cast<unsigned long long>(fault_cfg.seed));
  }

  const auto s3 = storage::s3_model();

  print_header("Figure 8a: JCT by query (S3, Zipf-0.9, SF=1000)");
  std::printf("%-6s %12s %12s %10s\n", "query", "Ditto (s)", "NIMBLE (s)", "speedup");
  print_rule();
  for (workload::QueryId q : workload::paper_queries()) {
    scheduler::DittoScheduler ditto_sched;
    scheduler::NimbleScheduler nimble;
    const RunOutcome d =
        run_query(q, 1000, s3, ditto_sched, Objective::kJct, cluster::zipf_0_9(), 3, faults);
    const RunOutcome n =
        run_query(q, 1000, s3, nimble, Objective::kJct, cluster::zipf_0_9(), 3, faults);
    std::printf("%-6s %12.1f %12.1f %9.2fx\n", workload::query_name(q), d.jct, n.jct,
                n.jct / d.jct);
  }

  print_header("Figure 8b: JCT by slot usage (Q95, uniform servers)");
  std::printf("%-6s %12s %12s %10s\n", "usage", "Ditto (s)", "NIMBLE (s)", "speedup");
  print_rule();
  for (double usage : {1.0, 0.75, 0.5, 0.25}) {
    scheduler::DittoScheduler ditto_sched;
    scheduler::NimbleScheduler nimble;
    const auto spec = cluster::uniform_usage(usage);
    const RunOutcome d = run_query(workload::QueryId::kQ95, 1000, s3, ditto_sched,
                                   Objective::kJct, spec, 3, faults);
    const RunOutcome n =
        run_query(workload::QueryId::kQ95, 1000, s3, nimble, Objective::kJct, spec, 3, faults);
    std::printf("%-6s %12.1f %12.1f %9.2fx\n", spec.label().c_str(), d.jct, n.jct,
                n.jct / d.jct);
  }

  print_header("Figure 8c: JCT by slot distribution (Q95)");
  std::printf("%-10s %12s %12s %10s\n", "distrib", "Ditto (s)", "NIMBLE (s)", "speedup");
  print_rule();
  for (const auto& spec : {cluster::norm_1_0(), cluster::norm_0_8(), cluster::zipf_0_9(),
                           cluster::zipf_0_99()}) {
    scheduler::DittoScheduler ditto_sched;
    scheduler::NimbleScheduler nimble;
    const RunOutcome d = run_query(workload::QueryId::kQ95, 1000, s3, ditto_sched,
                                   Objective::kJct, spec, 3, faults);
    const RunOutcome n =
        run_query(workload::QueryId::kQ95, 1000, s3, nimble, Objective::kJct, spec, 3, faults);
    std::printf("%-10s %12.1f %12.1f %9.2fx\n", spec.label().c_str(), d.jct, n.jct,
                n.jct / d.jct);
  }

  if (!trace_out.empty()) {
    const JobDag truth =
        workload::build_query(workload::QueryId::kQ95, 1000, physics_for(s3));
    auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());
    scheduler::DittoScheduler ditto_sched;
    const auto r = sim::run_experiment(truth, cl, ditto_sched, Objective::kJct, s3);
    if (!r.ok()) {
      std::fprintf(stderr, "trace run failed: %s\n", r.status().to_string().c_str());
      return 1;
    }
    obs::TraceCollector& tc = obs::TraceCollector::global();
    sim::export_trace(truth, r->plan.placement, r->sim, tc);
    const Status st = tc.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("\ntrace: %zu events (Ditto Q95, Zipf-0.9) written to %s\n", tc.size(),
                trace_out.c_str());
  }
  return 0;
}
