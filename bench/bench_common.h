// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (§6): it runs the full pipeline (ground-truth workload ->
// profile -> schedule -> simulate) for each configuration the figure
// sweeps and prints the same rows/series the paper reports. Absolute
// numbers come from the simulator substrate, so they are not expected
// to match AWS wall-clock; the comparisons (who wins, by what factor)
// are the reproduction target.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "scheduler/baselines.h"
#include "scheduler/ditto_scheduler.h"
#include "sim/sim_runner.h"
#include "storage/sim_store.h"
#include "workload/queries.h"

namespace ditto::bench {

inline workload::PhysicsParams physics_for(const storage::StorageModel& store) {
  workload::PhysicsParams p;
  p.store = store;
  return p;
}

struct RunOutcome {
  double jct = 0.0;
  double cost = 0.0;
  double sched_seconds = 0.0;
  double model_build_seconds = 0.0;
};

/// Full pipeline, averaged over `seeds` simulator seeds. When `faults`
/// is non-null the simulated runs replay that fault spec (with
/// speculation armed), so benches can measure JCT under chaos.
inline RunOutcome run_query(workload::QueryId q, int scale_factor,
                            const storage::StorageModel& store, scheduler::Scheduler& sched,
                            Objective objective, const cluster::SlotDistributionSpec& spec,
                            int seeds = 3, const faults::FaultSpec* faults = nullptr) {
  const JobDag truth = workload::build_query(q, scale_factor, physics_for(store));
  auto cl = cluster::Cluster::paper_testbed(spec);
  RunOutcome out;
  for (int i = 0; i < seeds; ++i) {
    sim::SimOptions opts;
    opts.seed = 1 + static_cast<std::uint64_t>(i);
    if (faults != nullptr) {
      opts.faults = *faults;
      opts.resilience.speculation_factor = 2.0;
    }
    const auto r = sim::run_experiment(truth, cl, sched, objective, store, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "run_query failed: %s\n", r.status().to_string().c_str());
      return out;
    }
    out.jct += r->sim.jct;
    out.cost += r->sim.cost.total();
    out.sched_seconds += r->plan.scheduling_seconds;
    out.model_build_seconds += r->profile.model_build_seconds;
  }
  out.jct /= seeds;
  out.cost /= seeds;
  out.sched_seconds /= seeds;
  out.model_build_seconds /= seeds;
  return out;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule() {
  std::printf("------------------------------------------------------------------\n");
}

}  // namespace ditto::bench
