// Table 2: execution-time-model building overhead (paper §6.5).
// Five DoP profiles per stage, least-squares fit. Paper result: under
// 0.3 s (194-216 ms) per query; ours is faster because the fitting
// cost is tiny once profiles exist — we report both the fit time and
// the profile-collection time for context.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "timemodel/profiler.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

void BM_ModelBuild(benchmark::State& state) {
  const workload::QueryId q =
      workload::paper_queries()[static_cast<std::size_t>(state.range(0))];
  const JobDag truth = workload::build_query(q, 1000, physics_for(storage::s3_model()));
  auto simulator = std::make_shared<sim::JobSimulator>(truth, storage::s3_model());
  for (auto _ : state) {
    JobDag fitted = truth;
    Profiler profiler(fitted, sim::make_sim_stage_runner(simulator));
    auto report = profiler.profile_all();
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(workload::query_name(q));
}

}  // namespace

BENCHMARK(BM_ModelBuild)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  print_header("Table 2: model building time by query");
  std::printf("%-6s %18s %22s\n", "query", "fit time", "profile collection");
  print_rule();
  for (workload::QueryId q : workload::paper_queries()) {
    const JobDag truth = workload::build_query(q, 1000, physics_for(storage::s3_model()));
    auto simulator = std::make_shared<sim::JobSimulator>(truth, storage::s3_model());
    JobDag fitted = truth;
    Profiler profiler(fitted, sim::make_sim_stage_runner(simulator));
    const auto report = profiler.profile_all();
    if (!report.ok()) continue;
    std::printf("%-6s %15.2f ms %19.2f ms\n", workload::query_name(q),
                report->model_build_seconds * 1e3, report->profiling_seconds * 1e3);
  }
  return 0;
}
