// Figure 12: effectiveness of greedy grouping and DoP ratio computing
// (paper §6.4). Four approaches on the four queries under Zipf-0.9:
//   NIMBLE, NIMBLE+Group (grouping only), NIMBLE+DoP (ratio only),
//   Ditto (both). Paper result: grouping alone gives 1.07-1.36x JCT
//   and 1.2-1.49x cost; DoP alone 1.12-1.23x JCT / 1.11-1.35x cost;
//   Ditto combines the gains.
#include "bench_common.h"

using namespace ditto;
using namespace ditto::bench;

int main() {
  const auto s3 = storage::s3_model();

  print_header("Figure 12a: JCT ablation (Zipf-0.9, SF=1000)");
  std::printf("%-6s %10s %14s %12s %10s\n", "query", "NIMBLE", "NIMBLE+Group", "NIMBLE+DoP",
              "Ditto");
  print_rule();
  for (workload::QueryId q : workload::paper_queries()) {
    scheduler::NimbleScheduler nimble;
    scheduler::NimblePlusGroupScheduler grouped;
    scheduler::NimblePlusDopScheduler dop_only;
    scheduler::DittoScheduler ditto_sched;
    const double n = run_query(q, 1000, s3, nimble, Objective::kJct, cluster::zipf_0_9()).jct;
    const double g = run_query(q, 1000, s3, grouped, Objective::kJct, cluster::zipf_0_9()).jct;
    const double p = run_query(q, 1000, s3, dop_only, Objective::kJct, cluster::zipf_0_9()).jct;
    const double d =
        run_query(q, 1000, s3, ditto_sched, Objective::kJct, cluster::zipf_0_9()).jct;
    std::printf("%-6s %9.1fs %13.1fs %11.1fs %9.1fs\n", workload::query_name(q), n, g, p, d);
  }

  print_header("Figure 12b: cost ablation, normalized to NIMBLE (Zipf-0.9)");
  std::printf("%-6s %10s %14s %12s %10s\n", "query", "NIMBLE", "NIMBLE+Group", "NIMBLE+DoP",
              "Ditto");
  print_rule();
  for (workload::QueryId q : workload::paper_queries()) {
    scheduler::NimbleScheduler nimble;
    scheduler::NimblePlusGroupScheduler grouped;
    scheduler::NimblePlusDopScheduler dop_only;
    scheduler::DittoScheduler ditto_sched;
    const double n = run_query(q, 1000, s3, nimble, Objective::kCost, cluster::zipf_0_9()).cost;
    const double g =
        run_query(q, 1000, s3, grouped, Objective::kCost, cluster::zipf_0_9()).cost;
    const double p =
        run_query(q, 1000, s3, dop_only, Objective::kCost, cluster::zipf_0_9()).cost;
    const double d =
        run_query(q, 1000, s3, ditto_sched, Objective::kCost, cluster::zipf_0_9()).cost;
    std::printf("%-6s %10.3f %14.3f %12.3f %10.3f\n", workload::query_name(q), 1.0, g / n,
                p / n, d / n);
  }
  return 0;
}
