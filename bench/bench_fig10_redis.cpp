// Figure 10: performance under Redis external storage (paper §6.3).
// Scale factor 100 (100 GB dataset fits the Redis deployment), Zipf-0.9
// slots. Paper result: Ditto reduces JCT 1.74-1.88x and cost 1.09-1.83x
// relative to NIMBLE even on fast external storage.
#include "bench_common.h"

using namespace ditto;
using namespace ditto::bench;

int main() {
  const auto redis = storage::redis_model();

  print_header("Figure 10a: JCT under Redis (SF=100, Zipf-0.9)");
  std::printf("%-6s %12s %12s %10s\n", "query", "Ditto (s)", "NIMBLE (s)", "speedup");
  print_rule();
  for (workload::QueryId q : workload::paper_queries()) {
    scheduler::DittoScheduler ditto_sched;
    scheduler::NimbleScheduler nimble;
    const RunOutcome d =
        run_query(q, 100, redis, ditto_sched, Objective::kJct, cluster::zipf_0_9());
    const RunOutcome n =
        run_query(q, 100, redis, nimble, Objective::kJct, cluster::zipf_0_9());
    std::printf("%-6s %12.2f %12.2f %9.2fx\n", workload::query_name(q), d.jct, n.jct,
                n.jct / d.jct);
  }

  print_header("Figure 10b: normalized cost under Redis (SF=100, Zipf-0.9)");
  std::printf("%-6s %14s %14s %10s\n", "query", "Ditto (norm)", "NIMBLE (norm)", "saving");
  print_rule();
  for (workload::QueryId q : workload::paper_queries()) {
    scheduler::DittoScheduler ditto_sched;
    scheduler::NimbleScheduler nimble;
    const RunOutcome d =
        run_query(q, 100, redis, ditto_sched, Objective::kCost, cluster::zipf_0_9());
    const RunOutcome n =
        run_query(q, 100, redis, nimble, Objective::kCost, cluster::zipf_0_9());
    std::printf("%-6s %14.3f %14.3f %9.2fx\n", workload::query_name(q), d.cost / n.cost, 1.0,
                n.cost / d.cost);
  }
  return 0;
}
