// Design-choice ablations beyond the paper's Fig. 12, covering the
// decisions called out in DESIGN.md §4:
//   1. gather decomposition of stage groups (paper §4.5, Fig. 7)
//   2. the Figure-2 "shrink oversized groups" fallback + multi-start
//   3. the monotone objective guard
//   4. sqrt-alpha intra-path ratio vs linear-in-data allocation
//      (NIMBLE+DoP vs NIMBLE in Fig. 12 covers this; here we isolate
//      it on a pure chain where the closed form is exact)
#include "bench_common.h"
#include "storage/tiered_store.h"
#include "workload/micro.h"
#include "workload/pipelining.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

double run_with_options(const JobDag& truth, const cluster::Cluster& cl,
                        scheduler::DittoOptions options) {
  scheduler::DittoScheduler sched(options);
  double jct = 0.0;
  for (int i = 0; i < 3; ++i) {
    sim::SimOptions opts;
    opts.seed = 1 + static_cast<std::uint64_t>(i);
    const auto r =
        sim::run_experiment(truth, cl, sched, Objective::kJct, storage::s3_model(), opts);
    if (!r.ok()) return -1.0;
    jct += r->sim.jct;
  }
  return jct / 3;
}

}  // namespace

int main() {
  const auto s3 = storage::s3_model();

  print_header("Ablation: Figure-2 shrink fallback / multi-start (Q95, Zipf-0.9)");
  {
    const JobDag truth = workload::build_query(workload::QueryId::kQ95, 1000, physics_for(s3));
    auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());
    scheduler::DittoOptions off;
    off.shrink_oversized_groups = false;
    scheduler::DittoOptions on;
    std::printf("  joint loop only (Algorithm 3):       %8.1f s\n",
                run_with_options(truth, cl, off));
    std::printf("  + shrink fallback and multi-start:   %8.1f s\n",
                run_with_options(truth, cl, on));
  }

  print_header("Ablation: monotone objective guard (Q94, Zipf-0.99)");
  {
    const JobDag truth = workload::build_query(workload::QueryId::kQ94, 1000, physics_for(s3));
    auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_99());
    scheduler::DittoOptions guarded;
    scheduler::DittoOptions unguarded;
    unguarded.enforce_monotone = false;
    std::printf("  guard on  (reject regressions):      %8.1f s\n",
                run_with_options(truth, cl, guarded));
    std::printf("  guard off (accept any grouping):     %8.1f s\n",
                run_with_options(truth, cl, unguarded));
  }

  print_header("Ablation: gather decomposition (Q95's final gather edge)");
  {
    // With the gather edge intact the final group can decompose into
    // task groups; rewriting it as a shuffle forces atomic placement.
    JobDag with_gather = workload::build_query(workload::QueryId::kQ95, 1000, physics_for(s3));
    JobDag no_gather = with_gather;
    for (const Edge& e : with_gather.edges()) {
      if (e.exchange == ExchangeKind::kGather) {
        no_gather.edge_between(e.src, e.dst).exchange = ExchangeKind::kShuffle;
      }
    }
    auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());
    std::printf("  gather (decomposable groups):        %8.1f s\n",
                run_with_options(with_gather, cl, {}));
    std::printf("  shuffle (atomic groups):             %8.1f s\n",
                run_with_options(no_gather, cl, {}));
  }

  print_header("Ablation: storage backends (Q1 SF=100, Zipf-0.9, Ditto)");
  {
    auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());
    struct Backend {
      const char* name;
      workload::PhysicsParams physics;
      storage::StorageModel external;
    };
    std::vector<Backend> backends;
    backends.push_back({"S3 only", physics_for(storage::s3_model()), storage::s3_model()});
    {
      workload::PhysicsParams tiered = physics_for(storage::s3_model());
      tiered.use_fast_store = true;
      tiered.fast_store = storage::redis_model();
      tiered.fast_threshold = 256_MB;
      backends.push_back({"tiered (Redis < 256MB, else S3)", tiered, storage::s3_model()});
    }
    backends.push_back(
        {"Redis only", physics_for(storage::redis_model()), storage::redis_model()});
    backends.push_back({"direct network (Knative-style)",
                        physics_for(storage::direct_network_model()),
                        storage::direct_network_model()});
    for (const Backend& b : backends) {
      const JobDag truth = workload::build_query(workload::QueryId::kQ1, 100, b.physics);
      scheduler::DittoScheduler sched;
      double jct = 0.0;
      for (int i = 0; i < 3; ++i) {
        sim::SimOptions opts;
        opts.seed = 1 + static_cast<std::uint64_t>(i);
        jct += sim::run_experiment(truth, cl, sched, Objective::kJct, b.external, opts)
                   ->sim.jct;
      }
      std::printf("  %-34s %8.2f s\n", b.name, jct / 3);
    }
  }

  print_header("Ablation: pipelined execution (paper 4.5, Q16 Zipf-0.9)");
  {
    JobDag plain = workload::build_query(workload::QueryId::kQ16, 1000, physics_for(s3));
    JobDag piped = plain;
    const int annotated = workload::pipeline_all_shuffles(piped);
    auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());
    std::printf("  no pipelining:                       %8.1f s\n",
                run_with_options(plain, cl, {}));
    std::printf("  %d shuffle edges pipelined:           %8.1f s\n", annotated,
                run_with_options(piped, cl, {}));
  }

  print_header("Ablation: sqrt-alpha vs data-proportional DoP on a pure chain");
  {
    const JobDag truth = workload::chain_dag(6, 80_GB, 0.4, physics_for(s3));
    auto cl = cluster::Cluster::uniform(8, 32);
    scheduler::NimbleScheduler nimble;         // data-proportional
    scheduler::NimblePlusDopScheduler sqrt_a;  // sqrt-alpha ratios
    double jn = 0.0, js = 0.0;
    for (int i = 0; i < 3; ++i) {
      sim::SimOptions opts;
      opts.seed = 1 + static_cast<std::uint64_t>(i);
      jn += sim::run_experiment(truth, cl, nimble, Objective::kJct, s3, opts)->sim.jct;
      js += sim::run_experiment(truth, cl, sqrt_a, Objective::kJct, s3, opts)->sim.jct;
    }
    std::printf("  data-proportional (NIMBLE):          %8.1f s\n", jn / 3);
    std::printf("  sqrt-alpha ratios (Ditto's rule):    %8.1f s\n", js / 3);
  }
  return 0;
}
