// Figures 13-15: Q95 DAG structure, per-stage time breakdown with a
// fixed DoP of 40, and the execution breakdown under fixed vs elastic
// parallelism (paper §6.4 "Execution breakdown").
//
// Paper narrative to reproduce: under fixed parallelism stages 1
// (map1) and 4 (reduce1) dominate their paths; Ditto expands their
// parallelism and shrinks short stages (map3/map4), and grouped stages
// exchange data through zero-copy shared memory, so stage 2's time
// drops even though its DoP shrinks.
#include "bench_common.h"
#include "sim/gantt.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

void print_stage_timeline(const JobDag& dag, const sim::SimResult& r) {
  std::printf("%-10s %4s %9s %9s | %7s %7s %9s %7s\n", "stage", "DoP", "start", "end",
              "setup", "read", "compute", "write");
  print_rule();
  for (const sim::StageTrace& st : r.stages) {
    std::printf("%-10s %4d %8.1fs %8.1fs | %6.2fs %6.2fs %8.2fs %6.2fs\n",
                dag.stage(st.stage).name().c_str(), st.dop, st.start, st.end, st.mean_setup,
                st.mean_read, st.mean_compute, st.mean_write);
  }
  std::printf("JCT: %.1f s\n", r.jct);
}

}  // namespace

int main() {
  const auto s3 = storage::s3_model();
  const JobDag truth = workload::build_query(workload::QueryId::kQ95, 1000, physics_for(s3));
  auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());

  print_header("Figure 13: Q95 DAG structure");
  for (const Edge& e : truth.edges()) {
    std::printf("  %-8s -> %-8s  [%s, %s]\n", truth.stage(e.src).name().c_str(),
                truth.stage(e.dst).name().c_str(), exchange_kind_name(e.exchange),
                bytes_to_string(e.bytes).c_str());
  }
  std::printf("\nGraphviz:\n%s", truth.to_dot().c_str());

  // Fixed parallelism (paper uses DoP = 40 for Fig. 14).
  scheduler::FixedDopScheduler fixed(28);  // 9 stages x 28 fits Zipf-0.9 testbed
  const auto fixed_run =
      sim::run_experiment(truth, cl, fixed, Objective::kJct, s3);
  if (!fixed_run.ok()) {
    std::fprintf(stderr, "fixed run failed: %s\n", fixed_run.status().to_string().c_str());
    return 1;
  }

  print_header("Figure 14: Q95 per-stage time breakdown (fixed DoP)");
  print_stage_timeline(truth, fixed_run->sim);

  scheduler::DittoScheduler ditto_sched;
  const auto elastic_run = sim::run_experiment(truth, cl, ditto_sched, Objective::kJct, s3);
  if (!elastic_run.ok()) {
    std::fprintf(stderr, "elastic run failed\n");
    return 1;
  }

  print_header("Figure 15a: execution breakdown, FIXED parallelism");
  print_stage_timeline(truth, fixed_run->sim);
  std::printf("\n%s", sim::render_gantt(truth, fixed_run->sim).c_str());
  print_header("Figure 15b: execution breakdown, ELASTIC parallelism (Ditto)");
  print_stage_timeline(truth, elastic_run->sim);
  std::printf("\n%s", sim::render_gantt(truth, elastic_run->sim).c_str());

  std::printf("\nZero-copy stage groups chosen by Ditto:");
  for (const auto& [a, b] : elastic_run->plan.placement.zero_copy_edges) {
    std::printf(" (%s->%s)", truth.stage(a).name().c_str(), truth.stage(b).name().c_str());
  }
  std::printf("\nJCT: fixed %.1f s vs elastic %.1f s  (%.2fx)\n", fixed_run->sim.jct,
              elastic_run->sim.jct, fixed_run->sim.jct / elastic_run->sim.jct);
  return 0;
}
