// Table 1: scheduling overhead of Ditto under different resource usage
// (paper §6.5). Paper result: sub-millisecond (169-264 us) for every
// query, roughly constant across 25%-100% slot usage because the
// algorithm's complexity depends on the DAG, not on the slot count.
//
// Uses google-benchmark for the timing loop and prints a paper-style
// summary table at the end.
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

const std::vector<workload::QueryId>& queries() {
  static const auto q = workload::paper_queries();
  return q;
}

/// Pre-profiled DAGs (the scheduler's input carries fitted models).
const JobDag& fitted_dag(workload::QueryId q) {
  static std::map<workload::QueryId, JobDag> cache;
  auto it = cache.find(q);
  if (it == cache.end()) {
    JobDag truth = workload::build_query(q, 1000, physics_for(storage::s3_model()));
    auto simulator = std::make_shared<sim::JobSimulator>(truth, storage::s3_model());
    Profiler profiler(truth, sim::make_sim_stage_runner(simulator));
    const auto report = profiler.profile_all();
    (void)report;
    it = cache.emplace(q, std::move(truth)).first;
  }
  return it->second;
}

void BM_DittoSchedule(benchmark::State& state) {
  const workload::QueryId q = queries()[static_cast<std::size_t>(state.range(0))];
  const double usage = 0.25 * static_cast<double>(state.range(1));
  const JobDag& dag = fitted_dag(q);
  auto cl = cluster::Cluster::paper_testbed(cluster::uniform_usage(usage));
  scheduler::DittoScheduler sched;
  for (auto _ : state) {
    auto plan = sched.schedule(dag, cl, Objective::kJct, storage::s3_model());
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel(std::string(workload::query_name(q)) + " @" +
                 std::to_string(static_cast<int>(usage * 100)) + "%");
}

}  // namespace

BENCHMARK(BM_DittoSchedule)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2, 3, 4}})
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Paper-style Table 1.
  print_header("Table 1: Ditto scheduling time by slot usage");
  std::printf("%-6s %10s %10s %10s %10s\n", "query", "25%", "50%", "75%", "100%");
  print_rule();
  for (workload::QueryId q : queries()) {
    std::printf("%-6s", workload::query_name(q));
    for (double usage : {0.25, 0.5, 0.75, 1.0}) {
      const JobDag& dag = fitted_dag(q);
      auto cl = cluster::Cluster::paper_testbed(cluster::uniform_usage(usage));
      scheduler::DittoScheduler sched;
      // Median of several runs.
      std::vector<double> us;
      for (int i = 0; i < 15; ++i) {
        const auto plan = sched.schedule(dag, cl, Objective::kJct, storage::s3_model());
        if (plan.ok()) us.push_back(plan->scheduling_seconds * 1e6);
      }
      std::sort(us.begin(), us.end());
      std::printf(" %7.0f us", us.empty() ? 0.0 : us[us.size() / 2]);
    }
    std::printf("\n");
  }
  return 0;
}
