// Figure 9: overall cost (normalized to NIMBLE = 1.0), Ditto vs NIMBLE
// with the cost objective (paper §6.2). Paper result: Ditto wins
// 1.16-1.67x — smaller than its JCT wins, because NIMBLE's data-
// proportional DoP is closer to cost-optimal and shared-memory
// persistence adds cost on Ditto's side.
#include "bench_common.h"

using namespace ditto;
using namespace ditto::bench;

namespace {
void sweep(const char* title, const std::vector<cluster::SlotDistributionSpec>& specs,
           const std::vector<workload::QueryId>& queries) {
  print_header(title);
  std::printf("%-10s %-6s %14s %14s %10s\n", "config", "query", "Ditto (norm)",
              "NIMBLE (norm)", "saving");
  print_rule();
  const auto s3 = storage::s3_model();
  for (const auto& spec : specs) {
    for (workload::QueryId q : queries) {
      scheduler::DittoScheduler ditto_sched;
      scheduler::NimbleScheduler nimble;
      const RunOutcome d = run_query(q, 1000, s3, ditto_sched, Objective::kCost, spec);
      const RunOutcome n = run_query(q, 1000, s3, nimble, Objective::kCost, spec);
      std::printf("%-10s %-6s %14.3f %14.3f %9.2fx\n", spec.label().c_str(),
                  workload::query_name(q), d.cost / n.cost, 1.0, n.cost / d.cost);
    }
  }
}
}  // namespace

int main() {
  sweep("Figure 9a: normalized cost by query (Zipf-0.9)", {cluster::zipf_0_9()},
        workload::paper_queries());
  sweep("Figure 9b: normalized cost by slot usage (Q95)",
        {cluster::uniform_usage(1.0), cluster::uniform_usage(0.75),
         cluster::uniform_usage(0.5), cluster::uniform_usage(0.25)},
        {workload::QueryId::kQ95});
  sweep("Figure 9c: normalized cost by slot distribution (Q95)",
        {cluster::norm_1_0(), cluster::norm_0_8(), cluster::zipf_0_9(), cluster::zipf_0_99()},
        {workload::QueryId::kQ95});
  return 0;
}
