// Extension experiment (the paper's §4.5 future work): inter-job
// behaviour on a shared cluster. Four Q95 instances arrive 5 s apart
// on the Zipf-0.9 testbed; each job is planned by the intra-job
// scheduler against the slots currently free and holds them for its
// lifetime (FIFO admission). Reported: per-job queueing/JCT, cluster
// makespan, and average slot utilization — with and without a
// fair-share cap on the per-job slot offer.
#include "bench_common.h"
#include "sim/job_queue.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

std::vector<sim::JobSubmission> make_workload() {
  std::vector<sim::JobSubmission> subs;
  int i = 0;
  for (workload::QueryId q : {workload::QueryId::kQ95, workload::QueryId::kQ94,
                              workload::QueryId::kQ95, workload::QueryId::kQ16}) {
    sim::JobSubmission s;
    s.dag = workload::build_query(q, 1000, physics_for(storage::s3_model()));
    s.arrival = 5.0 * i;
    s.label = std::string(workload::query_name(q)) + "#" + std::to_string(i);
    subs.push_back(std::move(s));
    ++i;
  }
  return subs;
}

void report(const char* title, const sim::QueueResult& r) {
  std::printf("\n%s\n", title);
  std::printf("  %-8s %9s %9s %9s %7s\n", "job", "arrival", "queued", "JCT", "slots");
  for (const auto& j : r.jobs) {
    std::printf("  %-8s %8.1fs %8.1fs %8.1fs %7d\n", j.label.c_str(), j.arrival,
                j.queueing(), j.jct(), j.slots_used);
  }
  std::printf("  makespan %.1f s, avg utilization %.0f%%\n", r.makespan,
              r.avg_utilization * 100.0);
}

}  // namespace

int main() {
  auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());
  print_header("Extension: multi-job cluster (4 queries, 5 s apart, Zipf-0.9)");

  for (const char* mode : {"uncapped", "fair-share (96 slots/job)"}) {
    sim::JobQueueOptions options;
    if (mode[0] == 'f') options.max_slots_per_job = 96;

    scheduler::DittoScheduler ditto_sched;
    scheduler::NimbleScheduler nimble;
    const auto rd =
        sim::run_job_queue(cl, make_workload(), ditto_sched, storage::s3_model(), options);
    const auto rn =
        sim::run_job_queue(cl, make_workload(), nimble, storage::s3_model(), options);
    if (!rd.ok() || !rn.ok()) {
      std::fprintf(stderr, "queue simulation failed\n");
      return 1;
    }
    std::printf("\n--- %s admission ---", mode);
    report("Ditto intra-job scheduling:", *rd);
    report("NIMBLE intra-job scheduling:", *rn);
    std::printf("  => Ditto shrinks makespan %.2fx under %s admission\n",
                rn->makespan / rd->makespan, mode);
  }
  return 0;
}
