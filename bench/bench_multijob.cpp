// Extension experiment (the paper's §4.5 future work): inter-job
// behaviour on a shared cluster.
//
// Part 1 (simulator scale): four Q95-class queries arrive 5 s apart
// on the Zipf-0.9 testbed; each job is planned by the intra-job
// scheduler against the slots currently free and holds them for its
// lifetime (FIFO admission). Reported: per-job queueing/JCT, cluster
// makespan, and average slot utilization — with and without a
// fair-share cap on the per-job slot offer.
//
// Part 2 (live service): the four executable TPC-DS miniatures run
// through the real JobService under each inter-job admission policy
// (fifo-exclusive vs fair-share vs elastic), on real threads against
// the real MiniEngine. Reported per policy: mean/max queueing delay,
// makespan, and average slot utilization — the live counterpart of the
// simulator comparison, and the experiment behind the claim that
// elastic admission (inter-job policy co-designed with intra-job DoP
// elasticity) beats the batch baseline.
//
// Part 3 (overload protection): a 2x overload burst — twice as many
// jobs as the bounded admission queue plus the running slot can hold —
// split between the latency and batch SLO tiers. The service must shed
// ONLY batch-tier jobs and keep latency-tier p99 queueing bounded by
// the queue depth times the slowest single-job service time.
// Regression exit code if either property fails.
#include <algorithm>
#include <cmath>
#include <map>

#include "bench_common.h"
#include "service/engine_jobs.h"
#include "service/job_service.h"
#include "sim/job_queue.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

std::vector<sim::JobSubmission> make_workload() {
  std::vector<sim::JobSubmission> subs;
  int i = 0;
  for (workload::QueryId q : {workload::QueryId::kQ95, workload::QueryId::kQ94,
                              workload::QueryId::kQ95, workload::QueryId::kQ16}) {
    sim::JobSubmission s;
    s.dag = workload::build_query(q, 1000, physics_for(storage::s3_model()));
    s.arrival = 5.0 * i;
    s.label = std::string(workload::query_name(q)) + "#" + std::to_string(i);
    subs.push_back(std::move(s));
    ++i;
  }
  return subs;
}

void report(const char* title, const sim::QueueResult& r) {
  std::printf("\n%s\n", title);
  std::printf("  %-8s %9s %9s %9s %7s\n", "job", "arrival", "queued", "JCT", "slots");
  for (const auto& j : r.jobs) {
    std::printf("  %-8s %8.1fs %8.1fs %8.1fs %7d\n", j.label.c_str(), j.arrival,
                j.queueing(), j.jct(), j.slots_used);
  }
  std::printf("  makespan %.1f s, avg utilization %.0f%%\n", r.makespan,
              r.avg_utilization * 100.0);
}

/// One live-service run: the four paper queries submitted back-to-back
/// through a fresh JobService under `policy`. Cost objective keeps
/// per-job DoP lean so co-residency is possible; fifo-exclusive
/// serializes regardless. The backing store applies scaled real
/// latency, so jobs spend wall-clock time in storage waits — the
/// serverless I/O profile where overlapping jobs genuinely shortens
/// the schedule (CPU-only work would merely timeslice).
service::ServiceSummary run_live(service::AdmissionPolicy policy) {
  const auto& external = storage::s3_model();
  workload::EngineQuerySpec spec;
  spec.fact_rows = 40000;
  spec.num_orders = 8000;
  spec.seed = 17;

  auto cl = cluster::Cluster::uniform(4, 8);
  storage::MemStore store(external, "s3");
  store.set_real_delay_scale(1.0);
  service::ServiceOptions options;
  options.admission.policy = policy;
  options.external = external;
  service::JobService svc(cl, store, options);

  for (const std::string_view q : service::engine_query_names()) {
    auto job = service::make_engine_query_job(q, spec, external);
    if (!job.ok()) {
      std::fprintf(stderr, "job build failed: %s\n", job.status().to_string().c_str());
      std::exit(1);
    }
    job->submission.label = std::string(q);
    job->submission.objective = Objective::kCost;
    const auto id = svc.submit(job->submission);
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n", id.status().to_string().c_str());
      std::exit(1);
    }
  }
  for (const auto& outcome : svc.drain()) {
    if (outcome.state != service::JobState::kDone) {
      std::fprintf(stderr, "%s did not finish: %s\n", outcome.label.c_str(),
                   outcome.error.to_string().c_str());
      std::exit(1);
    }
  }
  return svc.summary();
}

/// Part 3: 2x overload burst against a bounded queue, latency vs batch
/// tiers. Returns false on regression (latency shed, no batch shed, or
/// unbounded latency queueing).
bool run_overload() {
  const auto& external = storage::s3_model();
  workload::EngineQuerySpec spec;
  spec.fact_rows = 20000;
  spec.num_orders = 4000;
  spec.seed = 29;

  constexpr std::size_t kQueueDepth = 4;
  // Capacity of the instantaneous burst = 1 running + kQueueDepth
  // queued; submit twice that.
  constexpr std::size_t kJobs = 2 * (kQueueDepth + 1) + 6;

  auto cl = cluster::Cluster::uniform(4, 8);
  storage::MemStore store(external, "s3");
  store.set_real_delay_scale(1.0);
  service::ServiceOptions options;
  options.admission.policy = service::AdmissionPolicy::kFifoExclusive;
  options.external = external;
  options.max_queue_depth = kQueueDepth;
  service::JobService svc(cl, store, options);

  const auto& names = service::engine_query_names();
  std::map<std::string, std::size_t> rejected;  // tier -> fast-rejects
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    auto job = service::make_engine_query_job(names[i % names.size()], spec, external);
    if (!job.ok()) {
      std::fprintf(stderr, "job build failed: %s\n", job.status().to_string().c_str());
      return false;
    }
    // Batch first in every pair, so the queue holds batch work for
    // latency arrivals to displace.
    job->submission.tier = i % 2 == 1 ? "latency" : "batch";
    job->submission.label =
        std::string(names[i % names.size()]) + "-" + job->submission.tier + std::to_string(i);
    job->submission.objective = Objective::kCost;
    const auto id = svc.submit(job->submission);
    if (!id.ok()) {
      ++rejected[job->submission.tier];
    } else {
      ++accepted;
    }
  }

  struct TierStats {
    std::size_t done = 0, shed = 0, failed = 0;
    std::vector<double> queueing;
  };
  std::map<std::string, TierStats> tiers;
  double max_service_time = 0.0;
  for (const auto& outcome : svc.drain()) {
    TierStats& ts = tiers[outcome.tier];
    if (outcome.state == service::JobState::kDone) {
      ++ts.done;
      ts.queueing.push_back(outcome.queueing());
      max_service_time = std::max(max_service_time, outcome.finished - outcome.started);
    } else if (outcome.error.code() == StatusCode::kResourceExhausted) {
      ++ts.shed;
    } else {
      ++ts.failed;
    }
  }

  const auto p99 = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t idx =
        std::min(v.size() - 1, static_cast<std::size_t>(std::ceil(0.99 * v.size())) - 1);
    return v[idx];
  };

  std::printf("  burst: %zu jobs (queue depth %zu), %zu accepted\n", kJobs, kQueueDepth,
              accepted);
  std::printf("  %-8s %6s %6s %9s %9s %14s\n", "tier", "done", "shed", "rejected", "failed",
              "p99_queue(s)");
  for (const auto& [tier, ts] : tiers) {
    std::printf("  %-8s %6zu %6zu %9zu %9zu %14.3f\n", tier.c_str(), ts.done, ts.shed,
                rejected[tier], ts.failed, p99(ts.queueing));
  }

  const TierStats& latency = tiers["latency"];
  const TierStats& batch = tiers["batch"];
  const double latency_bound = 1.5 * static_cast<double>(kQueueDepth + 1) * max_service_time;
  std::printf("  latency p99 bound: %.3f s (%.1fx slowest service time %.3f s)\n",
              latency_bound, 1.5 * (kQueueDepth + 1), max_service_time);

  bool ok = true;
  if (latency.shed != 0) {
    std::fprintf(stderr, "REGRESSION: %zu latency-tier job(s) shed\n", latency.shed);
    ok = false;
  }
  if (batch.shed == 0) {
    std::fprintf(stderr, "REGRESSION: overload did not shed any batch-tier job\n");
    ok = false;
  }
  if (latency.failed + batch.failed != 0) {
    std::fprintf(stderr, "REGRESSION: %zu job(s) failed outside shedding\n",
                 latency.failed + batch.failed);
    ok = false;
  }
  if (p99(latency.queueing) > latency_bound) {
    std::fprintf(stderr, "REGRESSION: latency-tier p99 queueing %.3f s above bound %.3f s\n",
                 p99(latency.queueing), latency_bound);
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());
  print_header("Extension: multi-job cluster (4 queries, 5 s apart, Zipf-0.9)");

  for (const char* mode : {"uncapped", "fair-share (96 slots/job)"}) {
    sim::JobQueueOptions options;
    if (mode[0] == 'f') options.max_slots_per_job = 96;

    scheduler::DittoScheduler ditto_sched;
    scheduler::NimbleScheduler nimble;
    const auto rd =
        sim::run_job_queue(cl, make_workload(), ditto_sched, storage::s3_model(), options);
    const auto rn =
        sim::run_job_queue(cl, make_workload(), nimble, storage::s3_model(), options);
    if (!rd.ok() || !rn.ok()) {
      std::fprintf(stderr, "queue simulation failed\n");
      return 1;
    }
    std::printf("\n--- %s admission ---", mode);
    report("Ditto intra-job scheduling:", *rd);
    report("NIMBLE intra-job scheduling:", *rn);
    std::printf("  => Ditto shrinks makespan %.2fx under %s admission\n",
                rn->makespan / rd->makespan, mode);
  }

  print_header("Live service: inter-job policy on the real engine (4x8 slots, 4 queries)");
  std::printf("  %-15s %10s %10s %10s %6s\n", "policy", "mean_q(s)", "max_q(s)",
              "makespan", "util");
  service::ServiceSummary fifo, elastic;
  for (const auto policy :
       {service::AdmissionPolicy::kFifoExclusive, service::AdmissionPolicy::kFairShare,
        service::AdmissionPolicy::kElastic}) {
    const auto s = run_live(policy);
    std::printf("  %-15s %10.3f %10.3f %10.3f %5.0f%%\n",
                service::admission_policy_name(policy), s.mean_queueing, s.max_queueing,
                s.makespan, s.avg_utilization * 100.0);
    if (policy == service::AdmissionPolicy::kFifoExclusive) fifo = s;
    if (policy == service::AdmissionPolicy::kElastic) elastic = s;
  }
  std::printf(
      "  => elastic admission vs fifo-exclusive: makespan %.2fx, mean queueing %.2fx\n",
      fifo.makespan / elastic.makespan,
      elastic.mean_queueing > 0 ? fifo.mean_queueing / elastic.mean_queueing : 0.0);
  if (elastic.makespan >= fifo.makespan || elastic.mean_queueing >= fifo.mean_queueing) {
    std::fprintf(stderr, "REGRESSION: elastic did not beat fifo-exclusive\n");
    return 1;
  }

  print_header("Overload protection: 2x burst, latency vs batch tiers (bounded queue)");
  if (!run_overload()) return 1;
  return 0;
}
