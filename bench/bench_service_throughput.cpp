// High-rate service throughput under recurring jobs: the experiment
// behind the recurring-job result cache (ROADMAP item 4, paper §6.5).
//
// An open-loop arrival trace (service/arrival_trace.h) submits TPC-DS
// miniatures to a live JobService at a rate calibrated to ~2.5x the
// cluster's cold-job service rate — sustained overload when every job
// runs cold. `repeat_ratio` of the arrivals are drawn from a small pool
// of recurring templates; with the result cache on, repeats resolve as
// whole-job hits (no engine slots), in-flight dedupe followers, or
// pruned partial hits, which pulls the effective cold-arrival rate back
// under capacity. Reported per configuration: completed jobs/s, p50/p99
// queueing, cache hit rate, and slot-seconds saved — cache on vs off
// over the byte-identical trace.
//
// Pass --quick for the CI regression gate (exit 1 on failure):
//   * every job completes DONE in both runs;
//   * the recurring-heavy trace (60% repeats) achieves strictly higher
//     jobs/s AND strictly lower p99 queueing with the cache on;
//   * a cache-hit job's sink bytes are bit-identical to a cold run of
//     the same submission on a fresh service.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <thread>

#include "bench_common.h"
#include "exec/serde.h"
#include "service/arrival_trace.h"
#include "service/engine_jobs.h"
#include "service/job_service.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

struct Prepared {
  double at_s = 0.0;
  bool repeat = false;
  std::size_t template_id = 0;
  service::JobSubmission submission;
};

/// Builds one submission per arrival before the clock starts, reusing
/// one EngineQueryJob per template (reference answers are the expensive
/// client-side part; a real recurring client amortizes them the same
/// way).
std::vector<Prepared> prepare(const std::vector<service::TraceArrival>& trace,
                              const storage::StorageModel& external) {
  std::map<std::size_t, service::EngineQueryJob> built;
  std::vector<Prepared> out;
  out.reserve(trace.size());
  std::size_t i = 0;
  for (const auto& a : trace) {
    auto it = built.find(a.template_id);
    if (it == built.end()) {
      auto job = service::make_engine_query_job(a.query, a.spec, external);
      if (!job.ok()) {
        std::fprintf(stderr, "job build failed: %s\n", job.status().to_string().c_str());
        std::exit(1);
      }
      it = built.emplace(a.template_id, std::move(*job)).first;
    }
    Prepared p;
    p.at_s = a.at_s;
    p.repeat = a.repeat;
    p.template_id = a.template_id;
    p.submission = it->second.submission;
    p.submission.label = std::string(a.repeat ? "r" : "u") + std::to_string(a.template_id) +
                         "-" + std::to_string(i);
    out.push_back(std::move(p));
    ++i;
  }
  return out;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      std::min(v.size() - 1, static_cast<std::size_t>(std::ceil(p * v.size())) - 1);
  return v[idx];
}

struct RunStats {
  std::size_t done = 0;
  std::size_t not_done = 0;
  std::size_t cache_served = 0;   ///< outcomes with from_cache
  std::size_t followers = 0;      ///< outcomes resolved by a dedupe leader
  double jobs_per_s = 0.0;
  double makespan = 0.0;
  double p50_queueing = 0.0;
  double p99_queueing = 0.0;
  double hit_rate = 0.0;
  double slot_seconds_saved = 0.0;
  std::vector<service::JobOutcome> outcomes;
};

/// One open-loop replay of `subs` against a fresh service; cache_bytes
/// 0 = cache and dedupe off.
RunStats run_trace(const std::vector<Prepared>& subs, Bytes cache_bytes,
                   const storage::StorageModel& external) {
  auto cl = cluster::Cluster::uniform(4, 8);
  storage::MemStore store(external, "s3");
  service::ServiceOptions options;
  options.admission.policy = service::AdmissionPolicy::kFifoExclusive;
  options.external = external;
  options.cache_bytes = cache_bytes;
  service::JobService svc(cl, store, options);

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& p : subs) {
    std::this_thread::sleep_until(t0 + std::chrono::duration<double>(p.at_s));
    auto sub = p.submission;
    const auto id = svc.submit(std::move(sub));
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n", id.status().to_string().c_str());
      std::exit(1);
    }
  }

  RunStats r;
  r.outcomes = svc.drain();
  std::vector<double> queueing;
  for (const auto& o : r.outcomes) {
    if (o.state != service::JobState::kDone) {
      ++r.not_done;
      continue;
    }
    ++r.done;
    if (o.from_cache) ++r.cache_served;
    if (o.dedup_leader != 0) ++r.followers;
    queueing.push_back(std::max(0.0, o.started - o.submitted));
  }
  const auto s = svc.summary();
  r.makespan = s.makespan;
  if (r.makespan > 0.0) r.jobs_per_s = static_cast<double>(r.done) / r.makespan;
  r.p50_queueing = percentile(queueing, 0.50);
  r.p99_queueing = percentile(queueing, 0.99);
  if (const auto* cache = svc.result_cache()) {
    const auto cs = cache->stats();
    const std::size_t classed = cs.hits + cs.partial_hits + cs.misses;
    if (classed > 0) {
      r.hit_rate = static_cast<double>(cs.hits + cs.partial_hits) /
                   static_cast<double>(classed);
    }
    r.slot_seconds_saved = cs.slot_seconds_saved;
  }
  return r;
}

/// Serialized sink bytes of one submission run cold on a fresh,
/// cache-off service — the bit-identity reference.
std::map<StageId, std::string> cold_sink_bytes(const Prepared& p,
                                               const storage::StorageModel& external) {
  auto cl = cluster::Cluster::uniform(4, 8);
  storage::MemStore store(external, "s3");
  service::ServiceOptions options;
  options.external = external;
  service::JobService svc(cl, store, options);
  auto sub = p.submission;
  sub.label += "-cold";
  const auto id = svc.submit(std::move(sub));
  if (!id.ok()) {
    std::fprintf(stderr, "cold submit failed: %s\n", id.status().to_string().c_str());
    std::exit(1);
  }
  std::map<StageId, std::string> bytes;
  for (const auto& o : svc.drain()) {
    if (o.state != service::JobState::kDone) {
      std::fprintf(stderr, "cold run failed: %s\n", o.error.to_string().c_str());
      std::exit(1);
    }
    for (const auto& [stage, table] : o.sink_outputs) {
      bytes[stage] = std::string(exec::serialize_table(table).view());
    }
  }
  return bytes;
}

/// Wall-clock seconds one cold template job needs end to end — the
/// calibration the trace rate is derived from, so the benchmark applies
/// the same relative overload on any machine.
double calibrate_cold_seconds(const storage::StorageModel& external,
                              const service::TraceOptions& traceopts) {
  // Oversample (mean ~100 arrivals) so the Poisson draw cannot come up
  // empty, then keep only the first arrival.
  service::TraceOptions one = traceopts;
  one.duration_s = 2.0;
  one.rate_hz = 50.0;
  one.repeat_ratio = 1.0;
  auto trace = service::generate_trace(one);
  if (!trace.ok() || trace->empty()) {
    std::fprintf(stderr, "calibration trace failed\n");
    std::exit(1);
  }
  trace->resize(1);
  (*trace)[0].at_s = 0.0;
  const auto subs = prepare(*trace, external);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = run_trace(subs, 0, external);
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (r.done != 1) {
    std::fprintf(stderr, "calibration job did not finish\n");
    std::exit(1);
  }
  return std::max(1e-3, wall);
}

void print_row(const char* name, const RunStats& r) {
  std::printf("  %-12s %6zu %8.2f %9.3f %9.3f %7.0f%% %10.2f %6zu %6zu\n", name, r.done,
              r.jobs_per_s, r.p50_queueing, r.p99_queueing, r.hit_rate * 100.0,
              r.slot_seconds_saved, r.cache_served, r.followers);
}

constexpr Bytes kCacheBytes = 64ULL << 20;

int run_quick_check() {
  const auto& external = storage::s3_model();
  service::TraceOptions opts;
  opts.shape = service::TraceShape::kUniform;
  opts.duration_s = 3.0;
  opts.repeat_ratio = 0.6;
  opts.distinct_jobs = 4;
  opts.fact_rows = 12000;
  opts.num_orders = 3000;
  opts.seed = 7;

  const double cold = calibrate_cold_seconds(external, opts);
  opts.rate_hz = std::clamp(2.5 / cold, 4.0, 48.0);
  std::printf("calibration: cold job %.3f s -> offered rate %.1f Hz (~2.5x capacity)\n", cold,
              opts.rate_hz);

  auto trace = service::generate_trace(opts);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace generation failed: %s\n", trace.status().to_string().c_str());
    return 1;
  }
  const auto subs = prepare(*trace, external);
  std::size_t repeats = 0;
  for (const auto& p : subs) repeats += p.repeat ? 1 : 0;
  std::printf("trace: %zu arrivals over %.1f s, %zu repeats (%.0f%%)\n", subs.size(),
              opts.duration_s, repeats,
              subs.empty() ? 0.0 : 100.0 * static_cast<double>(repeats) / subs.size());

  const RunStats off = run_trace(subs, 0, external);
  const RunStats on = run_trace(subs, kCacheBytes, external);

  std::printf("  %-12s %6s %8s %9s %9s %8s %10s %6s %6s\n", "config", "done", "jobs/s",
              "p50_q(s)", "p99_q(s)", "hitrate", "slotsec_sv", "cached", "dedup");
  print_row("cache-off", off);
  print_row("cache-on", on);

  bool ok = true;
  if (off.not_done + on.not_done != 0) {
    std::fprintf(stderr, "REGRESSION: %zu job(s) did not complete DONE\n",
                 off.not_done + on.not_done);
    ok = false;
  }
  if (on.cache_served == 0) {
    std::fprintf(stderr, "REGRESSION: cache-on run served no job from the cache\n");
    ok = false;
  }
  if (on.jobs_per_s <= off.jobs_per_s) {
    std::fprintf(stderr, "REGRESSION: cache-on jobs/s %.2f not above cache-off %.2f\n",
                 on.jobs_per_s, off.jobs_per_s);
    ok = false;
  }
  if (on.p99_queueing >= off.p99_queueing) {
    std::fprintf(stderr, "REGRESSION: cache-on p99 queueing %.3f s not below cache-off %.3f s\n",
                 on.p99_queueing, off.p99_queueing);
    ok = false;
  }

  // Bit-identity: a from_cache outcome must carry the exact sink bytes
  // a cold run of the same submission produces.
  const service::JobOutcome* hit = nullptr;
  for (const auto& o : on.outcomes) {
    if (o.from_cache && o.dedup_leader == 0 && o.state == service::JobState::kDone) {
      hit = &o;
      break;
    }
  }
  if (hit == nullptr) {
    std::fprintf(stderr, "REGRESSION: no whole-job cache hit to check bit-identity on\n");
    ok = false;
  } else {
    const Prepared* src = nullptr;
    for (const auto& p : subs) {
      if (p.submission.label == hit->label) src = &p;
    }
    if (src == nullptr) {
      std::fprintf(stderr, "REGRESSION: cache-hit label '%s' missing from trace\n",
                   hit->label.c_str());
      std::fprintf(stderr, "quick check FAILED\n");
      return 1;
    }
    const auto cold_bytes = cold_sink_bytes(*src, external);
    for (const auto& [stage, table] : hit->sink_outputs) {
      const std::string got(exec::serialize_table(table).view());
      const auto want = cold_bytes.find(stage);
      if (want == cold_bytes.end() || want->second != got) {
        std::fprintf(stderr,
                     "REGRESSION: cache-hit sink stage %u bytes differ from cold run\n", stage);
        ok = false;
      }
    }
    if (ok) {
      std::printf("bit-identity: cache-hit '%s' sinks byte-identical to cold run\n",
                  hit->label.c_str());
    }
  }

  std::fprintf(stderr, "%s\n", ok ? "quick check PASSED" : "quick check FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return run_quick_check();
  }

  const auto& external = storage::s3_model();
  service::TraceOptions base;
  base.duration_s = 4.0;
  base.distinct_jobs = 4;
  base.fact_rows = 12000;
  base.num_orders = 3000;
  base.seed = 7;
  const double cold = calibrate_cold_seconds(external, base);
  base.rate_hz = std::clamp(2.5 / cold, 4.0, 48.0);

  print_header("Service throughput under recurring jobs (open loop, ~2.5x overload)");
  std::printf("calibration: cold job %.3f s -> offered rate %.1f Hz\n", cold, base.rate_hz);

  for (const auto shape : {service::TraceShape::kUniform, service::TraceShape::kBursty,
                           service::TraceShape::kDiurnal}) {
    for (const double repeat : {0.0, 0.5, 0.8}) {
      service::TraceOptions opts = base;
      opts.shape = shape;
      opts.repeat_ratio = repeat;
      auto trace = service::generate_trace(opts);
      if (!trace.ok()) {
        std::fprintf(stderr, "trace failed: %s\n", trace.status().to_string().c_str());
        return 1;
      }
      const auto subs = prepare(*trace, external);
      const RunStats off = run_trace(subs, 0, external);
      const RunStats on = run_trace(subs, kCacheBytes, external);
      std::printf("\n--- shape=%s repeat=%.0f%% (%zu arrivals) ---\n",
                  service::trace_shape_name(shape), repeat * 100.0, subs.size());
      std::printf("  %-12s %6s %8s %9s %9s %8s %10s %6s %6s\n", "config", "done", "jobs/s",
                  "p50_q(s)", "p99_q(s)", "hitrate", "slotsec_sv", "cached", "dedup");
      print_row("cache-off", off);
      print_row("cache-on", on);
      if (off.jobs_per_s > 0.0) {
        std::printf("  => cache speedup %.2fx jobs/s, p99 queueing %.2fx lower\n",
                    on.jobs_per_s / off.jobs_per_s,
                    on.p99_queueing > 0.0 ? off.p99_queueing / on.p99_queueing : 0.0);
      }
    }
  }
  return 0;
}
