// Figure 11: effectiveness of the execution time model (paper §6.4).
// For each query we take one IO-intensive stage and one compute-
// intensive stage, profile the time model offline (five DoPs, least
// squares), then compare model prediction vs actual (simulated) time
// for DoP 20..120. Paper result: error within 6% except Q1's small
// IO stage (higher variance of smaller tasks, up to 15%).
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "timemodel/drift.h"
#include "timemodel/profiler.h"

using namespace ditto;
using namespace ditto::bench;

namespace {

/// IO-intensive stage: largest read+write alpha. Compute-intensive
/// stage: the stage whose compute share of total alpha is highest
/// (typically a join over already-reduced data).
StageId pick_stage(const JobDag& dag, bool io_heavy) {
  // Ignore trivial dimension scans: only stages carrying at least 5% of
  // the heaviest compute load qualify as "compute-intensive".
  double max_comp = 0.0;
  for (StageId s = 0; s < dag.num_stages(); ++s) {
    max_comp = std::max(max_comp, dag.stage(s).compute_alpha());
  }
  StageId best = 0;
  double best_score = -1.0;
  for (StageId s = 0; s < dag.num_stages(); ++s) {
    double io = 0.0, comp = 0.0;
    for (const Step& step : dag.stage(s).steps()) {
      (step.kind == StepKind::kCompute ? comp : io) += step.alpha;
    }
    if (!io_heavy && comp < 0.05 * max_comp) continue;
    const double score = io_heavy ? io : comp / (io + comp + 1e-9);
    if (score > best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

}  // namespace

int main() {
  print_header("Figure 11: time-model accuracy (predicted vs actual, S3)");
  for (workload::QueryId q : workload::paper_queries()) {
    const JobDag truth =
        workload::build_query(q, 1000, physics_for(storage::s3_model()));
    auto simulator = std::make_shared<sim::JobSimulator>(truth, storage::s3_model());

    // Offline model building, as in the paper.
    JobDag fitted = truth;
    Profiler profiler(fitted, sim::make_sim_stage_runner(simulator));
    const auto report = profiler.profile_all();
    if (!report.ok()) {
      std::fprintf(stderr, "profiling failed\n");
      return 1;
    }
    const ExecTimePredictor predictor(fitted);

    const StageId io_stage = pick_stage(truth, /*io_heavy=*/true);
    const StageId comp_stage = pick_stage(truth, /*io_heavy=*/false);

    std::printf("\n%s  (IO stage: %s, compute stage: %s)\n", workload::query_name(q),
                truth.stage(io_stage).name().c_str(), truth.stage(comp_stage).name().c_str());
    std::printf("%5s | %10s %10s %6s | %10s %10s %6s\n", "DoP", "IO actual", "IO model",
                "err%", "C actual", "C model", "err%");
    print_rule();
    std::vector<StageDriftSample> drift;
    for (int d = 20; d <= 120; d += 20) {
      double vals[2][2];  // [stage][actual, predicted]
      const StageId stages[2] = {io_stage, comp_stage};
      for (int k = 0; k < 2; ++k) {
        // "Actual": mean over several fresh simulated runs.
        double actual = 0.0;
        const int reps = 5;
        for (int r = 0; r < reps; ++r) {
          const auto means = simulator->run_stage_isolated(stages[k], d, nullptr, 100 + r);
          double total = 0.0;
          for (double m : means) total += m;
          actual += total;
        }
        vals[k][0] = actual / reps;
        vals[k][1] = predictor.stage_time(stages[k], d, nothing_colocated()) /
                     predictor.straggler_factor(stages[k]);
      }
      const auto err = [](double a, double p) { return std::abs(p - a) / a * 100.0; };
      std::printf("%5d | %10.2f %10.2f %5.1f%% | %10.2f %10.2f %5.1f%%\n", d, vals[0][0],
                  vals[0][1], err(vals[0][0], vals[0][1]), vals[1][0], vals[1][1],
                  err(vals[1][0], vals[1][1]));
      for (int k = 0; k < 2; ++k) {
        StageDriftSample sample;
        sample.stage = stages[k];
        sample.dop = d;
        sample.predicted_seconds = vals[k][1];
        sample.observed_seconds = vals[k][0];
        drift.push_back(sample);
      }
    }
    const DriftSummary summary = summarize_drift(drift);
    std::printf("accuracy: mean rel error %.1f%%, max %.1f%% over %zu predictions\n",
                summary.mean_abs_rel_error * 100.0, summary.max_abs_rel_error * 100.0,
                summary.count);
  }
  return 0;
}
