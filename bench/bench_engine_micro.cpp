// Microbenchmarks of the execution substrate (google-benchmark):
// serialization, operators, partitioning, and — most relevant to the
// paper — the latency gap between zero-copy shared-memory exchange and
// store-mediated remote exchange, which is the asymmetry Ditto's
// grouping decision exploits.
//
// Pass --trace-out FILE to enable the observability layer during the
// run and dump the collected events as Chrome trace-event JSON. The
// default (no flag) keeps observability disabled, so the numbers also
// serve as the "tracing off costs nothing" check.
//
// Pass --faults SPEC (grammar in faults/fault_injector.h) to run the
// flaky-exchange benchmark under injected storage faults; without the
// flag it measures the pure decorator + retry-wiring overhead, which
// is the "faults off costs nothing" check.
//
// Pass --quick to skip google-benchmark and instead run the regression
// self-check: the single-pass partitioner and the zero-copy v2
// deserializer are timed against their legacy formulations on the same
// data, results are verified equal, and the process exits non-zero if
// the speedups fall below the floors (1.5x partition, 1.3x serde).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"

#include "exec/datagen.h"
#include "exec/exchange.h"
#include "exec/operators.h"
#include "exec/serde.h"
#include "faults/fault_injector.h"
#include "faults/flaky_store.h"
#include "faults/retry_policy.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shm/channel.h"
#include "storage/sim_store.h"

using namespace ditto;
using namespace ditto::exec;

namespace {

Table fact(std::size_t rows) { return gen_fact_table({.rows = rows, .seed = 42}); }

void BM_SerializeTable(benchmark::State& state) {
  const Table t = fact(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto buf = serialize_table(t);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_SerializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SerializeTableScratch(benchmark::State& state) {
  const Table t = fact(static_cast<std::size_t>(state.range(0)));
  SerdeScratch scratch;
  for (auto _ : state) {
    auto view = serialize_table_into(t, scratch);
    benchmark::DoNotOptimize(view);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_SerializeTableScratch)->Arg(1000)->Arg(10000)->Arg(100000);

/// Owned parse: every column copied out of the wire bytes.
void BM_DeserializeTable(benchmark::State& state) {
  const shm::Buffer buf = serialize_table(fact(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto t = deserialize_table(buf.view());
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * buf.size()));
}
BENCHMARK(BM_DeserializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

/// Zero-copy parse: fixed-width columns borrow from the buffer.
void BM_DeserializeTableZeroCopy(benchmark::State& state) {
  const shm::Buffer buf = serialize_table(fact(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto t = deserialize_table(buf);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * buf.size()));
}
BENCHMARK(BM_DeserializeTableZeroCopy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  const Table left = fact(static_cast<std::size_t>(state.range(0)));
  const Table right = gen_dim_table(64, 8, 7);
  for (auto _ : state) {
    auto out = hash_join(left, "warehouse_id", right, "id");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GroupBy(benchmark::State& state) {
  const Table t = fact(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = group_by(t, "warehouse_id",
                        {{AggKind::kSum, "price", "total"}, {AggKind::kCount, "", "n"}});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GroupBy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashPartition(benchmark::State& state) {
  const Table t = fact(100000);
  for (auto _ : state) {
    auto parts = hash_partition(t, "order_id", static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_HashPartition)->Arg(2)->Arg(8)->Arg(32);

void BM_HashPartitionParallel(benchmark::State& state) {
  const Table t = fact(1'000'000);
  ThreadPool pool(4);
  for (auto _ : state) {
    auto parts = hash_partition(t, "order_id", static_cast<std::size_t>(state.range(0)), &pool);
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_HashPartitionParallel)->Arg(8)->Arg(32);

/// The zero-copy path: send a table handle through a local channel.
void BM_ExchangeLocalZeroCopy(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    LocalTableChannel ch;
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
}
BENCHMARK(BM_ExchangeLocalZeroCopy)->Arg(1000)->Arg(100000);

/// The remote path: serialize into the store, read back, deserialize.
void BM_ExchangeRemoteSerialized(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  auto store = storage::make_instant_store();
  std::size_t i = 0;
  for (auto _ : state) {
    RemoteTableChannel ch(*store, "bench" + std::to_string(i++));
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
}
BENCHMARK(BM_ExchangeRemoteSerialized)->Arg(1000)->Arg(100000);

faults::FaultSpec g_fault_spec;  // set by --faults; defaults inject nothing

/// The remote path behind a FlakyStore + retrying channel. With no
/// --faults this measures the resilience wiring's overhead (should be
/// indistinguishable from BM_ExchangeRemoteSerialized); with --faults
/// it measures the cost of absorbing the injected error rate.
void BM_ExchangeRemoteFlaky(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  auto store = storage::make_instant_store();
  faults::FaultInjector injector(g_fault_spec);
  faults::FlakyStore flaky(*store, injector);
  faults::RetryPolicy retry;  // defaults: 3 attempts, capped backoff
  std::size_t i = 0;
  for (auto _ : state) {
    RemoteTableChannel ch(flaky, "bench" + std::to_string(i++), &retry);
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
  state.counters["injected_errors"] =
      static_cast<double>(injector.counts().storage_errors);
}
BENCHMARK(BM_ExchangeRemoteFlaky)->Arg(1000)->Arg(100000);

void BM_ShmDescriptorRoundTrip(benchmark::State& state) {
  shm::SharedMemoryChannel ch;
  shm::Buffer payload = shm::Buffer::from_bytes(std::string(4096, 'x'));
  for (auto _ : state) {
    (void)ch.send(payload);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ShmDescriptorRoundTrip);

/// Best-of-N wall time of `fn` in seconds (one untimed warmup run).
template <typename F>
double time_best(int reps, F&& fn) {
  using clock = std::chrono::steady_clock;
  fn();
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = clock::now();
    fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

/// Regression self-check (--quick): verifies the rebuilt data path is
/// both CORRECT (bit-equal results vs the legacy formulations) and
/// FASTER by at least the floors below. Non-zero exit on any miss, so
/// CI can gate on it.
int run_quick_check() {
  constexpr double kPartitionFloor = 1.5;
  constexpr double kSerdeFloor = 1.3;
  constexpr std::size_t kParts = 16;
  const Table t = fact(1'000'000);
  bool ok = true;

  // --- partitioning: legacy per-row push_back index vectors + take ---
  const auto legacy_partition = [&t] {
    const auto keys = t.column_by_name("order_id").int_span();
    std::vector<std::vector<std::size_t>> buckets(kParts);
    for (std::size_t r = 0; r < keys.size(); ++r) {
      buckets[stable_hash64(keys[r]) % kParts].push_back(r);
    }
    std::vector<Table> out;
    out.reserve(kParts);
    for (const auto& b : buckets) out.push_back(t.take(b));
    return out;
  };
  const auto single_pass = [&t] {
    auto parts = hash_partition(t, "order_id", kParts);
    return std::move(parts).value();
  };
  {
    const std::vector<Table> want = legacy_partition();
    const std::vector<Table> got = single_pass();
    for (std::size_t p = 0; p < kParts; ++p) {
      if (!(want[p] == got[p])) {
        std::fprintf(stderr, "FAIL: single-pass partition differs at partition %zu\n", p);
        ok = false;
      }
    }
  }
  const double t_legacy = time_best(5, [&] { benchmark::DoNotOptimize(legacy_partition()); });
  const double t_scatter = time_best(5, [&] { benchmark::DoNotOptimize(single_pass()); });
  const double part_speedup = t_legacy / t_scatter;
  std::fprintf(stderr, "partition: legacy %.1f ms, single-pass %.1f ms -> %.2fx (floor %.1fx)\n",
               t_legacy * 1e3, t_scatter * 1e3, part_speedup, kPartitionFloor);
  if (part_speedup < kPartitionFloor) {
    std::fprintf(stderr, "FAIL: partition speedup below floor\n");
    ok = false;
  }

  // --- serde: v1 owned parse vs v2 zero-copy parse ---
  set_serde_write_version(1);
  const shm::Buffer v1_bytes = serialize_table(t);
  set_serde_write_version(2);
  const shm::Buffer v2_bytes = serialize_table(t);
  {
    const auto from_v1 = deserialize_table(v1_bytes.view());
    const auto from_v2 = deserialize_table(v2_bytes);
    if (!from_v1.ok() || !(*from_v1 == t)) {
      std::fprintf(stderr, "FAIL: v1 payload did not round-trip\n");
      ok = false;
    }
    if (!from_v2.ok() || !(*from_v2 == t)) {
      std::fprintf(stderr, "FAIL: v2 zero-copy payload did not round-trip\n");
      ok = false;
    }
  }
  const double t_v1 = time_best(5, [&] {
    auto r = deserialize_table(v1_bytes.view());
    benchmark::DoNotOptimize(r);
  });
  const double t_v2 = time_best(5, [&] {
    auto r = deserialize_table(v2_bytes);
    benchmark::DoNotOptimize(r);
  });
  const double serde_speedup = t_v1 / t_v2;
  std::fprintf(stderr, "deserialize: v1 owned %.2f ms, v2 zero-copy %.2f ms -> %.2fx (floor %.1fx)\n",
               t_v1 * 1e3, t_v2 * 1e3, serde_speedup, kSerdeFloor);
  if (serde_speedup < kSerdeFloor) {
    std::fprintf(stderr, "FAIL: zero-copy deserialize speedup below floor\n");
    ok = false;
  }

  // --- informational: end-to-end shuffle (partition + serialize each
  // partition + receiver-side parse). The receiver in both formulations
  // owns its bytes (as after a store get); the new path borrows columns
  // from that owned copy instead of re-copying them. Not gated: the
  // ratio is dominated by raw byte movement common to both sides.
  const auto legacy_shuffle = [&] {
    set_serde_write_version(1);
    std::vector<Table> received;
    received.reserve(kParts);
    for (const Table& part : legacy_partition()) {
      const shm::Buffer b = serialize_table(part);
      received.push_back(std::move(deserialize_table(b.view())).value());
    }
    set_serde_write_version(2);
    return received;
  };
  SerdeScratch scratch;
  const auto fast_shuffle = [&] {
    std::vector<Table> received;
    received.reserve(kParts);
    for (const Table& part : single_pass()) {
      const auto owner = std::make_shared<const std::string>(serialize_table_into(part, scratch));
      received.push_back(std::move(deserialize_table_borrowing(*owner, owner)).value());
    }
    return received;
  };
  {
    const std::vector<Table> want = legacy_shuffle();
    const std::vector<Table> got = fast_shuffle();
    for (std::size_t p = 0; p < kParts; ++p) {
      if (!(want[p] == got[p])) {
        std::fprintf(stderr, "FAIL: shuffle results differ at partition %zu\n", p);
        ok = false;
      }
    }
  }
  const double t_shuffle_legacy = time_best(5, [&] { benchmark::DoNotOptimize(legacy_shuffle()); });
  const double t_shuffle_fast = time_best(5, [&] { benchmark::DoNotOptimize(fast_shuffle()); });
  std::fprintf(stderr, "shuffle round trip: legacy %.1f ms, new %.1f ms -> %.2fx (informational)\n",
               t_shuffle_legacy * 1e3, t_shuffle_fast * 1e3, t_shuffle_legacy / t_shuffle_fast);

  std::fprintf(stderr, "%s\n", ok ? "quick check PASSED" : "quick check FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return run_quick_check();
  }
  // Strip --trace-out before google-benchmark sees the argv; it rejects
  // flags it does not know.
  std::string trace_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      auto parsed = ditto::faults::parse_fault_spec(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "fault spec error: %s\n", parsed.status().to_string().c_str());
        return 2;
      }
      g_fault_spec = std::move(parsed).value();
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) ditto::obs::set_observability_enabled(true);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!trace_out.empty()) {
    ditto::obs::TraceCollector& tc = ditto::obs::TraceCollector::global();
    const ditto::Status st = tc.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu events written to %s\n", tc.size(), trace_out.c_str());
    std::fprintf(stderr, "%s", ditto::obs::MetricsRegistry::global().to_text().c_str());
  }
  return 0;
}
