// Microbenchmarks of the execution substrate (google-benchmark):
// serialization, operators, partitioning, and — most relevant to the
// paper — the latency gap between zero-copy shared-memory exchange and
// store-mediated remote exchange, which is the asymmetry Ditto's
// grouping decision exploits.
//
// Pass --trace-out FILE to enable the observability layer during the
// run and dump the collected events as Chrome trace-event JSON. The
// default (no flag) keeps observability disabled, so the numbers also
// serve as the "tracing off costs nothing" check.
//
// Pass --faults SPEC (grammar in faults/fault_injector.h) to run the
// flaky-exchange benchmark under injected storage faults; without the
// flag it measures the pure decorator + retry-wiring overhead, which
// is the "faults off costs nothing" check.
//
// Pass --quick to skip google-benchmark and instead run the regression
// self-check: the single-pass partitioner, the zero-copy v2
// deserializer and the columnar operator kernels are timed against
// their legacy/reference formulations on the same data, results are
// verified equal, and the process exits non-zero if the speedups fall
// below the floors (1.5x partition, 1.3x serde, 3x serial group-by;
// 8-thread scaling floors adapt to the host's core count). The check
// also gates the pipelined shuffle: chunk-granular push must beat
// materialized waves on a 48 MB cross-server shuffle, stay
// byte-identical under the fault storm, and not widen the Q95
// time-model drift.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

#include "exec/datagen.h"
#include "exec/engine.h"
#include "exec/exchange.h"
#include "exec/operators.h"
#include "exec/serde.h"
#include "faults/fault_injector.h"
#include "faults/flaky_store.h"
#include "faults/retry_policy.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shm/channel.h"
#include "storage/sim_store.h"
#include "timemodel/predictor.h"
#include "workload/physics.h"
#include "workload/pipelining.h"
#include "workload/q95_engine.h"

using namespace ditto;
using namespace ditto::exec;

namespace {

Table fact(std::size_t rows) { return gen_fact_table({.rows = rows, .seed = 42}); }

void BM_SerializeTable(benchmark::State& state) {
  const Table t = fact(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto buf = serialize_table(t);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_SerializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SerializeTableScratch(benchmark::State& state) {
  const Table t = fact(static_cast<std::size_t>(state.range(0)));
  SerdeScratch scratch;
  for (auto _ : state) {
    auto view = serialize_table_into(t, scratch);
    benchmark::DoNotOptimize(view);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_SerializeTableScratch)->Arg(1000)->Arg(10000)->Arg(100000);

/// Owned parse: every column copied out of the wire bytes.
void BM_DeserializeTable(benchmark::State& state) {
  const shm::Buffer buf = serialize_table(fact(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto t = deserialize_table(buf.view());
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * buf.size()));
}
BENCHMARK(BM_DeserializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

/// Zero-copy parse: fixed-width columns borrow from the buffer.
void BM_DeserializeTableZeroCopy(benchmark::State& state) {
  const shm::Buffer buf = serialize_table(fact(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto t = deserialize_table(buf);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * buf.size()));
}
BENCHMARK(BM_DeserializeTableZeroCopy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  const Table left = fact(static_cast<std::size_t>(state.range(0)));
  const Table right = gen_dim_table(64, 8, 7);
  for (auto _ : state) {
    auto out = hash_join(left, "warehouse_id", right, "id");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GroupBy(benchmark::State& state) {
  const Table t = fact(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = group_by(t, "warehouse_id",
                        {{AggKind::kSum, "price", "total"}, {AggKind::kCount, "", "n"}});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GroupBy)->Arg(1000)->Arg(10000)->Arg(100000);

/// Same values, every fixed-width column borrowing external storage —
/// the shape tables arrive in after a zero-copy deserialize.
Table borrowed_table(const Table& t) {
  std::vector<Column> cols;
  cols.reserve(t.num_columns());
  for (std::size_t c = 0; c < t.num_columns(); ++c) {
    cols.push_back(t.column(c).borrowed_copy());
  }
  return std::move(Table::make(t.schema(), std::move(cols))).value();
}

/// 1M-row fact table with a wide order_id domain — enough distinct
/// groups / join keys that hashing dominates, matching the workload
/// the kernels were built for.
Table kernel_fact() {
  FactTableSpec fs;
  fs.rows = 1'000'000;
  fs.num_orders = 250'000;
  fs.seed = 42;
  return gen_fact_table(fs);
}

const std::vector<AggSpec>& kernel_aggs() {
  static const std::vector<AggSpec> aggs{{AggKind::kSum, "price", "total"},
                                         {AggKind::kCount, "", "n"},
                                         {AggKind::kMin, "warehouse_id", "wh_min"}};
  return aggs;
}

/// Columnar group-by kernel at 1 / 4 / 8 compute threads.
void BM_GroupByKernelThreads(benchmark::State& state) {
  const Table t = kernel_fact();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = group_by(t, "order_id", kernel_aggs(), &pool);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_GroupByKernelThreads)->Arg(1)->Arg(4)->Arg(8);

/// Row-at-a-time reference group-by on the same data (the baseline the
/// quick-check floor is measured against).
void BM_GroupByReference(benchmark::State& state) {
  const Table t = kernel_fact();
  for (auto _ : state) {
    auto out = reference::group_by(t, "order_id", kernel_aggs());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_GroupByReference);

/// Partitioned hash-join kernel at 1 / 4 / 8 compute threads: 1M-row
/// probe side against a 250k-row build side.
void BM_HashJoinKernelThreads(benchmark::State& state) {
  const Table left = kernel_fact();
  const Table right = gen_dim_table(250'000, 4, 9);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = hash_join(left, "order_id", right, "id", JoinKind::kInner, &pool);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HashJoinKernelThreads)->Arg(1)->Arg(4)->Arg(8);

void BM_HashJoinReference(benchmark::State& state) {
  const Table left = kernel_fact();
  const Table right = gen_dim_table(250'000, 4, 9);
  for (auto _ : state) {
    auto out = reference::hash_join(left, "order_id", right, "id", JoinKind::kInner);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HashJoinReference);

/// Fused two-predicate columnar filter at 1 / 4 / 8 compute threads.
void BM_FilterKernelThreads(benchmark::State& state) {
  const Table t = kernel_fact();
  const std::vector<ColumnPred> preds{pred_double("price", CmpOp::kGt, 50.0),
                                      pred_int("warehouse_id", CmpOp::kLt, 8)};
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = filter_cols(t, preds, &pool);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_FilterKernelThreads)->Arg(1)->Arg(4)->Arg(8);

void BM_FilterReference(benchmark::State& state) {
  const Table t = kernel_fact();
  const std::vector<ColumnPred> preds{pred_double("price", CmpOp::kGt, 50.0),
                                      pred_int("warehouse_id", CmpOp::kLt, 8)};
  for (auto _ : state) {
    auto out = reference::filter_cols(t, preds);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_FilterReference);

void BM_HashPartition(benchmark::State& state) {
  const Table t = fact(100000);
  for (auto _ : state) {
    auto parts = hash_partition(t, "order_id", static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_HashPartition)->Arg(2)->Arg(8)->Arg(32);

void BM_HashPartitionParallel(benchmark::State& state) {
  const Table t = fact(1'000'000);
  ThreadPool pool(4);
  for (auto _ : state) {
    auto parts = hash_partition(t, "order_id", static_cast<std::size_t>(state.range(0)), &pool);
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_HashPartitionParallel)->Arg(8)->Arg(32);

/// The zero-copy path: send a table handle through a local channel.
void BM_ExchangeLocalZeroCopy(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    LocalTableChannel ch;
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
}
BENCHMARK(BM_ExchangeLocalZeroCopy)->Arg(1000)->Arg(100000);

/// The remote path: serialize into the store, read back, deserialize.
void BM_ExchangeRemoteSerialized(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  auto store = storage::make_instant_store();
  std::size_t i = 0;
  for (auto _ : state) {
    RemoteTableChannel ch(*store, "bench" + std::to_string(i++));
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
}
BENCHMARK(BM_ExchangeRemoteSerialized)->Arg(1000)->Arg(100000);

faults::FaultSpec g_fault_spec;  // set by --faults; defaults inject nothing

/// The remote path behind a FlakyStore + retrying channel. With no
/// --faults this measures the resilience wiring's overhead (should be
/// indistinguishable from BM_ExchangeRemoteSerialized); with --faults
/// it measures the cost of absorbing the injected error rate.
void BM_ExchangeRemoteFlaky(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  auto store = storage::make_instant_store();
  faults::FaultInjector injector(g_fault_spec);
  faults::FlakyStore flaky(*store, injector);
  faults::RetryPolicy retry;  // defaults: 3 attempts, capped backoff
  std::size_t i = 0;
  for (auto _ : state) {
    RemoteTableChannel ch(flaky, "bench" + std::to_string(i++), &retry);
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
  state.counters["injected_errors"] =
      static_cast<double>(injector.counts().storage_errors);
}
BENCHMARK(BM_ExchangeRemoteFlaky)->Arg(1000)->Arg(100000);

void BM_ShmDescriptorRoundTrip(benchmark::State& state) {
  shm::SharedMemoryChannel ch;
  shm::Buffer payload = shm::Buffer::from_bytes(std::string(4096, 'x'));
  for (auto _ : state) {
    (void)ch.send(payload);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ShmDescriptorRoundTrip);

/// Best-of-N wall time of `fn` in seconds (one untimed warmup run).
template <typename F>
double time_best(int reps, F&& fn) {
  using clock = std::chrono::steady_clock;
  fn();
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = clock::now();
    fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

/// Times `base` and `cand` (best-of-`reps` each) with noise-tolerant
/// retries: if the ratio base/cand lands below `floor`, the pair is
/// re-measured up to two more times and the best ratio seen is kept.
/// A real regression misses the floor on every round; a scheduler
/// hiccup on a busy runner does not.
template <typename A, typename B>
std::pair<double, double> timed_ratio(double floor, int reps, A&& base, B&& cand) {
  double tb = time_best(reps, base);
  double tc = time_best(reps, cand);
  for (int retry = 0; retry < 2 && tb / tc < floor; ++retry) {
    const double tb2 = time_best(reps, base);
    const double tc2 = time_best(reps, cand);
    if (tb2 / tc2 > tb / tc) {
      tb = tb2;
      tc = tc2;
    }
  }
  return {tb, tc};
}

/// Store decorator that pays its model's transfer time in real wall
/// clock on every put and get — cross-server exchange then has the
/// latency/bandwidth profile the time model predicts, which is what
/// makes pipelined-vs-materialized wall times (and time-model drift)
/// meaningful on a single machine.
class DelayStore final : public storage::ObjectStore {
 public:
  DelayStore(storage::ObjectStore& inner, storage::StorageModel model)
      : inner_(&inner), model_(model) {}

  const char* kind() const override { return "delay"; }
  const storage::StorageModel& model() const override { return model_; }
  Status put(const std::string& key, std::string_view value) override {
    pay(value.size());
    return inner_->put(key, value);
  }
  Result<std::string> get(const std::string& key) const override {
    auto r = inner_->get(key);
    if (r.ok()) pay(r->size());
    return r;
  }
  bool contains(const std::string& key) const override { return inner_->contains(key); }
  Status remove(const std::string& key) override { return inner_->remove(key); }
  std::vector<std::string> list(const std::string& prefix) const override {
    return inner_->list(prefix);
  }
  Bytes used_bytes() const override { return inner_->used_bytes(); }
  storage::StoreStats stats() const override { return inner_->stats(); }

 private:
  void pay(std::size_t n) const {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(model_.transfer_time(n)));
  }

  storage::ObjectStore* inner_;
  const storage::StorageModel model_;
};

std::string engine_sink_bytes(const EngineResult& result, StageId sink) {
  const shm::Buffer buf = serialize_table(result.sink_outputs.at(sink));
  return std::string(buf.view());
}

cluster::PlacementPlan uniform_plan(const JobDag& dag, int dop, int servers) {
  cluster::PlacementPlan plan;
  plan.dop.assign(dag.num_stages(), dop);
  plan.task_server.resize(dag.num_stages());
  int next = 0;
  for (StageId s = 0; s < dag.num_stages(); ++s) {
    plan.task_server[s].resize(dop);
    for (int t = 0; t < dop; ++t) {
      plan.task_server[s][t] = static_cast<ServerId>(next++ % servers);
    }
  }
  return plan;
}

/// Pipelined-shuffle self-check: the chunk-granular exchange must be
/// (a) strictly faster than materialized waves on a 48 MB cross-server
/// shuffle with transport modeled as real delay, (b) byte-identical to
/// waves under the PR 2 fault storm, and (c) closing — not widening —
/// the time-model drift on Q95 when the model's pipelining annotations
/// are matched by actual engine pipelining.
bool run_pipelined_quick_check() {
  constexpr double kPipelineFloor = 1.15;
  bool ok = true;

  // --- (a) 48 MB shuffle: scan (2 tasks) -> filter (2 tasks), all
  // four edges remote through a 1 GB/s store. Materialized pays
  // produce + transport + consume serially across the wave barrier;
  // chunked overlaps them.
  {
    JobDag dag("pipe-bench");
    const StageId scan = dag.add_stage("scan");
    const StageId filt = dag.add_stage("filter");
    (void)dag.add_edge(scan, filt, ExchangeKind::kShuffle);
    auto big = std::make_shared<const Table>(fact(1'000'000));
    cluster::PlacementPlan plan;
    plan.dop = {2, 2};
    plan.task_server = {{0, 1}, {2, 3}};

    std::map<StageId, StageBinding> bindings;
    bindings[scan] = StageBinding{
        [big](int task, int dop, const std::vector<Table>&) -> Result<Table> {
          return range_partition(*big, dop)[task];
        },
        "order_id"};
    const std::vector<ColumnPred> preds{pred_double("price", CmpOp::kGt, 25.0)};
    bindings[filt] = StageBinding{
        [preds](int, int, const std::vector<Table>& in) -> Result<Table> {
          return filter_cols(in.at(0), preds);
        },
        ""};
    bindings[filt].stream_fn =
        [preds](int, int, std::vector<TableChunkFn>& in) -> Result<Table> {
      return filter_stream(in.at(0), preds, nullptr);
    };

    storage::StorageModel transport;
    transport.request_latency = 0.0002;
    transport.bandwidth_bytes_per_s = 1e9;

    const auto run = [&](bool pipeline) -> Result<EngineResult> {
      auto inner = storage::make_instant_store();
      DelayStore store(*inner, transport);
      EngineOptions options;
      options.pipeline = pipeline;
      options.chunk_rows = 64 * 1024;
      MiniEngine engine(dag, plan, store, options);
      return engine.run(bindings);
    };

    const auto wave = run(false);
    const auto piped = run(true);
    if (!wave.ok() || !piped.ok()) {
      std::fprintf(stderr, "FAIL: pipelined shuffle bench run errored\n");
      return false;
    }
    if (engine_sink_bytes(*piped, filt) != engine_sink_bytes(*wave, filt)) {
      std::fprintf(stderr, "FAIL: pipelined shuffle output differs from materialized\n");
      ok = false;
    }
    if (piped->stats.exchange.chunks_published <= wave->stats.exchange.chunks_published) {
      std::fprintf(stderr, "FAIL: pipelined run did not actually chunk the stream\n");
      ok = false;
    }

    const auto [t_wave, t_piped] =
        timed_ratio(kPipelineFloor, 3, [&] { benchmark::DoNotOptimize(run(false)); },
                    [&] { benchmark::DoNotOptimize(run(true)); });
    const double speedup = t_wave / t_piped;
    std::fprintf(stderr,
                 "pipelined shuffle (48 MB, 1 GB/s transport): materialized %.1f ms, "
                 "chunked %.1f ms -> %.2fx (floor %.2fx)\n",
                 t_wave * 1e3, t_piped * 1e3, speedup, kPipelineFloor);
    if (speedup < kPipelineFloor) {
      std::fprintf(stderr, "FAIL: chunked shuffle not faster than materialized\n");
      ok = false;
    }
  }

  // --- (b) fault storm: the PR 2 chaos config against the chunked
  // path must leave the sink byte-identical to a fault-free
  // materialized run.
  {
    JobDag dag("pipe-chaos");
    const StageId scan = dag.add_stage("scan");
    const StageId filt = dag.add_stage("filter");
    const StageId agg = dag.add_stage("agg");
    (void)dag.add_edge(scan, filt, ExchangeKind::kShuffle);
    (void)dag.add_edge(filt, agg, ExchangeKind::kShuffle);
    auto rows = std::make_shared<const Table>(
        gen_fact_table({.rows = 60000, .num_warehouses = 16, .seed = 21}));
    cluster::PlacementPlan plan;
    plan.dop = {2, 2, 2};
    plan.task_server = {{0, 1}, {0, 1}, {1, 0}};

    std::map<StageId, StageBinding> bindings;
    bindings[scan] = StageBinding{
        [rows](int task, int dop, const std::vector<Table>&) -> Result<Table> {
          return range_partition(*rows, dop)[task];
        },
        "warehouse_id"};
    bindings[filt] = StageBinding{
        [](int, int, const std::vector<Table>& in) -> Result<Table> {
          return filter_cols(in.at(0), {pred_int("quantity", CmpOp::kGt, 20)});
        },
        "warehouse_id"};
    bindings[filt].stream_fn =
        [](int, int, std::vector<TableChunkFn>& in) -> Result<Table> {
      return filter_stream(in.at(0), {pred_int("quantity", CmpOp::kGt, 20)}, nullptr);
    };
    bindings[agg] = StageBinding{
        [](int, int, const std::vector<Table>& in) -> Result<Table> {
          return group_by(in.at(0), "warehouse_id",
                          {{AggKind::kSum, "quantity", "qty"}, {AggKind::kCount, "", "n"}});
        },
        ""};

    auto clean_store = storage::make_instant_store();
    MiniEngine clean(dag, plan, *clean_store);
    const auto base = clean.run(bindings);
    if (!base.ok()) {
      std::fprintf(stderr, "FAIL: fault-free baseline errored\n");
      return false;
    }

    auto spec = ditto::faults::parse_fault_spec(
        "storage_error=0.1,storage_delay=0.001@0.3,crash=1:0,hang=0:1:0.3,"
        "server_loss=1@1,seed=7");
    ditto::faults::FaultInjector injector(std::move(spec).value());
    auto inner = storage::make_instant_store();
    ditto::faults::FlakyStore flaky(*inner, injector);
    EngineOptions options;
    options.pipeline = true;
    options.chunk_rows = 4096;
    // Stream only scan->filter so agg starts at a group boundary —
    // where the injector's server loss fires.
    options.pipeline_edges = {{scan, filt}};
    options.injector = &injector;
    options.resilience.speculation_factor = 2.0;
    options.resilience.speculation_min_wait = 0.01;
    options.resilience.storage.initial_backoff = 1e-4;
    options.resilience.storage.max_backoff = 1e-3;
    MiniEngine chaos_engine(dag, plan, flaky, options);
    const auto chaos = chaos_engine.run(bindings);
    if (!chaos.ok()) {
      std::fprintf(stderr, "FAIL: pipelined fault-storm run errored: %s\n",
                   chaos.status().to_string().c_str());
      return false;
    }
    const bool identical = engine_sink_bytes(*chaos, agg) == engine_sink_bytes(*base, agg);
    std::fprintf(stderr,
                 "pipelined fault storm: %zu storage errors, %zu server lost -> "
                 "sink %s\n",
                 injector.counts().storage_errors, injector.counts().servers_lost,
                 identical ? "byte-identical" : "DIFFERS");
    if (!identical || injector.counts().storage_errors == 0) {
      std::fprintf(stderr, "FAIL: fault storm broke pipelined byte-identity\n");
      ok = false;
    }
  }

  // --- (c) Q95 drift: with the model's pipelining annotations matched
  // by engine pipelining, the total predicted-vs-observed gap over the
  // streaming stages (reduce1/join1/join2) must not grow vs the
  // materialized run judged by the unannotated model.
  {
    workload::Q95EngineSpec spec;
    spec.sales_rows = 200'000;
    spec.num_orders = 30'000;
    workload::Q95EngineJob job = workload::build_q95_engine_job(spec);
    workload::annotate_q95_volumes(job);
    JobDag model = job.dag;
    workload::PhysicsParams physics;
    physics.store = storage::redis_model();
    workload::apply_physics(model, physics);
    JobDag model_piped = model;
    (void)workload::pipeline_all_shuffles(model_piped);
    const ExecTimePredictor pred_plain(model);
    const ExecTimePredictor pred_piped(model_piped);

    constexpr int kDop = 3;
    const auto plan = uniform_plan(job.dag, kDop, /*servers=*/3);
    const auto run = [&](bool pipeline) -> Result<EngineResult> {
      auto inner = storage::make_instant_store();
      DelayStore store(*inner, storage::redis_model());
      EngineOptions options;
      options.pipeline = pipeline;
      options.chunk_rows = 16384;
      MiniEngine engine(job.dag, plan, store, options);
      return engine.run(job.bindings);
    };
    const auto wave = run(false);
    const auto piped = run(true);
    if (!wave.ok() || !piped.ok()) {
      std::fprintf(stderr, "FAIL: Q95 drift bench run errored\n");
      return false;
    }
    const auto expected = workload::q95_reference(job, spec);
    for (const auto* r : {&wave, &piped}) {
      const auto answer = workload::q95_answer_from_sink((*r)->sink_outputs.at(8));
      if (!answer.ok() || answer->order_count != expected.order_count) {
        std::fprintf(stderr, "FAIL: Q95 answer mismatch in drift bench\n");
        ok = false;
      }
    }

    // Stage ids per build_q95_engine_job: reduce1=3, join1=5, join2=7.
    double gap_wave = 0.0, gap_piped = 0.0;
    for (const StageId s : {StageId{3}, StageId{5}, StageId{7}}) {
      const double pw = pred_plain.stage_time(s, kDop, nothing_colocated());
      const double pp = pred_piped.stage_time(s, kDop, nothing_colocated());
      gap_wave += std::abs(pw - wave->stats.stage_seconds.at(s));
      gap_piped += std::abs(pp - piped->stats.stage_seconds.at(s));
    }
    std::fprintf(stderr,
                 "Q95 drift (streaming stages): materialized gap %.1f ms, "
                 "pipelined gap %.1f ms (must not grow)\n",
                 gap_wave * 1e3, gap_piped * 1e3);
    if (gap_piped > gap_wave * 1.05 + 1e-9) {
      std::fprintf(stderr, "FAIL: engine pipelining widened Q95 time-model drift\n");
      ok = false;
    }
  }

  return ok;
}

/// Regression self-check (--quick): verifies the rebuilt data path is
/// both CORRECT (bit-equal results vs the legacy formulations) and
/// FASTER by at least the floors below. Non-zero exit on any miss, so
/// CI can gate on it.
int run_quick_check() {
  constexpr double kPartitionFloor = 1.5;
  constexpr double kSerdeFloor = 1.3;
  constexpr std::size_t kParts = 16;
  const Table t = fact(1'000'000);
  bool ok = true;

  // --- partitioning: legacy per-row push_back index vectors + take ---
  const auto legacy_partition = [&t] {
    const auto keys = t.column_by_name("order_id").int_span();
    std::vector<std::vector<std::size_t>> buckets(kParts);
    for (std::size_t r = 0; r < keys.size(); ++r) {
      buckets[stable_hash64(keys[r]) % kParts].push_back(r);
    }
    std::vector<Table> out;
    out.reserve(kParts);
    for (const auto& b : buckets) out.push_back(t.take(b));
    return out;
  };
  const auto single_pass = [&t] {
    auto parts = hash_partition(t, "order_id", kParts);
    return std::move(parts).value();
  };
  {
    const std::vector<Table> want = legacy_partition();
    const std::vector<Table> got = single_pass();
    for (std::size_t p = 0; p < kParts; ++p) {
      if (!(want[p] == got[p])) {
        std::fprintf(stderr, "FAIL: single-pass partition differs at partition %zu\n", p);
        ok = false;
      }
    }
  }
  const auto [t_legacy, t_scatter] =
      timed_ratio(kPartitionFloor, 5, [&] { benchmark::DoNotOptimize(legacy_partition()); },
                  [&] { benchmark::DoNotOptimize(single_pass()); });
  const double part_speedup = t_legacy / t_scatter;
  std::fprintf(stderr, "partition: legacy %.1f ms, single-pass %.1f ms -> %.2fx (floor %.1fx)\n",
               t_legacy * 1e3, t_scatter * 1e3, part_speedup, kPartitionFloor);
  if (part_speedup < kPartitionFloor) {
    std::fprintf(stderr, "FAIL: partition speedup below floor\n");
    ok = false;
  }

  // --- serde: v1 owned parse vs v2 zero-copy parse ---
  set_serde_write_version(1);
  const shm::Buffer v1_bytes = serialize_table(t);
  set_serde_write_version(2);
  const shm::Buffer v2_bytes = serialize_table(t);
  {
    const auto from_v1 = deserialize_table(v1_bytes.view());
    const auto from_v2 = deserialize_table(v2_bytes);
    if (!from_v1.ok() || !(*from_v1 == t)) {
      std::fprintf(stderr, "FAIL: v1 payload did not round-trip\n");
      ok = false;
    }
    if (!from_v2.ok() || !(*from_v2 == t)) {
      std::fprintf(stderr, "FAIL: v2 zero-copy payload did not round-trip\n");
      ok = false;
    }
  }
  const double t_v1 = time_best(5, [&] {
    auto r = deserialize_table(v1_bytes.view());
    benchmark::DoNotOptimize(r);
  });
  const double t_v2 = time_best(5, [&] {
    auto r = deserialize_table(v2_bytes);
    benchmark::DoNotOptimize(r);
  });
  const double serde_speedup = t_v1 / t_v2;
  std::fprintf(stderr, "deserialize: v1 owned %.2f ms, v2 zero-copy %.2f ms -> %.2fx (floor %.1fx)\n",
               t_v1 * 1e3, t_v2 * 1e3, serde_speedup, kSerdeFloor);
  if (serde_speedup < kSerdeFloor) {
    std::fprintf(stderr, "FAIL: zero-copy deserialize speedup below floor\n");
    ok = false;
  }

  // --- informational: end-to-end shuffle (partition + serialize each
  // partition + receiver-side parse). The receiver in both formulations
  // owns its bytes (as after a store get); the new path borrows columns
  // from that owned copy instead of re-copying them. Not gated: the
  // ratio is dominated by raw byte movement common to both sides.
  const auto legacy_shuffle = [&] {
    set_serde_write_version(1);
    std::vector<Table> received;
    received.reserve(kParts);
    for (const Table& part : legacy_partition()) {
      const shm::Buffer b = serialize_table(part);
      received.push_back(std::move(deserialize_table(b.view())).value());
    }
    set_serde_write_version(2);
    return received;
  };
  SerdeScratch scratch;
  const auto fast_shuffle = [&] {
    std::vector<Table> received;
    received.reserve(kParts);
    for (const Table& part : single_pass()) {
      const auto owner = std::make_shared<const std::string>(serialize_table_into(part, scratch));
      received.push_back(std::move(deserialize_table_borrowing(*owner, owner)).value());
    }
    return received;
  };
  {
    const std::vector<Table> want = legacy_shuffle();
    const std::vector<Table> got = fast_shuffle();
    for (std::size_t p = 0; p < kParts; ++p) {
      if (!(want[p] == got[p])) {
        std::fprintf(stderr, "FAIL: shuffle results differ at partition %zu\n", p);
        ok = false;
      }
    }
  }
  const double t_shuffle_legacy = time_best(5, [&] { benchmark::DoNotOptimize(legacy_shuffle()); });
  const double t_shuffle_fast = time_best(5, [&] { benchmark::DoNotOptimize(fast_shuffle()); });
  std::fprintf(stderr, "shuffle round trip: legacy %.1f ms, new %.1f ms -> %.2fx (informational)\n",
               t_shuffle_legacy * 1e3, t_shuffle_fast * 1e3, t_shuffle_legacy / t_shuffle_fast);

  // --- operator kernels: columnar group-by / join / filter vs the
  // row-at-a-time reference formulations. Correctness is gated
  // unconditionally (bit-identical output, owned AND borrowed columns,
  // serial AND parallel). The serial group-by floor is gated
  // unconditionally too. The 8-vs-1-thread scaling floors adapt to the
  // host: full floor with >= 8 cores, a scaled floor on 4-core CI
  // runners, report-only below 2 cores (scaling is meaningless there).
  {
    const unsigned hw = std::thread::hardware_concurrency();
    constexpr double kGroupBySerialFloor = 3.0;
    const double scale_floor = hw >= 8 ? 2.5 : hw >= 4 ? 1.6 : hw >= 2 ? 1.2 : 0.0;

    const Table big = kernel_fact();
    const Table big_borrowed = borrowed_table(big);
    const Table orders = gen_dim_table(250'000, 4, 9);
    const std::vector<AggSpec>& aggs = kernel_aggs();
    ThreadPool pool1(1);
    ThreadPool pool8(8);

    const auto check_equal = [&ok](const char* what, const Result<Table>& want,
                                   const Result<Table>& got) {
      if (!want.ok() || !got.ok() || !(*want == *got)) {
        std::fprintf(stderr, "FAIL: kernel output differs from reference (%s)\n", what);
        ok = false;
      }
    };

    const auto gb_want = reference::group_by(big, "order_id", aggs);
    check_equal("group_by serial", gb_want, group_by(big, "order_id", aggs, &pool1));
    check_equal("group_by 8t", gb_want, group_by(big, "order_id", aggs, &pool8));
    check_equal("group_by borrowed 8t", gb_want,
                group_by(big_borrowed, "order_id", aggs, &pool8));

    const auto join_want = reference::hash_join(big, "order_id", orders, "id");
    check_equal("join serial", join_want,
                hash_join(big, "order_id", orders, "id", JoinKind::kInner, &pool1));
    check_equal("join 8t", join_want,
                hash_join(big, "order_id", orders, "id", JoinKind::kInner, &pool8));
    check_equal("join borrowed 8t", join_want,
                hash_join(big_borrowed, "order_id", orders, "id", JoinKind::kInner, &pool8));

    const std::vector<ColumnPred> preds{pred_double("price", CmpOp::kGt, 50.0),
                                        pred_int("warehouse_id", CmpOp::kLt, 8)};
    const auto f_want = reference::filter_cols(big, preds);
    check_equal("filter serial", f_want, filter_cols(big, preds, &pool1));
    check_equal("filter 8t", f_want, filter_cols(big, preds, &pool8));
    check_equal("filter borrowed 8t", f_want, filter_cols(big_borrowed, preds, &pool8));

    const auto gb_ref_fn = [&] {
      benchmark::DoNotOptimize(reference::group_by(big, "order_id", aggs));
    };
    const auto gb1_fn = [&] {
      benchmark::DoNotOptimize(group_by(big, "order_id", aggs, &pool1));
    };
    const auto gb8_fn = [&] {
      benchmark::DoNotOptimize(group_by(big, "order_id", aggs, &pool8));
    };
    const auto [t_gb_ref, t_gb1] = timed_ratio(kGroupBySerialFloor, 3, gb_ref_fn, gb1_fn);
    const double gb_serial_speedup = t_gb_ref / t_gb1;
    std::fprintf(stderr,
                 "group-by: reference %.1f ms, kernel 1t %.1f ms -> %.2fx (floor %.1fx)\n",
                 t_gb_ref * 1e3, t_gb1 * 1e3, gb_serial_speedup, kGroupBySerialFloor);
    if (gb_serial_speedup < kGroupBySerialFloor) {
      std::fprintf(stderr, "FAIL: serial group-by speedup below floor\n");
      ok = false;
    }

    const auto j1_fn = [&] {
      benchmark::DoNotOptimize(
          hash_join(big, "order_id", orders, "id", JoinKind::kInner, &pool1));
    };
    const auto j8_fn = [&] {
      benchmark::DoNotOptimize(
          hash_join(big, "order_id", orders, "id", JoinKind::kInner, &pool8));
    };
    const auto [t_gb1s, t_gb8] = timed_ratio(scale_floor, 3, gb1_fn, gb8_fn);
    const auto [t_j1, t_j8] = timed_ratio(scale_floor, 3, j1_fn, j8_fn);

    const double gb_scaling = t_gb1s / t_gb8;
    const double join_scaling = t_j1 / t_j8;
    std::fprintf(stderr,
                 "group-by scaling: 1t %.1f ms, 8t %.1f ms -> %.2fx "
                 "(floor %.1fx, %u hw threads)\n",
                 t_gb1s * 1e3, t_gb8 * 1e3, gb_scaling, scale_floor, hw);
    std::fprintf(stderr,
                 "join scaling: 1t %.1f ms, 8t %.1f ms -> %.2fx "
                 "(floor %.1fx, %u hw threads)\n",
                 t_j1 * 1e3, t_j8 * 1e3, join_scaling, scale_floor, hw);
    if (scale_floor > 0.0) {
      if (gb_scaling < scale_floor) {
        std::fprintf(stderr, "FAIL: group-by parallel scaling below floor\n");
        ok = false;
      }
      if (join_scaling < scale_floor) {
        std::fprintf(stderr, "FAIL: join parallel scaling below floor\n");
        ok = false;
      }
    } else {
      std::fprintf(stderr, "scaling floors skipped: host has < 2 hardware threads\n");
    }

    const double t_f_ref = time_best(3, [&] {
      benchmark::DoNotOptimize(reference::filter_cols(big, preds));
    });
    const double t_f8 = time_best(3, [&] {
      benchmark::DoNotOptimize(filter_cols(big, preds, &pool8));
    });
    std::fprintf(stderr,
                 "filter: reference %.2f ms, kernel 8t %.2f ms -> %.2fx (informational)\n",
                 t_f_ref * 1e3, t_f8 * 1e3, t_f_ref / t_f8);
  }

  if (!run_pipelined_quick_check()) ok = false;

  std::fprintf(stderr, "%s\n", ok ? "quick check PASSED" : "quick check FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return run_quick_check();
  }
  // Strip --trace-out before google-benchmark sees the argv; it rejects
  // flags it does not know.
  std::string trace_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      auto parsed = ditto::faults::parse_fault_spec(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "fault spec error: %s\n", parsed.status().to_string().c_str());
        return 2;
      }
      g_fault_spec = std::move(parsed).value();
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) ditto::obs::set_observability_enabled(true);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!trace_out.empty()) {
    ditto::obs::TraceCollector& tc = ditto::obs::TraceCollector::global();
    const ditto::Status st = tc.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu events written to %s\n", tc.size(), trace_out.c_str());
    std::fprintf(stderr, "%s", ditto::obs::MetricsRegistry::global().to_text().c_str());
  }
  return 0;
}
