// Microbenchmarks of the execution substrate (google-benchmark):
// serialization, operators, partitioning, and — most relevant to the
// paper — the latency gap between zero-copy shared-memory exchange and
// store-mediated remote exchange, which is the asymmetry Ditto's
// grouping decision exploits.
//
// Pass --trace-out FILE to enable the observability layer during the
// run and dump the collected events as Chrome trace-event JSON. The
// default (no flag) keeps observability disabled, so the numbers also
// serve as the "tracing off costs nothing" check.
//
// Pass --faults SPEC (grammar in faults/fault_injector.h) to run the
// flaky-exchange benchmark under injected storage faults; without the
// flag it measures the pure decorator + retry-wiring overhead, which
// is the "faults off costs nothing" check.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "exec/datagen.h"
#include "exec/exchange.h"
#include "exec/operators.h"
#include "exec/serde.h"
#include "faults/fault_injector.h"
#include "faults/flaky_store.h"
#include "faults/retry_policy.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shm/channel.h"
#include "storage/sim_store.h"

using namespace ditto;
using namespace ditto::exec;

namespace {

Table fact(std::size_t rows) { return gen_fact_table({.rows = rows, .seed = 42}); }

void BM_SerializeTable(benchmark::State& state) {
  const Table t = fact(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto buf = serialize_table(t);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * t.byte_size()));
}
BENCHMARK(BM_SerializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DeserializeTable(benchmark::State& state) {
  const shm::Buffer buf = serialize_table(fact(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto t = deserialize_table(buf);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * buf.size()));
}
BENCHMARK(BM_DeserializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  const Table left = fact(static_cast<std::size_t>(state.range(0)));
  const Table right = gen_dim_table(64, 8, 7);
  for (auto _ : state) {
    auto out = hash_join(left, "warehouse_id", right, "id");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GroupBy(benchmark::State& state) {
  const Table t = fact(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = group_by(t, "warehouse_id",
                        {{AggKind::kSum, "price", "total"}, {AggKind::kCount, "", "n"}});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GroupBy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashPartition(benchmark::State& state) {
  const Table t = fact(100000);
  for (auto _ : state) {
    auto parts = hash_partition(t, "order_id", static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_HashPartition)->Arg(2)->Arg(8)->Arg(32);

/// The zero-copy path: send a table handle through a local channel.
void BM_ExchangeLocalZeroCopy(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    LocalTableChannel ch;
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
}
BENCHMARK(BM_ExchangeLocalZeroCopy)->Arg(1000)->Arg(100000);

/// The remote path: serialize into the store, read back, deserialize.
void BM_ExchangeRemoteSerialized(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  auto store = storage::make_instant_store();
  std::size_t i = 0;
  for (auto _ : state) {
    RemoteTableChannel ch(*store, "bench" + std::to_string(i++));
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
}
BENCHMARK(BM_ExchangeRemoteSerialized)->Arg(1000)->Arg(100000);

faults::FaultSpec g_fault_spec;  // set by --faults; defaults inject nothing

/// The remote path behind a FlakyStore + retrying channel. With no
/// --faults this measures the resilience wiring's overhead (should be
/// indistinguishable from BM_ExchangeRemoteSerialized); with --faults
/// it measures the cost of absorbing the injected error rate.
void BM_ExchangeRemoteFlaky(benchmark::State& state) {
  auto table = std::make_shared<const Table>(fact(static_cast<std::size_t>(state.range(0))));
  auto store = storage::make_instant_store();
  faults::FaultInjector injector(g_fault_spec);
  faults::FlakyStore flaky(*store, injector);
  faults::RetryPolicy retry;  // defaults: 3 attempts, capped backoff
  std::size_t i = 0;
  for (auto _ : state) {
    RemoteTableChannel ch(flaky, "bench" + std::to_string(i++), &retry);
    (void)ch.send(table);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * table->byte_size()));
  state.counters["injected_errors"] =
      static_cast<double>(injector.counts().storage_errors);
}
BENCHMARK(BM_ExchangeRemoteFlaky)->Arg(1000)->Arg(100000);

void BM_ShmDescriptorRoundTrip(benchmark::State& state) {
  shm::SharedMemoryChannel ch;
  shm::Buffer payload = shm::Buffer::from_bytes(std::string(4096, 'x'));
  for (auto _ : state) {
    (void)ch.send(payload);
    auto out = ch.recv();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ShmDescriptorRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  // Strip --trace-out before google-benchmark sees the argv; it rejects
  // flags it does not know.
  std::string trace_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      auto parsed = ditto::faults::parse_fault_spec(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "fault spec error: %s\n", parsed.status().to_string().c_str());
        return 2;
      }
      g_fault_spec = std::move(parsed).value();
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) ditto::obs::set_observability_enabled(true);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!trace_out.empty()) {
    ditto::obs::TraceCollector& tc = ditto::obs::TraceCollector::global();
    const ditto::Status st = tc.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu events written to %s\n", tc.size(), trace_out.c_str());
    std::fprintf(stderr, "%s", ditto::obs::MetricsRegistry::global().to_text().c_str());
  }
  return 0;
}
