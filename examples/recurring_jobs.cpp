// Recurring jobs: the production pattern the paper's profiling story
// rests on. A named job is registered once; its first occurrence pays
// the offline model-building cost, later occurrences schedule straight
// from the learned models, and every run's observations (straggler
// scales, per-stage timings) flow back into the model.
#include <cstdio>

#include "scheduler/ditto_scheduler.h"
#include "sim/recurring.h"
#include "storage/sim_store.h"
#include "workload/queries.h"

using namespace ditto;

int main() {
  workload::PhysicsParams physics;
  physics.store = storage::s3_model();

  sim::RecurringOptions options;
  options.sim.skew_sigma = 0.15;  // pronounced skew so feedback has work to do
  sim::RecurringJobManager manager(storage::s3_model(), options);
  manager.register_job("nightly-q95",
                       workload::build_query(workload::QueryId::kQ95, 1000, physics));

  auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());
  scheduler::DittoScheduler sched;

  std::printf("%-5s %10s %10s %8s %10s %8s\n", "run", "predicted", "simulated", "error",
              "profiled?", "refit?");
  for (int run = 0; run < 8; ++run) {
    const auto r = manager.run_once("nightly-q95", cl, sched, Objective::kJct);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n", r.status().to_string().c_str());
      return 1;
    }
    const double err =
        std::abs(r->sim.jct - r->plan.predicted.jct) / r->sim.jct * 100.0;
    std::printf("%-5d %9.1fs %9.1fs %7.1f%% %10s %8s\n", run, r->plan.predicted.jct,
                r->sim.jct, err, r->profiled_this_run ? "yes" : "-",
                r->refitted_this_run ? "yes" : "-");
  }

  const auto fitted = manager.fitted_dag("nightly-q95");
  if (fitted.ok()) {
    std::printf("\nlearned straggler scales:");
    for (StageId s = 0; s < fitted->num_stages(); ++s) {
      std::printf(" %s=%.2f", fitted->stage(s).name().c_str(),
                  fitted->stage(s).straggler_scale());
    }
    std::printf("\n");
  }
  return 0;
}
