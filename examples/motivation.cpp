// Figure 1 motivation: the impact of the degree of parallelism.
//
// Three schedulers on the three-stage join DAG with 20 function slots:
//   * Fixed      — slots split evenly across stages (Fig. 1b)
//   * NIMBLE     — DoP proportional to input data size (Fig. 1c)
//   * Ditto      — DoP ratio computing + grouping (Fig. 1d)
// The paper's narrative: data-size-proportional allocation over-serves
// the big scan and starves the join; balancing via sqrt-alpha ratios
// cuts JCT further.
#include <cstdio>

#include "scheduler/baselines.h"
#include "scheduler/ditto_scheduler.h"
#include "sim/sim_runner.h"
#include "storage/sim_store.h"
#include "workload/micro.h"

using namespace ditto;

int main() {
  workload::PhysicsParams physics;
  physics.store = storage::s3_model();
  const JobDag job = workload::fig1_join_dag(physics);
  auto cl = cluster::Cluster::uniform(/*servers=*/2, /*slots=*/10);  // 20 slots

  scheduler::FixedDopScheduler fixed;
  scheduler::NimbleScheduler nimble;
  scheduler::DittoScheduler ditto_sched;
  scheduler::Scheduler* schedulers[] = {&fixed, &nimble, &ditto_sched};

  std::printf("Fig. 1: three-stage join, 20 function slots\n\n");
  std::printf("%-8s", "stage");
  for (auto* s : schedulers) std::printf(" %14s", s->name());
  std::printf("\n---------------------------------------------------\n");

  double jct[3] = {0, 0, 0};
  std::vector<std::vector<int>> dops(3);
  for (int i = 0; i < 3; ++i) {
    const auto r =
        sim::run_experiment(job, cl, *schedulers[i], Objective::kJct, storage::s3_model());
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", schedulers[i]->name(),
                   r.status().to_string().c_str());
      return 1;
    }
    jct[i] = r->sim.jct;
    dops[i] = r->plan.placement.dop;
  }
  for (StageId s = 0; s < job.num_stages(); ++s) {
    std::printf("%-8s", job.stage(s).name().c_str());
    for (int i = 0; i < 3; ++i) std::printf(" %11d fns", dops[i][s]);
    std::printf("\n");
  }
  std::printf("%-8s", "JCT");
  for (int i = 0; i < 3; ++i) std::printf(" %12.1f s", jct[i]);
  std::printf("\n\nDitto vs fixed: %.2fx, vs NIMBLE: %.2fx\n", jct[0] / jct[2],
              jct[1] / jct[2]);
  return 0;
}
