// promcheck: validate Prometheus text exposition read from stdin.
//
//   curl -s http://127.0.0.1:9095/metrics | promcheck
//
// Exits 0 when the document is well-formed (per the strict checks in
// obs/prometheus.h: sample-line syntax, cumulative histogram buckets,
// +Inf == _count), nonzero with a line-numbered diagnostic otherwise.
// Used by the CI serve smoke job to gate the /metrics endpoint.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/prometheus.h"

int main() {
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) {
    std::fprintf(stderr, "promcheck: empty input\n");
    return 2;
  }
  const ditto::Status st = ditto::obs::validate_prometheus_text(text);
  if (!st.is_ok()) {
    std::fprintf(stderr, "promcheck: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("promcheck: ok (%zu bytes)\n", text.size());
  return 0;
}
