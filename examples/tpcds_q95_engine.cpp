// Q95 for real: the Ditto scheduler plans the engine-executable Q95
// and the MiniEngine runs it on generated data — the full stack in one
// program, from data to plan to zero-copy execution to the answer.
#include <cstdio>

#include "exec/engine.h"
#include "scheduler/baselines.h"
#include "scheduler/ditto_scheduler.h"
#include "scheduler/explain.h"
#include "storage/sim_store.h"
#include "workload/physics.h"
#include "workload/q95_engine.h"

using namespace ditto;

namespace {

struct RunStats {
  workload::Q95Answer answer;
  exec::EngineStats stats;
};

Result<RunStats> execute(workload::Q95EngineJob& job, const cluster::PlacementPlan& plan) {
  auto store = storage::make_redis_sim();
  store->set_real_delay_scale(0.01);  // small real delay: latency gap observable
  exec::MiniEngine engine(job.dag, plan, *store);
  DITTO_ASSIGN_OR_RETURN(exec::EngineResult result, engine.run(job.bindings));
  RunStats out;
  DITTO_ASSIGN_OR_RETURN(out.answer, workload::q95_answer_from_sink(result.sink_outputs.at(8)));
  out.stats = result.stats;
  return out;
}

}  // namespace

int main() {
  workload::Q95EngineSpec spec;
  spec.sales_rows = 100000;
  spec.num_orders = 15000;
  workload::Q95EngineJob job = workload::build_q95_engine_job(spec);
  std::printf("web_sales: %zu rows (%s); web_returns: %zu rows\n",
              job.web_sales->num_rows(), bytes_to_string(job.web_sales->byte_size()).c_str(),
              job.web_returns->num_rows());

  const auto expected = workload::q95_reference(job, spec);
  std::printf("reference answer: %lld qualifying orders, revenue %.2f\n\n",
              static_cast<long long>(expected.order_count), expected.total_revenue);

  // Plan with Ditto on a 4x8-slot cluster, using physics-derived models.
  workload::annotate_q95_volumes(job);
  JobDag model_dag = job.dag;
  workload::PhysicsParams physics;
  physics.store = storage::redis_model();
  workload::apply_physics(model_dag, physics);
  auto cl = cluster::Cluster::uniform(4, 8);

  scheduler::DittoScheduler ditto_sched;
  scheduler::NimbleScheduler nimble;
  for (scheduler::Scheduler* sched : {static_cast<scheduler::Scheduler*>(&ditto_sched),
                                      static_cast<scheduler::Scheduler*>(&nimble)}) {
    const auto plan = sched->schedule(model_dag, cl, Objective::kJct, storage::redis_model());
    if (!plan.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n", plan.status().to_string().c_str());
      return 1;
    }
    std::printf("%s", scheduler::explain_plan(model_dag, *plan).c_str());

    const auto run = execute(job, plan->placement);
    if (!run.ok()) {
      std::fprintf(stderr, "execution failed: %s\n", run.status().to_string().c_str());
      return 1;
    }
    std::printf("  executed: %lld orders, revenue %.2f (%s)\n",
                static_cast<long long>(run->answer.order_count), run->answer.total_revenue,
                run->answer.order_count == expected.order_count ? "matches reference"
                                                                : "MISMATCH");
    std::printf("  data plane: %zu zero-copy msgs, %zu via store (%s), wall %.1f ms\n\n",
                run->stats.exchange.zero_copy_messages, run->stats.exchange.remote_messages,
                bytes_to_string(run->stats.exchange.remote_bytes).c_str(),
                run->stats.wall_seconds * 1e3);
  }
  return 0;
}
