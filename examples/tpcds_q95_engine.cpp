// Q95 for real: the Ditto scheduler plans the engine-executable Q95
// and the MiniEngine runs it on generated data — the full stack in one
// program, from data to plan to zero-copy execution to the answer.
//
//   tpcds_q95_engine [--pipeline] [--trace-out FILE] [--report]
//                    [--faults SPEC] [--fault-seed N]
//
// --pipeline turns on chunk-granular pipelined shuffles (paper §4.5):
// the model DAG is annotated with pipeline_all_shuffles() so the
// scheduler and predictor credit the overlap, and the engine runs
// producer/consumer overlap groups that actually deliver it. Without
// the flag the model stays unannotated and the engine materializes —
// predictions and runtime agree either way (that symmetry is what
// keeps timemodel drift honest).
//
// --trace-out enables the observability layer and writes the whole run
// (scheduler spans, per-task engine spans, exchange/storage counter
// tracks) as Chrome trace-event JSON for Perfetto. --report prints a
// per-job execution report for the Ditto run.
//
// --faults runs the engine under the seeded fault injector (spec
// grammar in faults/fault_injector.h): storage ops go through a
// FlakyStore, task attempts can crash or hang, a server can die at a
// wave boundary. The answer must still match the reference — retries,
// speculation and server-loss recovery absorb the injected chaos.
#include <cstdio>
#include <cstring>
#include <memory>

#include "cluster/runtime_monitor.h"
#include "dag/dag_algorithms.h"
#include "exec/engine.h"
#include "faults/fault_injector.h"
#include "faults/flaky_store.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/profile_store.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "timemodel/predictor.h"
#include "scheduler/baselines.h"
#include "scheduler/ditto_scheduler.h"
#include "scheduler/explain.h"
#include "storage/sim_store.h"
#include "workload/physics.h"
#include "workload/pipelining.h"
#include "workload/q95_engine.h"

using namespace ditto;

namespace {

struct RunStats {
  workload::Q95Answer answer;
  exec::EngineStats stats;
};

/// Profiling context threaded into the engine run (all optional).
struct Profiling {
  obs::StageProfileStore* profiles = nullptr;
  std::uint64_t fingerprint = 0;
  std::vector<double> predicted_stage_seconds;
};

Result<RunStats> execute(workload::Q95EngineJob& job, const cluster::PlacementPlan& plan,
                         cluster::RuntimeMonitor* monitor = nullptr,
                         faults::FaultInjector* injector = nullptr,
                         const Profiling* profiling = nullptr, bool pipeline = false) {
  auto store = storage::make_redis_sim();
  store->set_real_delay_scale(0.01);  // small real delay: latency gap observable
  exec::EngineOptions options;
  options.pipeline = pipeline;
  if (profiling != nullptr) {
    options.profiles = profiling->profiles;
    options.plan_fingerprint = profiling->fingerprint;
    options.predicted_stage_seconds = profiling->predicted_stage_seconds;
  }
  std::unique_ptr<faults::FlakyStore> flaky;
  if (injector != nullptr) {
    flaky = std::make_unique<faults::FlakyStore>(*store, *injector);
    options.injector = injector;
    options.resilience.speculation_factor = 2.0;  // arm straggler mitigation
  }
  storage::ObjectStore& backing =
      flaky != nullptr ? static_cast<storage::ObjectStore&>(*flaky) : *store;
  exec::MiniEngine engine(job.dag, plan, backing, options);
  DITTO_ASSIGN_OR_RETURN(exec::EngineResult result, engine.run(job.bindings, monitor));
  RunStats out;
  DITTO_ASSIGN_OR_RETURN(out.answer, workload::q95_answer_from_sink(result.sink_outputs.at(8)));
  out.stats = result.stats;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  bool print_report = false;
  std::string faults_spec;
  std::uint64_t fault_seed = 0;
  bool fault_seed_set = false;
  bool pipeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      print_report = true;
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      pipeline = true;
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      faults_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
      fault_seed_set = true;
    } else {
      std::fprintf(stderr,
                   "usage: tpcds_q95_engine [--pipeline] [--trace-out FILE] [--report] "
                   "[--faults SPEC] [--fault-seed N]\n");
      return 2;
    }
  }
  if (!trace_out.empty() || print_report) obs::set_observability_enabled(true);

  faults::FaultSpec fault_cfg;
  if (!faults_spec.empty()) {
    auto parsed = faults::parse_fault_spec(faults_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "fault spec error: %s\n", parsed.status().to_string().c_str());
      return 2;
    }
    fault_cfg = std::move(parsed).value();
    if (fault_seed_set) fault_cfg.seed = fault_seed;
    std::printf("faults armed: %s (seed %llu)\n", fault_cfg.to_string().c_str(),
                static_cast<unsigned long long>(fault_cfg.seed));
  }

  workload::Q95EngineSpec spec;
  spec.sales_rows = 100000;
  spec.num_orders = 15000;
  workload::Q95EngineJob job = workload::build_q95_engine_job(spec);
  std::printf("web_sales: %zu rows (%s); web_returns: %zu rows\n",
              job.web_sales->num_rows(), bytes_to_string(job.web_sales->byte_size()).c_str(),
              job.web_returns->num_rows());

  const auto expected = workload::q95_reference(job, spec);
  std::printf("reference answer: %lld qualifying orders, revenue %.2f\n\n",
              static_cast<long long>(expected.order_count), expected.total_revenue);

  // Plan with Ditto on a 4x8-slot cluster, using physics-derived models.
  workload::annotate_q95_volumes(job);
  JobDag model_dag = job.dag;
  workload::PhysicsParams physics;
  physics.store = storage::redis_model();
  workload::apply_physics(model_dag, physics);
  if (pipeline) {
    // Annotate the model only when the engine will actually pipeline,
    // so predictions and runtime describe the same execution.
    const int annotated = workload::pipeline_all_shuffles(model_dag);
    std::printf("pipelining: %d shuffle edges annotated, engine overlap mode on\n\n",
                annotated);
  }
  auto cl = cluster::Cluster::uniform(4, 8);

  scheduler::DittoScheduler ditto_sched;
  scheduler::NimbleScheduler nimble;
  for (scheduler::Scheduler* sched : {static_cast<scheduler::Scheduler*>(&ditto_sched),
                                      static_cast<scheduler::Scheduler*>(&nimble)}) {
    const auto plan = sched->schedule(model_dag, cl, Objective::kJct, storage::redis_model());
    if (!plan.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n", plan.status().to_string().c_str());
      return 1;
    }
    std::printf("%s", scheduler::explain_plan(model_dag, *plan).c_str());

    cluster::RuntimeMonitor monitor;
    const bool observing = !trace_out.empty() || print_report;
    std::unique_ptr<faults::FaultInjector> injector;
    if (fault_cfg.any()) injector = std::make_unique<faults::FaultInjector>(fault_cfg);

    // Profiling loop context: record per-task samples under the model
    // DAG's fingerprint and feed predicted stage times for drift.
    obs::StageProfileStore profiles;
    Profiling profiling;
    profiling.profiles = &profiles;
    profiling.fingerprint = structural_fingerprint(model_dag);
    {
      const ExecTimePredictor predictor(model_dag);
      const ColocatedFn colocated = plan->placement.colocated_fn();
      profiling.predicted_stage_seconds.resize(model_dag.num_stages(), 0.0);
      for (StageId s = 0; s < model_dag.num_stages(); ++s) {
        profiling.predicted_stage_seconds[s] =
            predictor.stage_time(s, std::max(1, plan->placement.dop_of(s)), colocated);
      }
    }
    const auto run = execute(job, plan->placement, observing ? &monitor : nullptr,
                             injector.get(), &profiling, pipeline);
    if (!run.ok()) {
      std::fprintf(stderr, "execution failed: %s\n", run.status().to_string().c_str());
      return 1;
    }
    std::printf("  executed: %lld orders, revenue %.2f (%s)\n",
                static_cast<long long>(run->answer.order_count), run->answer.total_revenue,
                run->answer.order_count == expected.order_count ? "matches reference"
                                                                : "MISMATCH");
    std::printf("  data plane: %zu zero-copy msgs, %zu via store (%s), "
                "%zu chunks published, wall %.1f ms\n",
                run->stats.exchange.zero_copy_messages, run->stats.exchange.remote_messages,
                bytes_to_string(run->stats.exchange.remote_bytes).c_str(),
                run->stats.exchange.chunks_published, run->stats.wall_seconds * 1e3);

    obs::ResilienceSection resilience;
    if (injector != nullptr) {
      const faults::FaultCounts fc = injector->counts();
      const faults::ResilienceStats& rs = run->stats.resilience;
      resilience.enabled = true;
      resilience.fault_spec = fault_cfg.to_string();
      resilience.fault_seed = fault_cfg.seed;
      resilience.storage_errors = fc.storage_errors;
      resilience.storage_delays = fc.storage_delays;
      resilience.task_crashes = fc.task_crashes;
      resilience.task_hangs = fc.task_hangs;
      resilience.servers_lost = rs.servers_lost;
      resilience.task_retries = rs.task_retries;
      resilience.storage_retries = rs.storage_retries;
      resilience.speculative_launched = rs.speculative_launched;
      resilience.speculative_wins = rs.speculative_wins;
      resilience.tasks_rerouted = rs.tasks_rerouted;
      resilience.producers_recovered = rs.producers_recovered;
      resilience.duplicate_publishes = rs.duplicate_publishes;
      std::printf(
          "  resilience: injected %zu faults; %zu task retries, %zu storage retries, "
          "%zu/%zu speculative, %zu rerouted, %zu producers recovered, %zu dup publishes\n",
          resilience.injected_total(), rs.task_retries, rs.storage_retries,
          rs.speculative_launched, rs.speculative_wins, rs.tasks_rerouted,
          rs.producers_recovered, rs.duplicate_publishes);
    }
    std::printf("\n");

    if (print_report && sched == &ditto_sched) {
      obs::ReportExtras extras;
      extras.trace = &obs::TraceCollector::global();
      extras.metrics = &obs::MetricsRegistry::global();
      if (resilience.enabled) extras.resilience = &resilience;
      extras.model_dag = &model_dag;
      const obs::ExecutionReport report = obs::build_execution_report(
          model_dag, *plan, Objective::kJct, monitor, extras);
      std::printf("%s\n", report.to_text().c_str());
      if (!trace_out.empty()) {
        obs::export_critical_path_track(report.critical_path,
                                        obs::TraceCollector::global());
      }
    }
  }

  if (!trace_out.empty()) {
    obs::TraceCollector& tc = obs::TraceCollector::global();
    const Status st = tc.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("trace: %zu events written to %s (open in Perfetto / chrome://tracing)\n",
                tc.size(), trace_out.c_str());
  }
  return 0;
}
