// Q95 for real: the Ditto scheduler plans the engine-executable Q95
// and the MiniEngine runs it on generated data — the full stack in one
// program, from data to plan to zero-copy execution to the answer.
//
//   tpcds_q95_engine [--trace-out FILE] [--report]
//
// --trace-out enables the observability layer and writes the whole run
// (scheduler spans, per-task engine spans, exchange/storage counter
// tracks) as Chrome trace-event JSON for Perfetto. --report prints a
// per-job execution report for the Ditto run.
#include <cstdio>
#include <cstring>

#include "cluster/runtime_monitor.h"
#include "exec/engine.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "scheduler/baselines.h"
#include "scheduler/ditto_scheduler.h"
#include "scheduler/explain.h"
#include "storage/sim_store.h"
#include "workload/physics.h"
#include "workload/q95_engine.h"

using namespace ditto;

namespace {

struct RunStats {
  workload::Q95Answer answer;
  exec::EngineStats stats;
};

Result<RunStats> execute(workload::Q95EngineJob& job, const cluster::PlacementPlan& plan,
                         cluster::RuntimeMonitor* monitor = nullptr) {
  auto store = storage::make_redis_sim();
  store->set_real_delay_scale(0.01);  // small real delay: latency gap observable
  exec::MiniEngine engine(job.dag, plan, *store);
  DITTO_ASSIGN_OR_RETURN(exec::EngineResult result, engine.run(job.bindings, monitor));
  RunStats out;
  DITTO_ASSIGN_OR_RETURN(out.answer, workload::q95_answer_from_sink(result.sink_outputs.at(8)));
  out.stats = result.stats;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  bool print_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      print_report = true;
    } else {
      std::fprintf(stderr, "usage: tpcds_q95_engine [--trace-out FILE] [--report]\n");
      return 2;
    }
  }
  if (!trace_out.empty() || print_report) obs::set_observability_enabled(true);
  workload::Q95EngineSpec spec;
  spec.sales_rows = 100000;
  spec.num_orders = 15000;
  workload::Q95EngineJob job = workload::build_q95_engine_job(spec);
  std::printf("web_sales: %zu rows (%s); web_returns: %zu rows\n",
              job.web_sales->num_rows(), bytes_to_string(job.web_sales->byte_size()).c_str(),
              job.web_returns->num_rows());

  const auto expected = workload::q95_reference(job, spec);
  std::printf("reference answer: %lld qualifying orders, revenue %.2f\n\n",
              static_cast<long long>(expected.order_count), expected.total_revenue);

  // Plan with Ditto on a 4x8-slot cluster, using physics-derived models.
  workload::annotate_q95_volumes(job);
  JobDag model_dag = job.dag;
  workload::PhysicsParams physics;
  physics.store = storage::redis_model();
  workload::apply_physics(model_dag, physics);
  auto cl = cluster::Cluster::uniform(4, 8);

  scheduler::DittoScheduler ditto_sched;
  scheduler::NimbleScheduler nimble;
  for (scheduler::Scheduler* sched : {static_cast<scheduler::Scheduler*>(&ditto_sched),
                                      static_cast<scheduler::Scheduler*>(&nimble)}) {
    const auto plan = sched->schedule(model_dag, cl, Objective::kJct, storage::redis_model());
    if (!plan.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n", plan.status().to_string().c_str());
      return 1;
    }
    std::printf("%s", scheduler::explain_plan(model_dag, *plan).c_str());

    cluster::RuntimeMonitor monitor;
    const bool observing = !trace_out.empty() || print_report;
    const auto run = execute(job, plan->placement, observing ? &monitor : nullptr);
    if (!run.ok()) {
      std::fprintf(stderr, "execution failed: %s\n", run.status().to_string().c_str());
      return 1;
    }
    std::printf("  executed: %lld orders, revenue %.2f (%s)\n",
                static_cast<long long>(run->answer.order_count), run->answer.total_revenue,
                run->answer.order_count == expected.order_count ? "matches reference"
                                                                : "MISMATCH");
    std::printf("  data plane: %zu zero-copy msgs, %zu via store (%s), wall %.1f ms\n\n",
                run->stats.exchange.zero_copy_messages, run->stats.exchange.remote_messages,
                bytes_to_string(run->stats.exchange.remote_bytes).c_str(),
                run->stats.wall_seconds * 1e3);

    if (print_report && sched == &ditto_sched) {
      obs::ReportExtras extras;
      extras.trace = &obs::TraceCollector::global();
      extras.metrics = &obs::MetricsRegistry::global();
      const obs::ExecutionReport report = obs::build_execution_report(
          model_dag, *plan, Objective::kJct, monitor, extras);
      std::printf("%s\n", report.to_text().c_str());
    }
  }

  if (!trace_out.empty()) {
    obs::TraceCollector& tc = obs::TraceCollector::global();
    const Status st = tc.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("trace: %zu events written to %s (open in Perfetto / chrome://tracing)\n",
                tc.size(), trace_out.c_str());
  }
  return 0;
}
