// Engine-level example: a REAL distributed aggregation on real data.
//
// Where the other examples use the discrete-event simulator, this one
// runs the MiniEngine: scan tasks slice a generated fact table, a
// shuffle repartitions rows by key, and aggregate tasks group-by — as
// actual work on per-server thread pools, with every intermediate
// table moving through the exchange fabric. Running the same job with
// co-located vs spread placement shows the zero-copy effect directly:
// identical results, different data-plane traffic.
#include <cstdio>

#include "exec/datagen.h"
#include "exec/engine.h"
#include "exec/operators.h"
#include "storage/sim_store.h"

using namespace ditto;
using namespace ditto::exec;

namespace {

cluster::PlacementPlan make_plan(std::vector<int> dop,
                                 std::vector<std::vector<ServerId>> servers,
                                 std::vector<std::pair<StageId, StageId>> zc) {
  cluster::PlacementPlan plan;
  plan.dop = std::move(dop);
  plan.task_server = std::move(servers);
  plan.zero_copy_edges = std::move(zc);
  return plan;
}

}  // namespace

int main() {
  // Data: ~200k rows of synthetic sales with Zipf-skewed keys.
  const Table fact =
      gen_fact_table({.rows = 200000, .num_warehouses = 32, .key_zipf_skew = 0.8, .seed = 1});
  std::printf("fact table: %zu rows, %s\n", fact.num_rows(),
              bytes_to_string(fact.byte_size()).c_str());

  // DAG: scan -> shuffle -> aggregate.
  JobDag dag("wordcount");
  const StageId scan = dag.add_stage("scan");
  const StageId agg = dag.add_stage("agg");
  if (!dag.add_edge(scan, agg, ExchangeKind::kShuffle).is_ok()) return 1;

  std::map<StageId, StageBinding> bindings;
  bindings[scan] = StageBinding{
      [&fact](int task, int dop, const std::vector<Table>&) -> Result<Table> {
        return range_partition(fact, dop)[task];
      },
      "warehouse_id"};
  bindings[agg] = StageBinding{
      [](int, int, const std::vector<Table>& inputs) -> Result<Table> {
        return group_by(inputs.at(0), "warehouse_id",
                        {{AggKind::kSum, "price", "revenue"}, {AggKind::kCount, "", "sales"}});
      },
      ""};

  struct Config {
    const char* name;
    cluster::PlacementPlan plan;
  };
  // A co-located plan (one server, zero-copy) vs a spread plan
  // (producers and consumers on different servers, serialized).
  std::vector<Config> configs;
  configs.push_back({"co-located (zero-copy)",
                     make_plan({4, 4}, {{0, 0, 0, 0}, {0, 0, 0, 0}}, {{scan, agg}})});
  configs.push_back(
      {"spread (serialized)", make_plan({4, 4}, {{0, 1, 2, 3}, {4, 5, 6, 7}}, {})});

  for (auto& config : configs) {
    // Redis-modelled store with a small REAL delay per transfer, so the
    // wall-clock difference is observable, not just counted.
    auto store = storage::make_redis_sim();
    store->set_real_delay_scale(0.05);
    MiniEngine engine(dag, config.plan, *store);
    const auto result = engine.run(bindings);
    if (!result.ok()) {
      std::fprintf(stderr, "engine failed: %s\n", result.status().to_string().c_str());
      return 1;
    }
    double revenue = 0.0;
    for (const auto& [sid, table] : result->sink_outputs) {
      for (double v : table.column_by_name("revenue").double_span()) revenue += v;
    }
    std::printf(
        "\n%-24s wall %6.1f ms | zero-copy msgs %3zu, remote msgs %3zu (%s via store)\n",
        config.name, result->stats.wall_seconds * 1e3,
        result->stats.exchange.zero_copy_messages, result->stats.exchange.remote_messages,
        bytes_to_string(result->stats.exchange.remote_bytes).c_str());
    std::printf("%-24s total revenue %.2f (identical across placements)\n", "", revenue);
  }
  return 0;
}
