// TPC-DS Q95 end to end: the paper's flagship query.
//
// Runs the full Ditto pipeline on the nine-stage Q95 DAG (Fig. 13) at
// scale factor 1000 against the S3-backed cluster: profile -> schedule
// -> simulate, for both optimization objectives, and prints the stage
// groups, parallelism configuration, and execution timeline.
#include <cstdio>

#include "scheduler/baselines.h"
#include "scheduler/ditto_scheduler.h"
#include "sim/sim_runner.h"
#include "storage/sim_store.h"
#include "workload/queries.h"

using namespace ditto;

namespace {
void report(const char* title, const JobDag& job, const sim::ExperimentResult& r) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-10s %4s %5s | %9s %9s\n", "stage", "DoP", "srv", "start", "end");
  for (StageId s = 0; s < job.num_stages(); ++s) {
    const auto& servers = r.plan.placement.task_server[s];
    std::printf("%-10s %4d %5u | %8.1fs %8.1fs\n", job.stage(s).name().c_str(),
                r.plan.placement.dop[s], servers.empty() ? 999 : servers[0],
                r.sim.stages[s].start, r.sim.stages[s].end);
  }
  std::printf("groups:");
  if (r.plan.placement.zero_copy_edges.empty()) std::printf(" (none)");
  for (const auto& [a, b] : r.plan.placement.zero_copy_edges) {
    std::printf(" %s->%s", job.stage(a).name().c_str(), job.stage(b).name().c_str());
  }
  std::printf("\nJCT %.1f s, cost %.1f GB-s, scheduling %.0f us\n", r.sim.jct,
              r.sim.cost.total(), r.plan.scheduling_seconds * 1e6);
}
}  // namespace

int main() {
  workload::PhysicsParams physics;
  physics.store = storage::s3_model();
  const JobDag job = workload::build_query(workload::QueryId::kQ95, 1000, physics);
  auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());

  std::printf("TPC-DS Q95 at SF=1000 (%s input) on the paper's testbed shape\n",
              bytes_to_string(workload::query_input_bytes(workload::QueryId::kQ95, 1000))
                  .c_str());
  std::printf("DAG: %zu stages, %zu edges\n", job.num_stages(), job.num_edges());

  scheduler::DittoScheduler ditto_sched;
  scheduler::NimbleScheduler nimble;

  const auto jct_run =
      sim::run_experiment(job, cl, ditto_sched, Objective::kJct, storage::s3_model());
  const auto cost_run =
      sim::run_experiment(job, cl, ditto_sched, Objective::kCost, storage::s3_model());
  const auto nimble_run =
      sim::run_experiment(job, cl, nimble, Objective::kJct, storage::s3_model());
  if (!jct_run.ok() || !cost_run.ok() || !nimble_run.ok()) {
    std::fprintf(stderr, "experiment failed\n");
    return 1;
  }

  report("Ditto, optimizing JCT", job, *jct_run);
  report("Ditto, optimizing cost", job, *cost_run);
  report("NIMBLE baseline", job, *nimble_run);

  std::printf("\nSummary: Ditto cuts JCT %.2fx and cost %.2fx vs NIMBLE\n",
              nimble_run->sim.jct / jct_run->sim.jct,
              nimble_run->sim.cost.total() / cost_run->sim.cost.total());
  return 0;
}
