// The whole TPC-DS miniature suite (Q1, Q16, Q94, Q95) executed for
// real: Ditto plans each engine-executable query and the MiniEngine
// runs it; every answer is checked against a single-node reference.
#include <cstdio>

#include "exec/engine.h"
#include "scheduler/ditto_scheduler.h"
#include "storage/sim_store.h"
#include "workload/engine_queries.h"
#include "workload/physics.h"
#include "workload/q95_engine.h"

using namespace ditto;

namespace {

struct SuiteRow {
  const char* name;
  std::int64_t rows = 0;
  double value = 0.0;
  bool matches = false;
  std::size_t zero_copy = 0;
  std::size_t remote = 0;
  double wall_ms = 0.0;
};

Result<SuiteRow> run_generic(const char* name, workload::EngineJob job,
                             const workload::EngineAnswer& ref) {
  workload::annotate_engine_volumes(job);
  JobDag model_dag = job.dag;
  workload::PhysicsParams physics;
  physics.store = storage::redis_model();
  workload::apply_physics(model_dag, physics);

  auto cl = cluster::Cluster::uniform(4, 8);
  scheduler::DittoScheduler sched;
  DITTO_ASSIGN_OR_RETURN(scheduler::SchedulePlan plan,
                         sched.schedule(model_dag, cl, Objective::kJct,
                                        storage::redis_model()));

  auto store = storage::make_instant_store();
  exec::MiniEngine engine(job.dag, plan.placement, *store);
  DITTO_ASSIGN_OR_RETURN(exec::EngineResult result, engine.run(job.bindings));
  DITTO_ASSIGN_OR_RETURN(workload::EngineAnswer answer,
                         workload::engine_answer_from_sink(result.sink_outputs.at(job.sink)));

  SuiteRow row;
  row.name = name;
  row.rows = answer.rows;
  row.value = answer.value;
  row.matches = answer.rows == ref.rows && std::abs(answer.value - ref.value) < 1e-6;
  row.zero_copy = result.stats.exchange.zero_copy_messages;
  row.remote = result.stats.exchange.remote_messages;
  row.wall_ms = result.stats.wall_seconds * 1e3;
  return row;
}

void print_row(const SuiteRow& row) {
  std::printf("%-5s %8lld rows  value %14.2f  %-9s  %3zu shm / %3zu store msgs  %6.1f ms\n",
              row.name, static_cast<long long>(row.rows), row.value,
              row.matches ? "VERIFIED" : "MISMATCH", row.zero_copy, row.remote, row.wall_ms);
}

}  // namespace

int main() {
  workload::EngineQuerySpec spec;
  spec.fact_rows = 40000;
  spec.num_orders = 6000;

  std::printf("TPC-DS miniature suite on the MiniEngine (Ditto-planned, 4x8 cluster)\n\n");

  {
    workload::EngineJob job = workload::build_q1_engine_job(spec);
    const auto ref = workload::q1_engine_reference(job, spec);
    const auto row = run_generic("Q1", std::move(job), ref);
    if (!row.ok()) {
      std::fprintf(stderr, "Q1 failed: %s\n", row.status().to_string().c_str());
      return 1;
    }
    print_row(*row);
  }
  {
    workload::EngineJob job = workload::build_q16_engine_job(spec);
    const auto ref = workload::q16_engine_reference(job, spec);
    const auto row = run_generic("Q16", std::move(job), ref);
    if (!row.ok()) return 1;
    print_row(*row);
  }
  {
    workload::EngineJob job = workload::build_q94_engine_job(spec);
    const auto ref = workload::q94_engine_reference(job, spec);
    const auto row = run_generic("Q94", std::move(job), ref);
    if (!row.ok()) return 1;
    print_row(*row);
  }
  {
    // Q95 uses its dedicated module (richer semantics).
    workload::Q95EngineSpec q95_spec;
    q95_spec.sales_rows = spec.fact_rows;
    q95_spec.num_orders = spec.num_orders;
    workload::Q95EngineJob job = workload::build_q95_engine_job(q95_spec);
    const auto ref = workload::q95_reference(job, q95_spec);
    workload::annotate_q95_volumes(job);
    JobDag model_dag = job.dag;
    workload::PhysicsParams physics;
    physics.store = storage::redis_model();
    workload::apply_physics(model_dag, physics);
    auto cl = cluster::Cluster::uniform(4, 8);
    scheduler::DittoScheduler sched;
    const auto plan = sched.schedule(model_dag, cl, Objective::kJct, storage::redis_model());
    if (!plan.ok()) return 1;
    auto store = storage::make_instant_store();
    exec::MiniEngine engine(job.dag, plan->placement, *store);
    const auto result = engine.run(job.bindings);
    if (!result.ok()) return 1;
    const auto answer = workload::q95_answer_from_sink(result->sink_outputs.at(8));
    if (!answer.ok()) return 1;
    SuiteRow row;
    row.name = "Q95";
    row.rows = answer->order_count;
    row.value = answer->total_revenue;
    row.matches = answer->order_count == ref.order_count;
    row.zero_copy = result->stats.exchange.zero_copy_messages;
    row.remote = result->stats.exchange.remote_messages;
    row.wall_ms = result->stats.wall_seconds * 1e3;
    print_row(row);
  }
  return 0;
}
