// Figure 2: the impact of function placement on the best DoP
// configuration — executed for REAL on the MiniEngine.
//
// The paper's scenario: when the cluster cannot host six map functions
// and a reduce function on one server, a HIGH DoP spread across
// servers pays serialized shuffling (Fig. 2a), while a LOW DoP
// co-located on one server shuffles through zero-copy shared memory
// (Fig. 2b) — and can finish sooner despite less parallelism. Here the
// stores apply small real delays so the effect shows up in wall time.
#include <cstdio>

#include "exec/datagen.h"
#include "exec/engine.h"
#include "exec/operators.h"
#include "storage/sim_store.h"

using namespace ditto;
using namespace ditto::exec;

namespace {

cluster::PlacementPlan plan_of(std::vector<int> dop,
                               std::vector<std::vector<ServerId>> servers,
                               std::vector<std::pair<StageId, StageId>> zc) {
  cluster::PlacementPlan plan;
  plan.dop = std::move(dop);
  plan.task_server = std::move(servers);
  plan.zero_copy_edges = std::move(zc);
  return plan;
}

}  // namespace

int main() {
  const Table fact =
      gen_fact_table({.rows = 120000, .num_warehouses = 16, .seed = 2});

  JobDag dag("fig2");
  const StageId map = dag.add_stage("map");
  const StageId reduce = dag.add_stage("reduce");
  if (!dag.add_edge(map, reduce, ExchangeKind::kShuffle).is_ok()) return 1;

  std::map<StageId, StageBinding> bindings;
  bindings[map] = StageBinding{
      [&fact](int task, int dop, const std::vector<Table>&) -> Result<Table> {
        return range_partition(fact, dop)[task];
      },
      "warehouse_id"};
  bindings[reduce] = StageBinding{
      [](int, int, const std::vector<Table>& in) -> Result<Table> {
        return group_by(in.at(0), "warehouse_id",
                        {{AggKind::kSum, "price", "revenue"}, {AggKind::kCount, "", "n"}});
      },
      ""};

  struct Config {
    const char* label;
    cluster::PlacementPlan plan;
  };
  std::vector<Config> configs;
  // Fig. 2a: six maps spread over two servers, reduce elsewhere —
  // every pipe crosses servers, everything serializes.
  configs.push_back({"Fig.2a  high DoP, spread  (6 maps on srv1+2, reduce on srv0)",
                     plan_of({6, 1}, {{1, 1, 1, 2, 2, 2}, {0}}, {})});
  // Fig. 2b: three maps co-located with the reduce on server 0 —
  // zero-copy shuffling at lower parallelism.
  configs.push_back({"Fig.2b  low DoP, co-located (3 maps + reduce on srv0)",
                     plan_of({3, 1}, {{0, 0, 0}, {0}}, {{map, reduce}})});

  std::printf("%zu-row fact table (%s); shuffle through a Redis-class store with real "
              "delays\n\n",
              fact.num_rows(), bytes_to_string(fact.byte_size()).c_str());
  for (auto& config : configs) {
    auto store = storage::make_redis_sim();
    store->set_real_delay_scale(0.2);  // make transport time observable
    MiniEngine engine(dag, config.plan, *store);
    const auto result = engine.run(bindings);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n", result.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", config.label);
    std::printf("    wall %6.1f ms | %2zu zero-copy msgs, %2zu via store (%s)\n\n",
                result->stats.wall_seconds * 1e3,
                result->stats.exchange.zero_copy_messages,
                result->stats.exchange.remote_messages,
                bytes_to_string(result->stats.exchange.remote_bytes).c_str());
  }
  std::printf("The paper's Figure-2 point: when slots on one server are scarce,\n"
              "trading parallelism for co-location can win — which is exactly the\n"
              "trade Ditto's shrink fallback evaluates (DittoOptions::"
              "shrink_oversized_groups).\n");
  return 0;
}
