// dittoctl: schedule a user-provided job spec from the command line.
//
//   dittoctl <jobspec-file> [--cluster 8x96@zipf-0.9] [--objective jct|cost]
//            [--store s3|redis] [--trace-out FILE] [--report FILE]
//            [--metrics] [--faults SPEC] [--fault-seed N]
//
// Reads the job spec (see workload/jobspec.h for the format), derives
// ground-truth step models from the annotated data volumes, profiles,
// schedules with Ditto, simulates the plan, and prints the decision
// plus predicted/simulated JCT and cost. With no arguments it runs a
// built-in demo spec.
//
// Observability: --trace-out writes the run (scheduler spans + the
// simulated execution timeline) as Chrome trace-event JSON, loadable
// in Perfetto or chrome://tracing; --report writes a per-job execution
// report (JSON); --metrics prints the metrics snapshot to stderr.
//
// Chaos: --faults arms the seeded fault injector for the simulated run
// (see faults/fault_injector.h for the spec grammar, e.g.
// "storage_error=0.05,crash=0.02,server_loss=1@2"); --fault-seed
// overrides the spec's seed. The report gains a resilience section.
//
// Multi-tenant serving (the §4.5 co-design, live):
//
//   dittoctl serve [servespec-file] [--cluster NxS[@dist]]
//                  [--policy fifo|fair|elastic] [--fair-slots N]
//                  [--state DIR] [--recover] [--best-effort] [--breaker]
//
// Reads a serve spec (see service/serve_spec.h: one `job` line per
// tenant with arrival offset, objective, optional deadline, SLO tier
// and per-job faults), runs every job concurrently through the real
// MiniEngine under the chosen inter-job admission policy, and prints
// per-job outcome rows (queueing delay, JCT, slots, status) plus the
// service summary. With no spec file it runs a built-in 3-tenant demo.
//
// Resilience:
//   * --state DIR backs exchanges, the job journal, and completed sink
//     bytes with a FileStore rooted at DIR, so a SIGKILL'd serve can be
//     restarted with --recover: completed jobs are skipped, queued jobs
//     re-enqueued, and interrupted jobs re-run under a fresh exchange
//     epoch — recovered sinks land on the same keys, byte-identical.
//   * --breaker routes the store through a circuit breaker that fails
//     fast while the backend browns out.
//
// Recurring-job result cache: the service caches completed stage
// outputs keyed by (plan fingerprint, input signature, input_version),
// serving repeated submissions slot-free (whole-job hits), pruning
// cached upstream stages (partial hits), and deduplicating identical
// in-flight jobs. Sized via `policy ... cache_bytes=N` in the spec
// (64 MiB default; 0 disables); per-job `cache=off` opts a line out and
// `input_version=N` invalidates prior entries. With --state the cache
// persists alongside the journal, so --recover restarts warm. The
// outcome table's `src` column shows cache|dedup|prune|run per job.
//   * serve exits non-zero when any job ends FAILED or is rejected at
//     admission; --best-effort restores exit 0 (outcomes still print).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "cluster/runtime_monitor.h"
#include "exec/serde.h"
#include "faults/circuit_breaker.h"
#include "faults/fault_injector.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "scheduler/ditto_scheduler.h"
#include "scheduler/explain.h"
#include "service/engine_jobs.h"
#include "service/http_endpoint.h"
#include "service/job_service.h"
#include "service/serve_spec.h"
#include "service/journal.h"
#include "sim/sim_runner.h"
#include "sim/trace_export.h"
#include "storage/file_store.h"
#include "storage/sim_store.h"
#include "workload/jobspec.h"
#include "workload/physics.h"

using namespace ditto;

namespace {

constexpr const char* kDemoSpec = R"(# demo: two scans into a join into an aggregate
job demo
stage scan_a map input=24GB output=8GB
stage scan_b map input=6GB output=2GB
stage join join output=1GB
stage agg reduce output=10MB
edge scan_a join shuffle
edge scan_b join shuffle
edge join agg gather
)";

constexpr const char* kServeDemoSpec =
    R"(# demo tenants: three paper queries arriving 100 ms apart
policy elastic
job q1  arrival=0.0 objective=jct  rows=8000 orders=1500 seed=11 label=tenant-a
job q16 arrival=0.1 objective=cost rows=8000 orders=1500 seed=22 label=tenant-b
job q95 arrival=0.2 objective=jct  rows=8000 orders=1500 seed=33 label=tenant-c
)";

int usage() {
  std::fprintf(stderr,
               "usage: dittoctl [jobspec-file] [--cluster NxS[@dist]] "
               "[--objective jct|cost] [--store s3|redis] [--trace-out FILE] "
               "[--report FILE] [--metrics] [--faults SPEC] [--fault-seed N]\n"
               "       dittoctl serve [servespec-file] [--cluster NxS[@dist]] "
               "[--policy fifo|fair|elastic] [--fair-slots N] "
               "[--http-port N] [--linger SECS] "
               "[--state DIR] [--recover] [--best-effort] [--breaker]\n");
  return 2;
}

// `dittoctl serve`: run a multi-tenant serve spec through the live
// JobService and print per-job outcome rows plus the service summary.
int run_serve(int argc, char** argv) {
  std::string spec_text = kServeDemoSpec;
  std::string cluster_spec = "4x8";
  std::string policy_override;
  int fair_slots_override = 0;
  int http_port = -1;  ///< < 0 = no endpoint; 0 = ephemeral
  double linger = 0.0;
  std::string state_dir;
  bool recover = false;
  bool best_effort = false;
  bool use_breaker = false;

  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cluster") == 0 && i + 1 < argc) {
      cluster_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      policy_override = argv[++i];
    } else if (std::strcmp(argv[i], "--fair-slots") == 0 && i + 1 < argc) {
      fair_slots_override = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--http-port") == 0 && i + 1 < argc) {
      http_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--linger") == 0 && i + 1 < argc) {
      linger = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--state") == 0 && i + 1 < argc) {
      state_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--best-effort") == 0) {
      best_effort = true;
    } else if (std::strcmp(argv[i], "--breaker") == 0) {
      use_breaker = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      std::ifstream f(argv[i]);
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << f.rdbuf();
      spec_text = buf.str();
    }
  }

  auto spec = service::parse_serve_spec(spec_text);
  if (!spec.ok()) {
    std::fprintf(stderr, "serve spec error: %s\n", spec.status().to_string().c_str());
    return 1;
  }
  if (!policy_override.empty()) {
    auto p = service::parse_admission_policy(policy_override);
    if (!p.ok()) return usage();
    spec->admission.policy = *p;
  }
  if (fair_slots_override > 0) spec->admission.fair_share_slots = fair_slots_override;

  auto cl = workload::parse_cluster_spec(cluster_spec);
  if (!cl.ok()) {
    std::fprintf(stderr, "cluster spec error: %s\n", cl.status().to_string().c_str());
    return 1;
  }

  if (recover && state_dir.empty()) {
    std::fprintf(stderr, "--recover requires --state DIR\n");
    return usage();
  }

  // Enable metrics before anything registers gauges at construction
  // (the circuit breaker does), so a /metrics scrape sees them even
  // before the first state transition.
  if (http_port >= 0) obs::set_observability_enabled(true);

  const storage::StorageModel external = storage::redis_model();
  std::unique_ptr<storage::ObjectStore> owned_store;
  if (state_dir.empty()) {
    owned_store = storage::make_instant_store();
  } else {
    owned_store = std::make_unique<storage::FileStore>(state_dir);
  }
  faults::CircuitBreaker breaker;
  std::unique_ptr<faults::BreakerStore> breaker_store;
  storage::ObjectStore* store = owned_store.get();
  if (use_breaker) {
    breaker_store = std::make_unique<faults::BreakerStore>(*owned_store, breaker);
    store = breaker_store.get();
  }

  // The durable journal (with --state) and, with --recover, the plan it
  // dictates: skip completed jobs, resubmit queued ones, re-run
  // interrupted ones under a fresh exchange epoch.
  const std::string journal_key = "journal/serve.log";
  std::unique_ptr<service::JobJournal> journal;
  struct ServeEntry {
    service::ServeJobSpec js;
    std::uint64_t jid = 0;
    int epoch = 0;
  };
  std::vector<ServeEntry> entries;
  if (!state_dir.empty()) {
    auto records = service::JobJournal::replay(*store, journal_key);
    if (!records.ok()) {
      std::fprintf(stderr, "journal error: %s\n", records.status().to_string().c_str());
      return 1;
    }
    journal = std::make_unique<service::JobJournal>(*store, journal_key);
    const Status opened = journal->open();
    if (!opened.is_ok()) {
      std::fprintf(stderr, "journal error: %s\n", opened.to_string().c_str());
      return 1;
    }
    if (recover) {
      const service::RecoveryPlan plan = service::build_recovery(*records);
      std::printf("recovery: %zu journaled jobs — %zu completed (skipped), "
                  "%zu resubmitted, %zu re-run under a fresh epoch\n",
                  plan.jobs.size(), plan.completed, plan.to_resubmit, plan.to_rerun);
      // Journaled jobs first, by jid: skip completed ones, re-enqueue
      // the rest with their durable identity (jid, next epoch).
      std::multiset<std::string> journaled_lines;
      for (const service::RecoveredJob& rj : plan.jobs) {
        journaled_lines.insert(rj.payload);
        if (rj.disposition == service::RecoveredJob::Disposition::kSkip) continue;
        auto rspec = service::parse_serve_spec(rj.payload);
        if (!rspec.ok() || rspec->jobs.size() != 1) {
          std::fprintf(stderr, "recovery: jid %llu payload unparsable: %s\n",
                       static_cast<unsigned long long>(rj.jid),
                       rspec.ok() ? "not a single job line"
                                  : rspec.status().to_string().c_str());
          return 1;
        }
        ServeEntry entry;
        entry.js = std::move(rspec->jobs[0]);
        entry.js.arrival = 0.0;  // recovered work runs immediately
        entry.jid = rj.jid;
        entry.epoch = rj.next_epoch;
        entries.push_back(std::move(entry));
      }
      // Spec jobs the crashed run never got to journal (the client died
      // before submitting them) are submitted fresh — matched to the
      // journal by payload line so nothing runs twice or gets lost.
      for (service::ServeJobSpec& js : spec->jobs) {
        const auto seen = journaled_lines.find(js.line);
        if (seen != journaled_lines.end()) {
          journaled_lines.erase(seen);
          continue;
        }
        ServeEntry entry;
        entry.js = std::move(js);
        entries.push_back(std::move(entry));
      }
    }
  }
  if (!recover) {
    for (service::ServeJobSpec& js : spec->jobs) {
      ServeEntry entry;
      entry.js = std::move(js);
      entries.push_back(std::move(entry));
    }
  }

  service::ServiceOptions options;
  options.admission = spec->admission;
  options.external = external;
  options.max_queue_depth = spec->max_queue_depth;
  options.reject_infeasible = spec->reject_infeasible;
  options.journal = journal.get();
  options.persist_sinks = !state_dir.empty();
  options.cache_bytes = spec->cache_bytes;
  options.persist_cache = !state_dir.empty();
  service::JobService svc(*cl, *store, options);

  // Live endpoints: enable metrics collection (bounding the trace ring
  // for long-serving processes) and expose /metrics, /jobs, /healthz.
  std::unique_ptr<service::HttpEndpoint> http;
  if (http_port >= 0) {
    obs::set_observability_enabled(true);
    obs::TraceCollector::global().set_capacity(1 << 16);
    service::HttpEndpoint::Options hopts;
    hopts.port = http_port;
    hopts.service = &svc;
    http = std::make_unique<service::HttpEndpoint>(hopts);
    const Status st = http->start();
    if (!st.is_ok()) {
      std::fprintf(stderr, "http endpoint: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("http: serving /metrics /jobs /healthz on http://127.0.0.1:%d\n",
                http->port());
  }

  std::printf("cluster: %s (%d slots)  policy: %s  jobs: %zu\n\n", cluster_spec.c_str(),
              cl->total_slots(), service::admission_policy_name(spec->admission.policy),
              entries.size());

  // Submit in arrival order, sleeping out the offsets so admission sees
  // a moving free-slot view (like real tenant traffic would produce).
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return entries[a].js.arrival < entries[b].js.arrival;
  });

  struct Submitted {
    std::size_t entry_index;
    service::JobId id;
  };
  std::vector<Submitted> submitted;
  std::size_t rejected = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::size_t idx : order) {
    const ServeEntry& entry = entries[idx];
    const service::ServeJobSpec& js = entry.js;
    const auto target = t0 + std::chrono::duration<double>(js.arrival);
    std::this_thread::sleep_until(target);

    auto job = service::make_engine_query_job(js.query, js.data, external);
    if (!job.ok()) {
      std::fprintf(stderr, "job %s: %s\n", js.query.c_str(),
                   job.status().to_string().c_str());
      return 1;
    }
    job->submission.label = js.label.empty() ? js.query : js.label;
    job->submission.objective = js.objective;
    job->submission.deadline = js.deadline;
    job->submission.faults = js.faults;
    job->submission.tier = js.tier;
    job->submission.job_attempts = 1 + js.retries;
    // Result-cache identity: version from the spec line; `cache=off`
    // clears the identity so the job neither probes nor deduplicates.
    job->submission.cache_id.input_version = js.input_version;
    if (!js.cache) job->submission.cache_id = {};
    if (journal != nullptr) job->submission.spec_line = js.line;
    job->submission.jid = entry.jid;
    job->submission.epoch = entry.epoch;
    auto id = svc.submit(job->submission);
    if (!id.ok()) {
      // Bounded-queue fast-rejects (and journal-append failures) turn
      // away one job, not the whole serve run.
      std::fprintf(stderr, "submit %s: %s\n", job->submission.label.c_str(),
                   id.status().to_string().c_str());
      ++rejected;
      continue;
    }
    submitted.push_back({idx, *id});
  }

  std::size_t failed = 0;
  std::printf("%-12s %-5s %-8s %-10s %9s %9s %6s %4s %-6s  %s\n", "label", "query", "tier",
              "state", "queue_s", "jct_s", "slots", "try", "src", "error");
  for (const Submitted& s : submitted) {
    const auto outcome = svc.wait(s.id);
    if (!outcome.ok()) {
      std::fprintf(stderr, "wait failed: %s\n", outcome.status().to_string().c_str());
      return 1;
    }
    const service::ServeJobSpec& js = entries[s.entry_index].js;
    // Where the result came from: a whole-job cache hit, a deduplicated
    // leader's run, or an engine run (possibly with pruned stages).
    const char* src = outcome->dedup_leader != 0 ? "dedup"
                      : outcome->from_cache      ? "cache"
                      : outcome->reused_stages > 0 ? "prune"
                                                   : "run";
    std::printf("%-12s %-5s %-8s %-10s %9.3f %9.3f %6d %4d %-6s  %s\n",
                outcome->label.c_str(), js.query.c_str(), outcome->tier.c_str(),
                service::job_state_name(outcome->state),
                outcome->state == service::JobState::kDone ? outcome->queueing() : 0.0,
                outcome->state == service::JobState::kDone ? outcome->jct() : 0.0,
                outcome->slots_granted, outcome->attempts, src,
                outcome->error.is_ok() ? "-" : outcome->error.to_string().c_str());
    if (outcome->state == service::JobState::kFailed) ++failed;
  }
  svc.drain();
  std::printf("\n%s", svc.summary().to_text().c_str());
  if (const service::ResultCache* rc = svc.result_cache()) {
    const service::CacheStats cs = rc->stats();
    obs::CacheSection cache;
    cache.enabled = true;
    cache.hits = cs.hits;
    cache.partial_hits = cs.partial_hits;
    cache.misses = cs.misses;
    cache.stage_hits = cs.stage_hits;
    cache.insertions = cs.insertions;
    cache.evictions = cs.evictions;
    cache.entries = cs.entries;
    cache.bytes = cs.bytes;
    cache.slot_seconds_saved = cs.slot_seconds_saved;
    std::printf(
        "cache: %zu hits, %zu partial, %zu misses (%.0f%% hit rate); "
        "%zu entries / %.1f MiB live, %zu evicted, %.2f slot-s saved\n",
        cache.hits, cache.partial_hits, cache.misses, 100.0 * cache.hit_rate(),
        cache.entries, static_cast<double>(cache.bytes) / (1024.0 * 1024.0),
        cache.evictions, cache.slot_seconds_saved);
  }
  if (use_breaker) {
    const faults::CircuitBreaker::Counters bc = breaker.counters();
    std::printf("breaker: state %s, %zu trips, %zu fast-fails, %zu probes\n",
                faults::breaker_state_name(breaker.state()), bc.trips, bc.fast_fails,
                bc.probes);
  }
  if (http != nullptr) {
    if (linger > 0.0) {
      std::printf("http: lingering %.1f s for scrapes\n", linger);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::duration<double>(linger));
    }
    std::printf("http: served %llu requests\n",
                static_cast<unsigned long long>(http->requests_served()));
  }
  if ((failed > 0 || rejected > 0) && !best_effort) {
    std::fprintf(stderr, "serve: %zu job(s) failed, %zu rejected\n", failed, rejected);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) return run_serve(argc, argv);

  std::string spec_text = kDemoSpec;
  std::string cluster_spec = "8x96@zipf-0.9";
  Objective objective = Objective::kJct;
  storage::StorageModel store = storage::s3_model();
  std::string trace_out;
  std::string report_out;
  bool print_metrics = false;
  std::string faults_spec;
  std::uint64_t fault_seed = 0;
  bool fault_seed_set = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cluster") == 0 && i + 1 < argc) {
      cluster_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      faults_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
      fault_seed_set = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else if (std::strcmp(argv[i], "--objective") == 0 && i + 1 < argc) {
      const std::string o = argv[++i];
      if (o == "jct") {
        objective = Objective::kJct;
      } else if (o == "cost") {
        objective = Objective::kCost;
      } else {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      const std::string s = argv[++i];
      if (s == "s3") {
        store = storage::s3_model();
      } else if (s == "redis") {
        store = storage::redis_model();
      } else {
        return usage();
      }
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      std::ifstream f(argv[i]);
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << f.rdbuf();
      spec_text = buf.str();
    }
  }

  auto dag = workload::parse_job_spec(spec_text);
  if (!dag.ok()) {
    std::fprintf(stderr, "job spec error: %s\n", dag.status().to_string().c_str());
    return 1;
  }
  auto cl = workload::parse_cluster_spec(cluster_spec);
  if (!cl.ok()) {
    std::fprintf(stderr, "cluster spec error: %s\n", cl.status().to_string().c_str());
    return 1;
  }

  workload::PhysicsParams physics;
  physics.store = store;
  workload::apply_physics(*dag, physics);

  const bool observe = !trace_out.empty() || !report_out.empty() || print_metrics;
  if (observe) obs::set_observability_enabled(true);

  sim::SimOptions sim_options;
  if (!faults_spec.empty()) {
    auto parsed = faults::parse_fault_spec(faults_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "fault spec error: %s\n", parsed.status().to_string().c_str());
      return 2;
    }
    sim_options.faults = std::move(parsed).value();
    if (fault_seed_set) sim_options.faults.seed = fault_seed;
    // Arm the mitigations so injected hangs meet speculation.
    sim_options.resilience.speculation_factor = 2.0;
  }

  scheduler::DittoScheduler ditto_sched;
  const auto result =
      sim::run_experiment(*dag, *cl, ditto_sched, objective, store, sim_options);
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n", result.status().to_string().c_str());
    return 1;
  }

  std::printf("cluster: %s (%d slots)  objective: %s  store: %s\n\n", cluster_spec.c_str(),
              cl->total_slots(), objective_name(objective),
              store.capacity == 0 ? "s3" : "redis");
  std::printf("%s", scheduler::explain_plan(*dag, result->plan).c_str());
  std::printf("\nsimulated: JCT %.2f s, cost %.2f GB-s\n", result->sim.jct,
              result->sim.cost.total());

  obs::ResilienceSection resilience;
  if (!faults_spec.empty()) {
    const faults::FaultCounts& fc = result->sim.fault_events;
    const faults::ResilienceStats& rs = result->sim.resilience;
    resilience.enabled = true;
    resilience.fault_spec = sim_options.faults.to_string();
    resilience.fault_seed = sim_options.faults.seed;
    resilience.storage_errors = fc.storage_errors;
    resilience.storage_delays = fc.storage_delays;
    resilience.task_crashes = fc.task_crashes;
    resilience.task_hangs = fc.task_hangs;
    resilience.servers_lost = rs.servers_lost;
    resilience.task_retries = rs.task_retries;
    resilience.storage_retries = rs.storage_retries;
    resilience.speculative_launched = rs.speculative_launched;
    resilience.speculative_wins = rs.speculative_wins;
    resilience.tasks_rerouted = rs.tasks_rerouted;
    resilience.producers_recovered = rs.producers_recovered;
    resilience.duplicate_publishes = rs.duplicate_publishes;
    std::printf(
        "resilience: injected %zu (storage_errors %zu, delays %zu, crashes %zu, hangs %zu, "
        "servers_lost %zu); absorbed via %zu task retries, %zu storage retries, "
        "%zu/%zu speculative launched/won, %zu rerouted, %zu producers recovered\n",
        resilience.injected_total(), fc.storage_errors, fc.storage_delays, fc.task_crashes,
        fc.task_hangs, rs.servers_lost, rs.task_retries, rs.storage_retries,
        rs.speculative_launched, rs.speculative_wins, rs.tasks_rerouted,
        rs.producers_recovered);
  }

  if (!trace_out.empty()) {
    obs::TraceCollector& tc = obs::TraceCollector::global();
    sim::export_trace(*dag, result->plan.placement, result->sim, tc);
    const Status st = tc.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("trace: %zu events written to %s (open in Perfetto / chrome://tracing)\n",
                tc.size(), trace_out.c_str());
  }
  if (!report_out.empty()) {
    cluster::RuntimeMonitor monitor;
    sim::JobSimulator::export_records(result->sim, monitor);
    obs::ReportExtras extras;
    extras.actual_cost = result->sim.cost.total();
    extras.trace = &obs::TraceCollector::global();
    extras.metrics = &obs::MetricsRegistry::global();
    if (resilience.enabled) extras.resilience = &resilience;
    const obs::ExecutionReport report =
        obs::build_execution_report(*dag, result->plan, objective, monitor, extras);
    std::ofstream rf(report_out, std::ios::trunc);
    if (!rf) {
      std::fprintf(stderr, "cannot open %s for writing\n", report_out.c_str());
      return 1;
    }
    rf << report.to_json();
    std::printf("report: written to %s\n", report_out.c_str());
  }
  if (print_metrics) {
    std::fprintf(stderr, "%s", obs::MetricsRegistry::global().to_text().c_str());
  }
  return 0;
}
