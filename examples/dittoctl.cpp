// dittoctl: schedule a user-provided job spec from the command line.
//
//   dittoctl <jobspec-file> [--cluster 8x96@zipf-0.9] [--objective jct|cost]
//            [--store s3|redis]
//
// Reads the job spec (see workload/jobspec.h for the format), derives
// ground-truth step models from the annotated data volumes, profiles,
// schedules with Ditto, simulates the plan, and prints the decision
// plus predicted/simulated JCT and cost. With no arguments it runs a
// built-in demo spec.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "scheduler/ditto_scheduler.h"
#include "scheduler/explain.h"
#include "sim/sim_runner.h"
#include "storage/sim_store.h"
#include "workload/jobspec.h"
#include "workload/physics.h"

using namespace ditto;

namespace {

constexpr const char* kDemoSpec = R"(# demo: two scans into a join into an aggregate
job demo
stage scan_a map input=24GB output=8GB
stage scan_b map input=6GB output=2GB
stage join join output=1GB
stage agg reduce output=10MB
edge scan_a join shuffle
edge scan_b join shuffle
edge join agg gather
)";

int usage() {
  std::fprintf(stderr,
               "usage: dittoctl [jobspec-file] [--cluster NxS[@dist]] "
               "[--objective jct|cost] [--store s3|redis]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_text = kDemoSpec;
  std::string cluster_spec = "8x96@zipf-0.9";
  Objective objective = Objective::kJct;
  storage::StorageModel store = storage::s3_model();

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cluster") == 0 && i + 1 < argc) {
      cluster_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--objective") == 0 && i + 1 < argc) {
      const std::string o = argv[++i];
      if (o == "jct") {
        objective = Objective::kJct;
      } else if (o == "cost") {
        objective = Objective::kCost;
      } else {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      const std::string s = argv[++i];
      if (s == "s3") {
        store = storage::s3_model();
      } else if (s == "redis") {
        store = storage::redis_model();
      } else {
        return usage();
      }
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      std::ifstream f(argv[i]);
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << f.rdbuf();
      spec_text = buf.str();
    }
  }

  auto dag = workload::parse_job_spec(spec_text);
  if (!dag.ok()) {
    std::fprintf(stderr, "job spec error: %s\n", dag.status().to_string().c_str());
    return 1;
  }
  auto cl = workload::parse_cluster_spec(cluster_spec);
  if (!cl.ok()) {
    std::fprintf(stderr, "cluster spec error: %s\n", cl.status().to_string().c_str());
    return 1;
  }

  workload::PhysicsParams physics;
  physics.store = store;
  workload::apply_physics(*dag, physics);

  scheduler::DittoScheduler ditto_sched;
  const auto result =
      sim::run_experiment(*dag, *cl, ditto_sched, objective, store);
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n", result.status().to_string().c_str());
    return 1;
  }

  std::printf("cluster: %s (%d slots)  objective: %s  store: %s\n\n", cluster_spec.c_str(),
              cl->total_slots(), objective_name(objective),
              store.capacity == 0 ? "s3" : "redis");
  std::printf("%s", scheduler::explain_plan(*dag, result->plan).c_str());
  std::printf("\nsimulated: JCT %.2f s, cost %.2f GB-s\n", result->sim.jct,
              result->sim.cost.total());
  return 0;
}
