// Objective comparison: what changes when the user asks Ditto to
// minimize cost instead of JCT (paper §3: "Users can specify the
// optimization objective as either minimizing JCT or cost").
//
// For each TPC-DS query, schedule both ways and show the trade-off:
// the cost objective uses sqrt(rho * alpha) ratios and accepts a
// slightly longer JCT to shrink the memory-time integral.
#include <cstdio>

#include "scheduler/ditto_scheduler.h"
#include "sim/sim_runner.h"
#include "storage/sim_store.h"
#include "workload/queries.h"

using namespace ditto;

int main() {
  workload::PhysicsParams physics;
  physics.store = storage::s3_model();
  auto cl = cluster::Cluster::paper_testbed(cluster::zipf_0_9());

  std::printf("%-6s | %12s %12s | %12s %12s\n", "query", "JCT-opt JCT", "JCT-opt cost",
              "cost-opt JCT", "cost-opt cost");
  std::printf("--------------------------------------------------------------------\n");
  for (workload::QueryId q : workload::paper_queries()) {
    const JobDag job = workload::build_query(q, 1000, physics);
    scheduler::DittoScheduler sched_jct, sched_cost;
    const auto rj = sim::run_experiment(job, cl, sched_jct, Objective::kJct,
                                        storage::s3_model());
    const auto rc = sim::run_experiment(job, cl, sched_cost, Objective::kCost,
                                        storage::s3_model());
    if (!rj.ok() || !rc.ok()) {
      std::fprintf(stderr, "experiment failed for %s\n", workload::query_name(q));
      return 1;
    }
    std::printf("%-6s | %11.1fs %11.1f$ | %11.1fs %11.1f$\n", workload::query_name(q),
                rj->sim.jct, rj->sim.cost.total(), rc->sim.jct, rc->sim.cost.total());
  }
  std::printf("\n(cost unit: GB-seconds of memory, the paper's billing metric)\n");
  return 0;
}
