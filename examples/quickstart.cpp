// Quickstart: schedule and simulate a small analytics job with Ditto.
//
//   1. describe the job as a DAG of stages with data volumes,
//   2. instantiate ground-truth step parameters for a storage backend,
//   3. profile the time model (five DoPs per stage, least squares),
//   4. schedule with Ditto (parallelism + placement jointly),
//   5. simulate the plan and inspect JCT/cost.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "dag/dag_builder.h"
#include "scheduler/ditto_scheduler.h"
#include "sim/sim_runner.h"
#include "storage/sim_store.h"
#include "workload/physics.h"

using namespace ditto;

int main() {
  // 1. A three-stage job: two scans feeding a join (Fig. 1's shape).
  auto built = DagBuilder("quickstart")
                   .stage("scan_a", {.op = "map", .input = 24_GB, .output = 8_GB})
                   .stage("scan_b", {.op = "map", .input = 6_GB, .output = 2_GB})
                   .stage("join", {.op = "join", .output = 1_GB})
                   .edge("scan_a", "join", ExchangeKind::kShuffle)
                   .edge("scan_b", "join", ExchangeKind::kShuffle)
                   .build();
  if (!built.ok()) {
    std::fprintf(stderr, "DAG error: %s\n", built.status().to_string().c_str());
    return 1;
  }
  JobDag job = std::move(built).value();

  // 2. Ground-truth step times under S3-backed shuffling.
  workload::PhysicsParams physics;
  physics.store = storage::s3_model();
  workload::apply_physics(job, physics);

  // 3-5. Profile -> schedule -> simulate, in one call.
  auto cl = cluster::Cluster::uniform(/*servers=*/4, /*slots=*/16);
  scheduler::DittoScheduler ditto_sched;
  const auto result =
      sim::run_experiment(job, cl, ditto_sched, Objective::kJct, storage::s3_model());
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n", result.status().to_string().c_str());
    return 1;
  }

  std::printf("Scheduler decisions for '%s' (%d slots available):\n", job.name().c_str(),
              cl.total_slots());
  for (StageId s = 0; s < job.num_stages(); ++s) {
    std::printf("  %-8s DoP %2d, launch at %6.2f s\n", job.stage(s).name().c_str(),
                result->plan.placement.dop[s], result->plan.placement.launch_time[s]);
  }
  std::printf("Zero-copy groups:");
  if (result->plan.placement.zero_copy_edges.empty()) std::printf(" (none)");
  for (const auto& [a, b] : result->plan.placement.zero_copy_edges) {
    std::printf(" %s->%s", job.stage(a).name().c_str(), job.stage(b).name().c_str());
  }
  std::printf("\n\nPredicted JCT: %.2f s  |  simulated JCT: %.2f s\n",
              result->plan.predicted.jct, result->sim.jct);
  std::printf("Simulated cost: %.2f GB-s (functions %.2f, shm %.2f, storage %.2f)\n",
              result->sim.cost.total(), result->sim.cost.function_gbs,
              result->sim.cost.shm_gbs, result->sim.cost.storage_gbs);
  std::printf("Scheduling took %.0f us; model building %.1f ms\n",
              result->plan.scheduling_seconds * 1e6,
              result->profile.model_build_seconds * 1e3);
  return 0;
}
